//! Grabit: gradient-boosted Tobit (Sigrist & Hirnschall, 2019).
//!
//! Grabit is the paper's strongest baseline on the Google traces: a tree
//! ensemble trained with the Tobit likelihood, combining nonlinear feature
//! interactions with censoring awareness. It plugs a [`TobitLoss`] into the
//! Newton booster from `nurd-ml` — exactly the construction of the
//! original paper (XGBoost with a Tobit objective).

use nurd_ml::{GbtConfig, GradientBoosting, Loss, MlError};

use crate::normal::inverse_mills;

/// Tobit loss for the Newton booster, right-censored variant.
///
/// Sample encoding: the booster's [`Loss`] interface passes one scalar
/// target per sample, so censoring is encoded in the sign — a positive
/// target is an observed latency, a **negative** target `-c` marks a task
/// censored at time `c` (latencies are strictly positive, so the encoding
/// is unambiguous). [`Grabit::encode_target`] builds the encoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TobitLoss {
    /// Fixed latent scale σ (estimated from observed latencies before
    /// fitting; Grabit treats it as a hyperparameter).
    pub sigma: f64,
}

impl Loss for TobitLoss {
    fn gradient_hessian(&self, y: f64, f: f64) -> (f64, f64) {
        let s = self.sigma;
        if y >= 0.0 {
            // Observed: squared loss scaled by the latent variance.
            ((f - y) / (s * s), 1.0 / (s * s))
        } else {
            // Censored at c = -y: loss = −ln Φ((f − c)/σ).
            let c = -y;
            let w = (f - c) / s;
            let lambda = inverse_mills(w);
            let grad = -lambda / s;
            let hess = (lambda * (lambda + w)) / (s * s);
            (grad, hess.max(1e-12))
        }
    }

    fn base_score(&self, ys: &[f64]) -> f64 {
        // Mean of the |target| values: a reasonable latent-mean start for
        // both observed and censored samples.
        let abs: Vec<f64> = ys.iter().map(|y| y.abs()).collect();
        nurd_linalg::mean(&abs)
    }
}

/// Hyperparameters for [`Grabit`].
#[derive(Debug, Clone, PartialEq)]
pub struct GrabitConfig {
    /// Booster configuration.
    pub gbt: GbtConfig,
    /// Latent σ override; `None` = standard deviation of the observed
    /// latencies (floored at 1e-3).
    pub sigma: Option<f64>,
}

impl Default for GrabitConfig {
    fn default() -> Self {
        GrabitConfig {
            gbt: GbtConfig {
                n_rounds: 60,
                ..GbtConfig::default()
            },
            sigma: None,
        }
    }
}

/// A fitted Grabit model (thin wrapper over the boosted ensemble).
///
/// Targets are standardized internally so the Tobit gradients are O(1)
/// against the booster's unit leaf regularization; predictions are
/// de-standardized.
#[derive(Debug, Clone)]
pub struct Grabit {
    model: GradientBoosting<TobitLoss>,
    target_mean: f64,
    target_scale: f64,
}

impl Grabit {
    /// Encodes an `(time, observed)` pair into the booster's scalar target.
    #[must_use]
    pub fn encode_target(time: f64, observed: bool) -> f64 {
        if observed {
            time
        } else {
            -time
        }
    }

    /// Fits on censored data (same convention as
    /// [`crate::Tobit::fit`]).
    ///
    /// # Errors
    ///
    /// [`MlError::InvalidConfig`] when every sample is censored; otherwise
    /// propagates booster errors.
    pub fn fit(
        x: &[Vec<f64>],
        time: &[f64],
        observed: &[bool],
        config: &GrabitConfig,
    ) -> Result<Self, MlError> {
        if time.len() != observed.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} observed flags", time.len()),
                found: format!("{}", observed.len()),
            });
        }
        let obs: Vec<f64> = time
            .iter()
            .zip(observed)
            .filter(|(_, &o)| o)
            .map(|(&t, _)| t)
            .collect();
        if obs.is_empty() {
            return Err(MlError::InvalidConfig(
                "grabit needs at least one uncensored observation".into(),
            ));
        }
        let target_mean = nurd_linalg::mean(&obs);
        let target_scale = nurd_linalg::variance(&obs).sqrt().max(1e-6);
        let sigma = config
            .sigma
            .map(|s| s / target_scale)
            .unwrap_or(1.0)
            .max(1e-3);
        // The sign encoding must survive standardization: shift the
        // standardized values by +4 (and floor at a sliver above zero) so
        // they stay positive, then re-apply the censoring sign.
        let targets: Vec<f64> = time
            .iter()
            .zip(observed)
            .map(|(&t, &o)| {
                let shifted = ((t - target_mean) / target_scale + 4.0).max(1e-6);
                Self::encode_target(shifted, o)
            })
            .collect();
        let model = GradientBoosting::fit(x, &targets, TobitLoss { sigma }, &config.gbt)?;
        Ok(Grabit {
            model,
            target_mean,
            target_scale,
        })
    }

    /// Predicted latent latency, in original units.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        let standardized = self.model.predict(features) - 4.0;
        self.target_mean + self.target_scale * standardized
    }

    /// The latent scale σ used during fitting, in original units.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.model.loss().sigma * self.target_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tobit_loss_gradients_push_correctly() {
        let loss = TobitLoss { sigma: 1.0 };
        // Observed y=5, predicting 3: gradient negative (push up).
        let (g, h) = loss.gradient_hessian(5.0, 3.0);
        assert!(g < 0.0 && h > 0.0);
        // Censored at c=5, predicting 3 (below the bound): strong push up.
        let (gc, hc) = loss.gradient_hessian(-5.0, 3.0);
        assert!(gc < 0.0 && hc > 0.0);
        // Censored at c=5, predicting 10 (already above): weak pull.
        let (g_hi, _) = loss.gradient_hessian(-5.0, 10.0);
        assert!(g_hi.abs() < gc.abs());
    }

    #[test]
    fn learns_nonlinear_censored_target() {
        // y = x², censored at 30.
        let x: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 * 0.1]).collect();
        let full: Vec<f64> = x.iter().map(|r| r[0] * r[0] + 1.0).collect();
        let observed: Vec<bool> = full.iter().map(|&y| y <= 30.0).collect();
        let time: Vec<f64> = full.iter().map(|&y| y.min(30.0)).collect();
        let model = Grabit::fit(&x, &time, &observed, &GrabitConfig::default()).unwrap();
        // Monotone in the censored region and clearly above naive 30-cap.
        assert!(model.predict(&[7.5]) > model.predict(&[4.0]));
        assert!(
            model.predict(&[7.9]) > 31.0,
            "prediction {} should exceed the censor bound",
            model.predict(&[7.9])
        );
    }

    #[test]
    fn encode_target_roundtrip() {
        assert_eq!(Grabit::encode_target(3.0, true), 3.0);
        assert_eq!(Grabit::encode_target(3.0, false), -3.0);
    }

    #[test]
    fn rejects_fully_censored() {
        let x = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            Grabit::fit(&x, &[1.0, 2.0], &[false, false], &GrabitConfig::default()),
            Err(MlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn sigma_estimated_from_observed() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let time: Vec<f64> = (0..20).map(|i| 10.0 + (i % 5) as f64).collect();
        let observed = vec![true; 20];
        let model = Grabit::fit(&x, &time, &observed, &GrabitConfig::default()).unwrap();
        assert!(model.sigma() > 0.5 && model.sigma() < 3.0);
    }
}
