//! Censored and survival regression baselines of the NURD paper (§3.4,
//! §6): Tobit (Tobin, 1958), Grabit (Sigrist & Hirnschall, 2019) and the
//! Cox proportional hazards model (Cox, 1972).
//!
//! The online straggler problem right-censors latency: a task still running
//! at checkpoint time `t` is only known to satisfy `y > t`. Tobit and
//! Grabit model the latent latency as Gaussian (in the paper's telling,
//! their weakness); CoxPH assumes proportional hazards. All three consume
//! `(features, observed-or-censoring-time, finished?)` triples.
//!
//! # Example
//!
//! ```
//! use nurd_survival::{Tobit, TobitConfig};
//!
//! # fn main() -> Result<(), nurd_ml::MlError> {
//! // y = 2x, with the larger half censored at 10.
//! let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
//! let time: Vec<f64> = (0..20).map(|i| (2 * i) as f64).collect();
//! let observed: Vec<bool> = time.iter().map(|&t| t < 10.0).collect();
//! let model = Tobit::fit(&x, &time, &observed, &TobitConfig::default())?;
//! assert!(model.predict(&[15.0]) > model.predict(&[2.0]));
//! # Ok(())
//! # }
//! ```

mod cox;
mod grabit;
mod normal;
mod tobit;

pub use cox::{CoxConfig, CoxPh, FittedCoxPh};
pub use grabit::{Grabit, GrabitConfig, TobitLoss};
pub use normal::{log_normal_cdf, normal_cdf, normal_pdf};
pub use tobit::{FittedTobit, Tobit, TobitConfig};
