//! Tobit (censored Gaussian) regression, right-censored variant.

use nurd_ml::{MlError, StandardScaler};

use crate::normal::{inverse_mills, normal_pdf};

/// Hyperparameters for [`Tobit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TobitConfig {
    /// Gradient-ascent iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the gradient max-norm.
    pub tol: f64,
    /// L2 penalty on the coefficients (not intercept or scale).
    pub l2: f64,
}

impl Default for TobitConfig {
    fn default() -> Self {
        TobitConfig {
            max_iter: 200,
            tol: 1e-6,
            l2: 1e-3,
        }
    }
}

/// Marker type: fit with [`Tobit::fit`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Tobit;

/// A fitted right-censored Tobit model: latent `y* ~ N(xᵀβ + b, σ²)`,
/// observed when the task finished, censored below at the checkpoint time
/// otherwise.
///
/// Coefficients live in an internally standardized (features *and* target)
/// space; [`FittedTobit::predict`] and [`FittedTobit::sigma`] report in
/// original units.
#[derive(Debug, Clone)]
pub struct FittedTobit {
    beta: Vec<f64>,
    intercept: f64,
    sigma: f64,
    scaler: StandardScaler,
    /// Target location/scale used to de-standardize predictions.
    target_mean: f64,
    target_scale: f64,
}

impl Tobit {
    /// Fits by maximum likelihood (gradient ascent with backtracking).
    ///
    /// `time[i]` is the observed latency when `observed[i]`, else the
    /// censoring time (the task was still running at `time[i]`).
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] / [`MlError::DimensionMismatch`] on
    /// shape problems, [`MlError::InvalidConfig`] when no observation is
    /// uncensored (σ is unidentifiable).
    pub fn fit(
        x: &[Vec<f64>],
        time: &[f64],
        observed: &[bool],
        config: &TobitConfig,
    ) -> Result<FittedTobit, MlError> {
        let d = nurd_ml_check(x, time)?;
        if observed.len() != time.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} observed flags", time.len()),
                found: format!("{}", observed.len()),
            });
        }
        let n_obs = observed.iter().filter(|&&o| o).count();
        if n_obs == 0 {
            return Err(MlError::InvalidConfig(
                "tobit needs at least one uncensored observation".into(),
            ));
        }

        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let n = xs.len();

        // Standardize the target too: gradient ascent in O(1)-scaled space
        // converges in tens of iterations regardless of latency units.
        let obs_times: Vec<f64> = time
            .iter()
            .zip(observed)
            .filter(|(_, &o)| o)
            .map(|(&t, _)| t)
            .collect();
        let target_mean = nurd_linalg::mean(&obs_times);
        let target_scale = nurd_linalg::variance(&obs_times).sqrt().max(1e-6);
        let time: Vec<f64> = time
            .iter()
            .map(|t| (t - target_mean) / target_scale)
            .collect();

        let mut intercept = 0.0;
        let mut sigma = 1.0;
        let mut beta = vec![0.0; d];

        let log_likelihood = |beta: &[f64], intercept: f64, sigma: f64| -> f64 {
            let mut ll = 0.0;
            for i in 0..n {
                let mu = intercept + nurd_linalg::dot(beta, &xs[i]);
                let z = (time[i] - mu) / sigma;
                if observed[i] {
                    ll += normal_pdf(z).max(1e-300).ln() - sigma.ln();
                } else {
                    // P(y > c) = Φ((μ − c)/σ), evaluated in log space.
                    ll += crate::log_normal_cdf(-z);
                }
            }
            ll - 0.5 * config.l2 * nurd_linalg::dot(beta, beta)
        };

        let mut objective = log_likelihood(&beta, intercept, sigma);
        for _ in 0..config.max_iter {
            // Analytic gradient in (β, intercept, ln σ).
            let mut grad_beta = vec![0.0; d];
            let mut grad_intercept = 0.0;
            let mut grad_log_sigma = 0.0;
            for i in 0..n {
                let mu = intercept + nurd_linalg::dot(&beta, &xs[i]);
                let z = (time[i] - mu) / sigma;
                let (dmu, dls) = if observed[i] {
                    (z / sigma, z * z - 1.0)
                } else {
                    let w = -z; // (μ − c)/σ
                    let lambda = inverse_mills(w);
                    (lambda / sigma, -lambda * w)
                };
                grad_intercept += dmu;
                grad_log_sigma += dls;
                nurd_linalg::add_scaled(&mut grad_beta, dmu, &xs[i]);
            }
            for (g, b) in grad_beta.iter_mut().zip(&beta) {
                *g -= config.l2 * b;
            }

            let gmax = grad_beta
                .iter()
                .chain([&grad_intercept, &grad_log_sigma])
                .fold(0.0f64, |m, g| m.max(g.abs()));
            if gmax < config.tol {
                break;
            }

            // Backtracking ascent step, scaled by 1/n for stability.
            let mut step = 1.0 / n as f64;
            let mut improved = false;
            for _ in 0..40 {
                let cand_beta: Vec<f64> = beta
                    .iter()
                    .zip(&grad_beta)
                    .map(|(b, g)| b + step * g)
                    .collect();
                let cand_intercept = intercept + step * grad_intercept;
                let cand_sigma = (sigma.ln() + step * grad_log_sigma).exp().max(1e-6);
                let cand_obj = log_likelihood(&cand_beta, cand_intercept, cand_sigma);
                if cand_obj > objective {
                    beta = cand_beta;
                    intercept = cand_intercept;
                    sigma = cand_sigma;
                    objective = cand_obj;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                break;
            }
        }

        Ok(FittedTobit {
            beta,
            intercept,
            sigma,
            scaler,
            target_mean,
            target_scale,
        })
    }
}

fn nurd_ml_check(x: &[Vec<f64>], y: &[f64]) -> Result<usize, MlError> {
    let first = x.first().ok_or(MlError::EmptyTrainingSet)?;
    if x.len() != y.len() {
        return Err(MlError::DimensionMismatch {
            expected: format!("{} targets", x.len()),
            found: format!("{}", y.len()),
        });
    }
    let d = first.len();
    if x.iter().any(|r| r.len() != d) {
        return Err(MlError::DimensionMismatch {
            expected: format!("rows of width {d}"),
            found: "ragged rows".into(),
        });
    }
    Ok(d)
}

impl FittedTobit {
    /// Predicted latent latency `xᵀβ + b`.
    ///
    /// # Panics
    ///
    /// Panics if `features` has a different width than the training data.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        let z = self.scaler.transform_row(features);
        let standardized = self.intercept + nurd_linalg::dot(&self.beta, &z);
        self.target_mean + self.target_scale * standardized
    }

    /// Estimated latent scale σ, in original latency units.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma * self.target_scale
    }

    /// Coefficients in standardized feature space.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_slope_under_censoring() {
        // y = 5 + 3x + small noise; censor everything above 20 at 20.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 * 0.1]).collect();
        let full: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, r)| 5.0 + 3.0 * r[0] + 0.3 * ((i % 5) as f64 - 2.0))
            .collect();
        let observed: Vec<bool> = full.iter().map(|&y| y <= 20.0).collect();
        let time: Vec<f64> = full.iter().map(|&y| y.min(20.0)).collect();
        let model = Tobit::fit(&x, &time, &observed, &TobitConfig::default()).unwrap();
        // Extrapolated prediction should keep rising past the censor point —
        // a plain regression on (time) would flatten at 20.
        let p_low = model.predict(&[1.0]);
        let p_high = model.predict(&[9.0]);
        assert!((p_low - 8.0).abs() < 1.5, "p(1.0) = {p_low}");
        assert!(
            p_high > 26.0,
            "p(9.0) = {p_high} should extrapolate past 20"
        );
    }

    #[test]
    fn uncensored_reduces_to_linear_regression() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        let observed = vec![true; 50];
        let model = Tobit::fit(&x, &y, &observed, &TobitConfig::default()).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            assert!((model.predict(xi) - yi).abs() < 1.0);
        }
        assert!(model.sigma() < 1.0);
    }

    #[test]
    fn rejects_fully_censored() {
        let x = vec![vec![1.0], vec![2.0]];
        let result = Tobit::fit(&x, &[1.0, 2.0], &[false, false], &TobitConfig::default());
        assert!(matches!(result, Err(MlError::InvalidConfig(_))));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let x = vec![vec![1.0]];
        assert!(Tobit::fit(&x, &[1.0, 2.0], &[true, true], &TobitConfig::default()).is_err());
        assert!(Tobit::fit(&x, &[1.0], &[true, false], &TobitConfig::default()).is_err());
    }

    #[test]
    fn censoring_shifts_predictions_up() {
        // Same observed data; marking the top half censored tells the model
        // the truth lies higher.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let time: Vec<f64> = (0..40).map(|i| 10.0 + (i % 7) as f64).collect();
        let all_observed = vec![true; 40];
        let censored: Vec<bool> = (0..40).map(|i| i < 20).collect();
        let plain = Tobit::fit(&x, &time, &all_observed, &TobitConfig::default()).unwrap();
        let cens = Tobit::fit(&x, &time, &censored, &TobitConfig::default()).unwrap();
        assert!(cens.predict(&[35.0]) > plain.predict(&[35.0]));
    }
}
