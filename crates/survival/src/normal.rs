//! Standard normal density and distribution functions.

use std::f64::consts::PI;

/// Standard normal density φ(z).
#[must_use]
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * PI).sqrt()
}

/// Standard normal CDF Φ(z) via the Abramowitz–Stegun 7.1.26 rational
/// approximation of `erf` (absolute error < 1.5e-7).
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Inverse Mills ratio λ(z) = φ(z)/Φ(z), numerically stable in the left
/// tail.
///
/// The rational `erf` approximation has ~1.5e-7 *absolute* error, which
/// swamps Φ(z) beyond z ≈ −4; from there the three-term asymptotic series
/// `λ(z) = −z / (1 − 1/z² + 3/z⁴ − 15/z⁶)` takes over (relative error
/// < 0.2% at the switch, vanishing further out).
#[must_use]
pub fn inverse_mills(z: f64) -> f64 {
    if z < -4.0 {
        -z / tail_series(z)
    } else {
        let cdf = normal_cdf(z).max(1e-300);
        normal_pdf(z) / cdf
    }
}

/// `ln Φ(z)`, stable in the left tail via
/// `ln Φ(z) ≈ ln φ(z) − ln(−z) + ln(series)` for `z < −4`.
#[must_use]
pub fn log_normal_cdf(z: f64) -> f64 {
    if z < -4.0 {
        -0.5 * z * z - 0.5 * (2.0 * PI).ln() - (-z).ln() + tail_series(z).ln()
    } else {
        normal_cdf(z).max(1e-300).ln()
    }
}

/// Truncated asymptotic series `1 − 1/z² + 3/z⁴ − 15/z⁶` of
/// `Φ(z)·(−z)/φ(z)` for z → −∞.
fn tail_series(z: f64) -> f64 {
    let z2 = z * z;
    1.0 - 1.0 / z2 + 3.0 / (z2 * z2) - 15.0 / (z2 * z2 * z2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.959_964) - 0.025).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn pdf_known_values() {
        assert!((normal_pdf(0.0) - 0.398_942_28).abs() < 1e-7);
        assert!((normal_pdf(1.0) - 0.241_970_72).abs() < 1e-7);
    }

    #[test]
    fn mills_ratio_tail_behavior() {
        // λ(z) ≈ −z for very negative z.
        assert!((inverse_mills(-20.0) - 20.0).abs() < 0.1);
        // λ(0) = φ(0)/0.5 ≈ 0.7979.
        assert!((inverse_mills(0.0) - 0.797_884_56).abs() < 1e-5);
    }

    #[test]
    fn mills_ratio_is_continuous_at_the_asymptotic_switch() {
        // Values just above and below the switch must agree closely, or
        // the Tobit gradients jump mid-optimization.
        let below = inverse_mills(-4.0 - 1e-6);
        let above = inverse_mills(-4.0 + 1e-6);
        assert!((below - above).abs() < 0.05, "{below} vs {above}");
        // Spot-check against high-precision reference values.
        assert!((inverse_mills(-4.5) - 4.704).abs() < 0.01);
        assert!((inverse_mills(-8.0) - 8.121).abs() < 0.01);
    }

    #[test]
    fn log_cdf_matches_direct_in_the_safe_region() {
        for z in [-3.5, -2.0, 0.0, 1.5, 4.0] {
            let direct = normal_cdf(z).ln();
            assert!((log_normal_cdf(z) - direct).abs() < 1e-6, "z = {z}");
        }
        // Reference value in the tail: ln Φ(−6) ≈ ln(9.8659e-10) ≈ −20.737.
        assert!((log_normal_cdf(-6.0) - (-20.737)).abs() < 0.01);
    }

    #[test]
    fn log_cdf_is_finite_and_monotone_deep_in_the_tail() {
        let mut prev = f64::NEG_INFINITY;
        for i in 0..60 {
            let z = -30.0 + i as f64;
            let v = log_normal_cdf(z);
            assert!(v.is_finite(), "log cdf not finite at {z}");
            assert!(v >= prev, "log cdf not monotone at {z}");
            prev = v;
        }
    }

    proptest! {
        /// CDF is monotone and within [0, 1].
        #[test]
        fn prop_cdf_monotone(a in -30.0..30.0f64, b in -30.0..30.0f64) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
            prop_assert!((0.0..=1.0).contains(&normal_cdf(a)));
        }

        /// Symmetry: Φ(z) + Φ(−z) = 1.
        #[test]
        fn prop_cdf_symmetric(z in -8.0..8.0f64) {
            prop_assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-6);
        }

        /// Mills ratio is positive and finite everywhere we use it.
        #[test]
        fn prop_mills_positive(z in -40.0..10.0f64) {
            let m = inverse_mills(z);
            prop_assert!(m > 0.0 && m.is_finite());
        }
    }
}
