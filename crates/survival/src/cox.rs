//! Cox proportional hazards with Breslow ties and baseline hazard.
//!
//! In the straggler setting the "event" is *task completion*: tasks with a
//! high completion hazard finish early. A task predicted to survive (keep
//! running) past the straggler threshold with high probability is flagged.

use nurd_linalg::{Cholesky, Matrix};
use nurd_ml::{MlError, StandardScaler};

/// Hyperparameters for [`CoxPh`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoxConfig {
    /// Newton iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the step max-norm.
    pub tol: f64,
    /// Ridge penalty on the coefficients.
    pub l2: f64,
}

impl Default for CoxConfig {
    fn default() -> Self {
        CoxConfig {
            max_iter: 30,
            tol: 1e-7,
            l2: 1e-3,
        }
    }
}

/// Marker type: fit with [`CoxPh::fit`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CoxPh;

/// A fitted proportional-hazards model with a Breslow baseline.
#[derive(Debug, Clone)]
pub struct FittedCoxPh {
    beta: Vec<f64>,
    /// Breslow cumulative baseline hazard, as `(time, H0(time))` steps in
    /// ascending time order.
    baseline: Vec<(f64, f64)>,
    scaler: StandardScaler,
}

impl CoxPh {
    /// Fits the partial likelihood by Newton-Raphson (Breslow ties).
    ///
    /// `event[i]` is true when subject `i`'s event (task completion) was
    /// observed at `time[i]`, false when censored there.
    ///
    /// # Errors
    ///
    /// Shape errors as usual; [`MlError::InvalidConfig`] when no events are
    /// observed; [`MlError::OptimizationFailed`] if the Newton system is
    /// singular beyond ridge repair.
    pub fn fit(
        x: &[Vec<f64>],
        time: &[f64],
        event: &[bool],
        config: &CoxConfig,
    ) -> Result<FittedCoxPh, MlError> {
        let first = x.first().ok_or(MlError::EmptyTrainingSet)?;
        let d = first.len();
        if x.len() != time.len() || x.len() != event.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} times and events", x.len()),
                found: format!("{} times, {} events", time.len(), event.len()),
            });
        }
        if x.iter().any(|r| r.len() != d) {
            return Err(MlError::DimensionMismatch {
                expected: format!("rows of width {d}"),
                found: "ragged rows".into(),
            });
        }
        if !event.iter().any(|&e| e) {
            return Err(MlError::InvalidConfig(
                "cox model needs at least one observed event".into(),
            ));
        }

        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let n = xs.len();

        // Sort by descending time so the risk set grows incrementally.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| time[b].partial_cmp(&time[a]).expect("finite times"));

        let mut beta = vec![0.0; d];
        for _ in 0..config.max_iter {
            // One pass accumulating risk-set sums in descending time.
            let mut grad = vec![0.0; d];
            let mut hess = Matrix::zeros(d, d);
            let mut s0 = 0.0; // Σ exp(xβ) over the risk set
            let mut s1 = vec![0.0; d]; // Σ x·exp(xβ)
            let mut s2 = Matrix::zeros(d, d); // Σ xxᵀ·exp(xβ)
            let mut idx = 0;
            while idx < n {
                // Add all subjects with this time (and later, already added)
                // to the risk set.
                let t = time[order[idx]];
                let mut tie_end = idx;
                while tie_end < n && time[order[tie_end]] == t {
                    let i = order[tie_end];
                    let w = nurd_linalg::dot(&beta, &xs[i]).exp();
                    s0 += w;
                    for a in 0..d {
                        s1[a] += w * xs[i][a];
                        for b in a..d {
                            let v = s2.get(a, b) + w * xs[i][a] * xs[i][b];
                            s2.set(a, b, v);
                        }
                    }
                    tie_end += 1;
                }
                // Contributions of events at this time (Breslow: all share
                // the same risk-set sums).
                for &i in &order[idx..tie_end] {
                    if !event[i] {
                        continue;
                    }
                    for a in 0..d {
                        grad[a] += xs[i][a] - s1[a] / s0;
                        for b in a..d {
                            let v =
                                hess.get(a, b) + (s2.get(a, b) / s0 - (s1[a] / s0) * (s1[b] / s0));
                            hess.set(a, b, v);
                        }
                    }
                }
                idx = tie_end;
            }
            for a in 0..d {
                grad[a] -= config.l2 * beta[a];
                let v = hess.get(a, a) + config.l2;
                hess.set(a, a, v);
                for b in 0..a {
                    hess.set(a, b, hess.get(b, a));
                }
            }

            // Damped Newton step.
            let mut damping = 0.0;
            let step = loop {
                let damped = if damping == 0.0 {
                    hess.clone()
                } else {
                    hess.add(&Matrix::identity(d).scaled(damping))
                        .expect("shapes match")
                };
                match Cholesky::decompose(&damped) {
                    Ok(chol) => {
                        break chol.solve(&grad).map_err(|e| {
                            MlError::OptimizationFailed(format!("newton solve: {e}"))
                        })?
                    }
                    Err(_) => {
                        damping = if damping == 0.0 { 1e-8 } else { damping * 10.0 };
                        if damping > 1e8 {
                            return Err(MlError::OptimizationFailed(
                                "cox hessian singular beyond repair".into(),
                            ));
                        }
                    }
                }
            };
            let mut max_update = 0.0f64;
            for (b, s) in beta.iter_mut().zip(&step) {
                *b += s;
                max_update = max_update.max(s.abs());
            }
            // Guard runaway coefficients under separation.
            for b in beta.iter_mut() {
                *b = b.clamp(-20.0, 20.0);
            }
            if max_update < config.tol {
                break;
            }
        }

        // Breslow baseline cumulative hazard (ascending time).
        let mut asc: Vec<usize> = (0..n).collect();
        asc.sort_by(|&a, &b| time[a].partial_cmp(&time[b]).expect("finite times"));
        let exp_scores: Vec<f64> = xs
            .iter()
            .map(|row| nurd_linalg::dot(&beta, row).exp())
            .collect();
        let mut at_risk: f64 = exp_scores.iter().sum();
        let mut baseline = Vec::new();
        let mut cumulative = 0.0;
        let mut idx = 0;
        while idx < n {
            let t = time[asc[idx]];
            let mut tie_end = idx;
            let mut deaths = 0usize;
            let mut removed = 0.0;
            while tie_end < n && time[asc[tie_end]] == t {
                let i = asc[tie_end];
                if event[i] {
                    deaths += 1;
                }
                removed += exp_scores[i];
                tie_end += 1;
            }
            if deaths > 0 && at_risk > 0.0 {
                cumulative += deaths as f64 / at_risk;
                baseline.push((t, cumulative));
            }
            at_risk -= removed;
            idx = tie_end;
        }

        Ok(FittedCoxPh {
            beta,
            baseline,
            scaler,
        })
    }
}

impl FittedCoxPh {
    /// Relative risk `exp(xᵀβ)` (hazard ratio against the baseline).
    ///
    /// # Panics
    ///
    /// Panics if `features` has a different width than the training data.
    #[must_use]
    pub fn relative_risk(&self, features: &[f64]) -> f64 {
        let z = self.scaler.transform_row(features);
        nurd_linalg::dot(&self.beta, &z).exp()
    }

    /// Survival probability `S(t | x) = exp(−H0(t) · exp(xᵀβ))`.
    #[must_use]
    pub fn survival_at(&self, features: &[f64], t: f64) -> f64 {
        let h0 = match self
            .baseline
            .binary_search_by(|(bt, _)| bt.partial_cmp(&t).expect("finite times"))
        {
            Ok(i) => self.baseline[i].1,
            Err(0) => 0.0,
            Err(i) => self.baseline[i - 1].1,
        };
        (-h0 * self.relative_risk(features)).exp()
    }

    /// Coefficients in standardized feature space.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Completion times shrink with x (higher x = faster completion =
    /// higher hazard): β should be positive.
    #[test]
    fn recovers_hazard_direction() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 6) as f64]).collect();
        let time: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, r)| 10.0 / (1.0 + r[0]) + 0.1 * (i % 3) as f64)
            .collect();
        let event = vec![true; 60];
        let model = CoxPh::fit(&x, &time, &event, &CoxConfig::default()).unwrap();
        assert!(
            model.coefficients()[0] > 0.5,
            "beta {:?}",
            model.coefficients()
        );
        assert!(model.relative_risk(&[5.0]) > model.relative_risk(&[0.0]));
    }

    #[test]
    fn survival_decreases_over_time() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 4) as f64]).collect();
        let time: Vec<f64> = (0..40).map(|i| 1.0 + (i % 10) as f64).collect();
        let event = vec![true; 40];
        let model = CoxPh::fit(&x, &time, &event, &CoxConfig::default()).unwrap();
        let probe = [2.0];
        let s1 = model.survival_at(&probe, 2.0);
        let s2 = model.survival_at(&probe, 8.0);
        assert!(s1 > s2, "S(2)={s1} should exceed S(8)={s2}");
        assert!((0.0..=1.0).contains(&s1) && (0.0..=1.0).contains(&s2));
    }

    #[test]
    fn censored_subjects_extend_risk_sets() {
        // All else equal, censoring half the subjects changes the baseline
        // but must not crash and must keep survival in [0,1].
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 3) as f64]).collect();
        let time: Vec<f64> = (0..30).map(|i| 1.0 + i as f64 * 0.3).collect();
        let event: Vec<bool> = (0..30).map(|i| i % 2 == 0).collect();
        let model = CoxPh::fit(&x, &time, &event, &CoxConfig::default()).unwrap();
        let s = model.survival_at(&[1.0], 5.0);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn survival_before_first_event_is_one() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let time: Vec<f64> = (0..10).map(|i| 5.0 + i as f64).collect();
        let event = vec![true; 10];
        let model = CoxPh::fit(&x, &time, &event, &CoxConfig::default()).unwrap();
        assert!((model.survival_at(&[3.0], 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_no_events() {
        let x = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            CoxPh::fit(&x, &[1.0, 2.0], &[false, false], &CoxConfig::default()),
            Err(MlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let x = vec![vec![1.0]];
        assert!(CoxPh::fit(&x, &[1.0, 2.0], &[true], &CoxConfig::default()).is_err());
    }

    #[test]
    fn ties_are_handled() {
        let x: Vec<Vec<f64>> = (0..12).map(|i| vec![(i % 2) as f64]).collect();
        let time: Vec<f64> = (0..12).map(|i| ((i / 4) + 1) as f64).collect(); // triple ties
        let event = vec![true; 12];
        let model = CoxPh::fit(&x, &time, &event, &CoxConfig::default()).unwrap();
        assert!(model.survival_at(&[0.0], 2.0).is_finite());
    }
}
