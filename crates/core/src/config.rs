//! NURD hyperparameters.

use nurd_ml::{GbtConfig, LogisticConfig, TreeConfig};

/// Hyperparameters of Algorithm 1.
///
/// Defaults follow the paper where it pins values down (`ε = 0.05`, gradient
/// boosting latency head, logistic propensity model, refit at every
/// checkpoint) and this reproduction's tuning where it does not (`α` — see
/// the note on [`NurdConfig::default`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NurdConfig {
    /// Calibration range parameter `α`: `δ ∈ (−α, α)`.
    pub alpha: f64,
    /// Minimum positive weight `ε` (floor of the weighting function).
    pub epsilon: f64,
    /// Whether to apply the calibration term `δ` (false = NURD-NC, the
    /// paper's no-calibration ablation with `w = z`).
    pub calibrate: bool,
    /// Latency predictor (`h_t`) configuration.
    pub gbt: GbtConfig,
    /// Propensity model (`g_t`) configuration.
    pub logistic: LogisticConfig,
    /// Retrain every `refit_every` checkpoints (1 = paper behaviour of
    /// updating models at every checkpoint).
    pub refit_every: usize,
}

impl Default for NurdConfig {
    fn default() -> Self {
        NurdConfig {
            // The paper reports α = 0.5 for its traces. α's optimum is tied
            // to the feature-normalization convention inside ρ, which the
            // paper leaves unspecified; following its own protocol (§6,
            // manual tuning on a handful of held-out jobs) on the synthetic
            // traces of this reproduction lands at α = 0.20. The ablation
            // bench sweeps α; see EXPERIMENTS.md.
            alpha: 0.20,
            epsilon: 0.05,
            calibrate: true,
            gbt: GbtConfig {
                n_rounds: 50,
                learning_rate: 0.15,
                tree: TreeConfig {
                    max_depth: 3,
                    min_child_weight: 2.0,
                    ..TreeConfig::default()
                },
                subsample: 1.0,
                seed: 17,
            },
            // Balanced classes: the finished/running split is heavily
            // imbalanced right after warmup (4% vs 96%); without balancing,
            // every propensity collapses toward the base rate and the
            // weighting function floods the job with false positives.
            logistic: LogisticConfig {
                balanced: true,
                ..LogisticConfig::default()
            },
            refit_every: 1,
        }
    }
}

impl NurdConfig {
    /// The NURD-NC ablation: no calibration term, `w = z` (still floored at
    /// a tiny positive value to keep the division defined).
    #[must_use]
    pub fn without_calibration() -> Self {
        NurdConfig {
            calibrate: false,
            ..NurdConfig::default()
        }
    }

    /// Sets `α`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.alpha = alpha;
        self
    }

    /// Sets `ε`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1`.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        self.epsilon = epsilon;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = NurdConfig::default();
        assert_eq!(cfg.alpha, 0.20);
        assert_eq!(cfg.epsilon, 0.05);
        assert!(cfg.calibrate);
        assert_eq!(cfg.refit_every, 1);
    }

    #[test]
    fn nc_variant_disables_calibration() {
        assert!(!NurdConfig::without_calibration().calibrate);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn alpha_validated() {
        let _ = NurdConfig::default().with_alpha(0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn epsilon_validated() {
        let _ = NurdConfig::default().with_epsilon(1.0);
    }
}
