//! NURD hyperparameters.

use nurd_ml::{GbtConfig, LogisticConfig, TreeConfig};

/// Hyperparameters of Algorithm 1.
///
/// Defaults follow the paper where it pins values down (`ε = 0.05`, gradient
/// boosting latency head, logistic propensity model, refit at every
/// checkpoint) and this reproduction's tuning where it does not (`α` — see
/// the note on [`NurdConfig::default`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NurdConfig {
    /// Calibration range parameter `α`: `δ ∈ (−α, α)`.
    pub alpha: f64,
    /// Minimum positive weight `ε` (floor of the weighting function).
    pub epsilon: f64,
    /// Whether to apply the calibration term `δ` (false = NURD-NC, the
    /// paper's no-calibration ablation with `w = z`).
    pub calibrate: bool,
    /// Latency predictor (`h_t`) configuration.
    pub gbt: GbtConfig,
    /// Propensity model (`g_t`) configuration.
    pub logistic: LogisticConfig,
    /// Retrain every `refit_every` checkpoints (1 = paper behaviour of
    /// updating models at every checkpoint).
    pub refit_every: usize,
    /// How each refit of the latency head is performed: cold from scratch
    /// (the paper's protocol) or warm-started from the previous
    /// checkpoint's ensemble and bin layout. See [`RefitPolicy`].
    pub refit_policy: RefitPolicy,
    /// Score running tasks through the flattened structure-of-arrays
    /// ensemble ([`nurd_ml::FlatForest`], rebuilt once per refit) instead
    /// of walking the pointer trees per task. The two paths are
    /// **bit-identical** (property-tested), so this knob trades nothing
    /// but wall-clock time; it exists so benches can isolate the layout's
    /// effect. Default `true`.
    pub flat_scoring: bool,
    /// Rows the flat scoring kernels walk per tree step (one of
    /// [`nurd_ml::SUPPORTED_LANES`]; see [`nurd_ml::FlatForest::set_lanes`]).
    /// Wider = more independent walk chains in flight per core; scores are
    /// **bit-identical** at every width. Default
    /// [`nurd_ml::DEFAULT_LANES`].
    pub scoring_lanes: usize,
    /// Minimum running-set size before a barrier's score batch is split
    /// into lane-aligned chunks and fanned onto the shared thread pool —
    /// only when the engine has granted this predictor within-job
    /// parallelism (`set_parallelism`, `gbt.tree.n_threads > 1`). Below
    /// it, chunking overhead beats the win. Scores stay **bit-identical**
    /// at any thread count. Default 64.
    pub parallel_score_min: usize,
}

/// How the latency head is refit at each checkpoint.
///
/// Consecutive checkpoints share almost all of their finished set, so a
/// cold refit re-learns mostly what the previous model already knew. The
/// warm policies keep the previous checkpoint's [`nurd_ml::BinnedMatrix`]
/// (bin edges drift slowly; only appended rows are re-quantized) and
/// boost a few new rounds from the previous ensemble via
/// [`nurd_ml::GradientBoosting::warm_start`] — recovering nearly all the
/// accuracy of a cold refit at a fraction of the cost, exactly as the
/// paper's `refit_every` ablation (stale models degrade gracefully)
/// predicts.
#[derive(Debug, Clone, PartialEq)]
pub enum RefitPolicy {
    /// Refit from scratch at every refit checkpoint — bit-for-bit the
    /// paper protocol (and this reproduction's historical behaviour).
    AlwaysCold,
    /// Warm-start every refit, falling back to a cold refit (with a full
    /// rebin) when quantile drift exceeds
    /// [`WarmRefitConfig::drift_tolerance`] or the ensemble outgrows
    /// [`WarmRefitConfig::max_trees`].
    Warm(WarmRefitConfig),
    /// Warm-start, but force a cold refit every `cold_every`-th refit
    /// regardless of drift — bounds both staleness and ensemble size by
    /// schedule rather than by measurement.
    WarmEveryK {
        /// Cold refit cadence (`2` = alternate cold/warm; must be ≥ 1,
        /// where `1` degenerates to [`RefitPolicy::AlwaysCold`]).
        cold_every: usize,
        /// Parameters of the warm refits in between.
        warm: WarmRefitConfig,
    },
}

/// Tuning for the warm refit path (see [`RefitPolicy`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmRefitConfig {
    /// Boosting rounds added per warm refit. The cold baseline trains
    /// [`nurd_ml::GbtConfig::n_rounds`] trees; each warm refit adds only
    /// this many, so per-checkpoint tree-construction cost drops by
    /// roughly `n_rounds / warm_rounds`.
    pub warm_rounds: usize,
    /// Maximum Kolmogorov–Smirnov distance between the current feature
    /// distribution and the one the bin edges were planned on
    /// ([`nurd_ml::BinnedMatrix::append_from`]) before a full rebin +
    /// cold refit is forced.
    pub drift_tolerance: f64,
    /// Ensemble-size cap: when a warm refit would push the tree count
    /// past this, a cold refit resets the ensemble instead. Keeps
    /// prediction cost bounded over arbitrarily long jobs.
    pub max_trees: usize,
}

/// Defaults tuned on 200-task Google-style replays (see the
/// `warm_vs_cold` bench group): 24 warm rounds keep out-of-sample latency
/// MSE within ±1% of a cold refit while cutting per-checkpoint refit time
/// well over 2×; the 0.12 KS tolerance lets the early-job distribution
/// shift (short tasks finish first) trigger a couple of full rebins and
/// then settle.
impl Default for WarmRefitConfig {
    fn default() -> Self {
        WarmRefitConfig {
            warm_rounds: 24,
            drift_tolerance: 0.12,
            max_trees: 350,
        }
    }
}

impl Default for NurdConfig {
    fn default() -> Self {
        NurdConfig {
            // The paper reports α = 0.5 for its traces. α's optimum is tied
            // to the feature-normalization convention inside ρ, which the
            // paper leaves unspecified; following its own protocol (§6,
            // manual tuning on a handful of held-out jobs) on the synthetic
            // traces of this reproduction lands at α = 0.20. The ablation
            // bench sweeps α; see EXPERIMENTS.md.
            alpha: 0.20,
            epsilon: 0.05,
            calibrate: true,
            gbt: GbtConfig {
                n_rounds: 50,
                learning_rate: 0.15,
                tree: TreeConfig {
                    max_depth: 3,
                    min_child_weight: 2.0,
                    ..TreeConfig::default()
                },
                subsample: 1.0,
                seed: 17,
            },
            // Balanced classes: the finished/running split is heavily
            // imbalanced right after warmup (4% vs 96%); without balancing,
            // every propensity collapses toward the base rate and the
            // weighting function floods the job with false positives.
            logistic: LogisticConfig {
                balanced: true,
                ..LogisticConfig::default()
            },
            refit_every: 1,
            refit_policy: RefitPolicy::AlwaysCold,
            flat_scoring: true,
            scoring_lanes: nurd_ml::DEFAULT_LANES,
            parallel_score_min: 64,
        }
    }
}

impl NurdConfig {
    /// The NURD-NC ablation: no calibration term, `w = z` (still floored at
    /// a tiny positive value to keep the division defined).
    #[must_use]
    pub fn without_calibration() -> Self {
        NurdConfig {
            calibrate: false,
            ..NurdConfig::default()
        }
    }

    /// Sets `α`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.alpha = alpha;
        self
    }

    /// Sets `ε`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1`.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        self.epsilon = epsilon;
        self
    }

    /// Sets the refit policy of the latency head.
    ///
    /// # Panics
    ///
    /// Panics when a policy's parameters are degenerate: zero
    /// `warm_rounds`, a `drift_tolerance` outside `(0, 1]`, `max_trees`
    /// below the cold fit's `n_rounds`, or `cold_every == 0`.
    #[must_use]
    pub fn with_refit_policy(mut self, policy: RefitPolicy) -> Self {
        let check_warm = |w: &WarmRefitConfig| {
            assert!(w.warm_rounds > 0, "warm_rounds must be >= 1");
            assert!(
                w.drift_tolerance > 0.0 && w.drift_tolerance <= 1.0,
                "drift_tolerance must be in (0, 1]"
            );
            assert!(
                w.max_trees >= self.gbt.n_rounds,
                "max_trees must cover at least one cold fit"
            );
        };
        match &policy {
            RefitPolicy::AlwaysCold => {}
            RefitPolicy::Warm(w) => check_warm(w),
            RefitPolicy::WarmEveryK { cold_every, warm } => {
                assert!(*cold_every >= 1, "cold_every must be >= 1");
                check_warm(warm);
            }
        }
        self.refit_policy = policy;
        self
    }

    /// Enables or disables flat-layout scoring (see
    /// [`NurdConfig::flat_scoring`]); predictions are bit-identical either
    /// way.
    #[must_use]
    pub fn with_flat_scoring(mut self, flat: bool) -> Self {
        self.flat_scoring = flat;
        self
    }

    /// Sets the lane width of the flat scoring kernels (see
    /// [`NurdConfig::scoring_lanes`]); predictions are bit-identical at
    /// every width.
    ///
    /// # Panics
    ///
    /// Panics unless `lanes` is one of [`nurd_ml::SUPPORTED_LANES`].
    #[must_use]
    pub fn with_scoring_lanes(mut self, lanes: usize) -> Self {
        assert!(
            nurd_ml::SUPPORTED_LANES.contains(&lanes),
            "scoring_lanes must be one of {:?}",
            nurd_ml::SUPPORTED_LANES
        );
        self.scoring_lanes = lanes;
        self
    }

    /// Sets the minimum batch size for pool-parallel barrier scoring
    /// (see [`NurdConfig::parallel_score_min`]).
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero (use a large value, not 0, to effectively
    /// disable splitting — 0 would claim "always split", including
    /// empty batches).
    #[must_use]
    pub fn with_parallel_score_min(mut self, min: usize) -> Self {
        assert!(min > 0, "parallel_score_min must be >= 1");
        self.parallel_score_min = min;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = NurdConfig::default();
        assert_eq!(cfg.alpha, 0.20);
        assert_eq!(cfg.epsilon, 0.05);
        assert!(cfg.calibrate);
        assert_eq!(cfg.refit_every, 1);
        assert_eq!(cfg.refit_policy, RefitPolicy::AlwaysCold);
        assert_eq!(cfg.scoring_lanes, nurd_ml::DEFAULT_LANES);
        assert_eq!(cfg.parallel_score_min, 64);
    }

    #[test]
    fn scoring_lane_builder_accepts_supported_widths() {
        for lanes in nurd_ml::SUPPORTED_LANES {
            assert_eq!(
                NurdConfig::default()
                    .with_scoring_lanes(lanes)
                    .scoring_lanes,
                lanes
            );
        }
    }

    #[test]
    #[should_panic(expected = "scoring_lanes must be one of")]
    fn scoring_lanes_validated() {
        let _ = NurdConfig::default().with_scoring_lanes(3);
    }

    #[test]
    #[should_panic(expected = "parallel_score_min must be >= 1")]
    fn parallel_score_min_validated() {
        let _ = NurdConfig::default().with_parallel_score_min(0);
    }

    #[test]
    fn warm_policy_builder_accepts_sane_parameters() {
        let cfg = NurdConfig::default().with_refit_policy(RefitPolicy::Warm(WarmRefitConfig {
            warm_rounds: 4,
            drift_tolerance: 0.2,
            max_trees: 200,
        }));
        assert!(matches!(cfg.refit_policy, RefitPolicy::Warm(_)));
        let cfg = NurdConfig::default().with_refit_policy(RefitPolicy::WarmEveryK {
            cold_every: 5,
            warm: WarmRefitConfig::default(),
        });
        assert!(matches!(cfg.refit_policy, RefitPolicy::WarmEveryK { .. }));
    }

    #[test]
    #[should_panic(expected = "warm_rounds must be >= 1")]
    fn warm_policy_rejects_zero_rounds() {
        let _ = NurdConfig::default().with_refit_policy(RefitPolicy::Warm(WarmRefitConfig {
            warm_rounds: 0,
            ..WarmRefitConfig::default()
        }));
    }

    #[test]
    #[should_panic(expected = "max_trees must cover at least one cold fit")]
    fn warm_policy_rejects_tiny_tree_cap() {
        let _ = NurdConfig::default().with_refit_policy(RefitPolicy::Warm(WarmRefitConfig {
            max_trees: 10,
            ..WarmRefitConfig::default()
        }));
    }

    #[test]
    fn nc_variant_disables_calibration() {
        assert!(!NurdConfig::without_calibration().calibrate);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn alpha_validated() {
        let _ = NurdConfig::default().with_alpha(0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn epsilon_validated() {
        let _ = NurdConfig::default().with_epsilon(1.0);
    }
}
