//! NURD: Negative-Unlabeled learning with Reweighting and
//! Distribution-compensation (Ding et al., MLSys 2022) — Algorithm 1.
//!
//! NURD predicts which running tasks of a datacenter job will straggle,
//! training only on *negative* examples (tasks that already finished — all
//! non-stragglers by construction) plus the unlabeled running tasks:
//!
//! 1. a gradient-boosted latency predictor `h_t` is fit on finished tasks;
//! 2. a logistic propensity model `g_t` estimates
//!    `z = P(finished | features)`;
//! 3. each running task's latency prediction is *reweighted*,
//!    `ŷ_adj = ŷ / max(ε, min(z + δ, 1))`, so tasks whose features look
//!    unlike any finished task have their predicted latency dilated;
//! 4. the calibration term `δ = 1/(1+ρ) − α` compensates for the job's
//!    latency shape without distributional assumptions, using only the
//!    feature-centroid ratio `ρ = ‖c_fin‖ / ‖c_run − c_fin‖`;
//! 5. a task is flagged a straggler when `ŷ_adj ≥ τ_stra`.
//!
//! [`NurdPredictor`] implements [`nurd_data::OnlinePredictor`] and is
//! driven by `nurd_sim::replay_job`; [`NurdConfig::without_calibration`]
//! yields the paper's NURD-NC ablation (`w = z`).
//!
//! # Warm-start refits
//!
//! Because consecutive checkpoints share almost all of their finished
//! set, the per-checkpoint refit of `h_t` can be *incremental*:
//! [`RefitPolicy`] (on [`NurdConfig`]) selects between the paper's
//! always-cold protocol and warm-started refits, where a
//! [`WarmRefitState`] keeps the previous checkpoint's
//! [`nurd_ml::BinnedMatrix`] and ensemble alive, absorbs only the newly
//! finished tasks ([`nurd_data::FinishedDelta`]), and boosts a few new
//! rounds via [`nurd_ml::GradientBoosting::warm_start`] — falling back
//! to a cold refit when measured quantile drift or the ensemble-size cap
//! says so. [`TransferNurdPredictor`] and the GBTR baseline in
//! `nurd-baselines` reuse the same state machine. See `ARCHITECTURE.md`
//! (repo root) for the full data-flow picture.
//!
//! # Example
//!
//! ```
//! use nurd_core::{NurdConfig, NurdPredictor};
//! use nurd_data::OnlinePredictor;
//!
//! let mut nurd = NurdPredictor::new(NurdConfig::default());
//! assert_eq!(nurd.name(), "NURD");
//! ```

mod calibration;
mod config;
mod model;
mod refit;
mod transfer;
mod weighting;

pub use calibration::{calibration_delta, centroid_ratio};
pub use config::{NurdConfig, RefitPolicy, WarmRefitConfig};
pub use model::{AdjustedPrediction, NurdPredictor};
pub use refit::{RefitStats, WarmRefitState};
pub use transfer::{DonorModel, TransferNurdPredictor};
pub use weighting::{adjusted_latency, weight};
