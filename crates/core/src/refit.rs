//! Warm-start refit orchestration across checkpoints.
//!
//! NURD refits its latency head at every checkpoint over a finished set
//! that is almost identical to the previous checkpoint's, so a cold refit
//! spends most of its time re-learning what the last model already knew.
//! [`WarmRefitState`] is the per-predictor scratch that exploits this:
//!
//! 1. an **append-only design matrix** ([`nurd_linalg::FeatureMatrix`]) of
//!    every finished task absorbed so far, fed by
//!    [`nurd_data::FinishedDelta`] (finished tasks are frozen, so the
//!    prefix never changes);
//! 2. a **persistent [`BinnedMatrix`]** grown in place via
//!    [`BinnedMatrix::append_from`] — only the handful of newly finished
//!    rows are re-quantized, and a Kolmogorov–Smirnov drift statistic
//!    guards against stale quantile edges;
//! 3. the **previous ensemble**, extended by a few rounds per checkpoint
//!    through [`GradientBoosting::warm_start`] instead of being refit
//!    from scratch.
//!
//! The policy knobs live in [`RefitPolicy`](crate::RefitPolicy); this
//! module implements the mechanism. [`crate::NurdPredictor`],
//! [`crate::TransferNurdPredictor`], and the GBTR baseline in
//! `nurd-baselines` all drive the same state machine.

use nurd_data::{Checkpoint, FinishedDelta};
use nurd_linalg::FeatureMatrix;
use nurd_ml::{BinnedMatrix, GbtConfig, GradientBoosting, MlError, SquaredLoss};

use crate::config::{RefitPolicy, WarmRefitConfig};

/// Counters describing how a [`WarmRefitState`] has been refitting;
/// useful for benches, tests, and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefitStats {
    /// Full from-scratch fits (including warm-policy fallbacks).
    pub cold_fits: usize,
    /// Warm-started fits (a few rounds boosted onto the previous model).
    pub warm_fits: usize,
    /// Refits skipped entirely because no new row had arrived.
    pub reuses: usize,
    /// Cold fallbacks forced by quantile drift past tolerance.
    pub drift_rebins: usize,
    /// Cold fallbacks forced by the `max_trees` ensemble cap.
    pub cap_resets: usize,
}

/// Persistent cross-checkpoint scratch for the warm-start refit path: the
/// absorbed finished set, its quantization, and the current latency model.
///
/// One instance lives inside each predictor that opts into a warm
/// [`RefitPolicy`](crate::RefitPolicy); [`WarmRefitState::reset`] clears it
/// between jobs while keeping allocations.
#[derive(Debug, Clone, Default)]
pub struct WarmRefitState {
    x: FeatureMatrix,
    latencies: Vec<f64>,
    delta: FinishedDelta,
    binned: Option<BinnedMatrix>,
    model: Option<GradientBoosting<SquaredLoss>>,
    /// Raw per-row scores of the current model over the absorbed rows —
    /// the cache that lets a warm refit replay the previous ensemble only
    /// over rows appended since the last fit (see
    /// [`GradientBoosting::warm_start_cached`]).
    scores: Vec<f64>,
    /// Rows the current model was fit over (for the no-new-data skip).
    fitted_rows: usize,
    /// Refits performed this job (drives `WarmEveryK` scheduling).
    refits: usize,
    stats: RefitStats,
}

impl WarmRefitState {
    /// An empty state (no task absorbed, no model).
    #[must_use]
    pub fn new() -> Self {
        WarmRefitState::default()
    }

    /// Clears everything for a new job, retaining buffer allocations.
    pub fn reset(&mut self) {
        self.x.fill_from_rows(std::iter::empty());
        self.latencies.clear();
        self.delta.clear();
        self.binned = None;
        self.model = None;
        self.scores.clear();
        self.fitted_rows = 0;
        self.refits = 0;
        self.stats = RefitStats::default();
    }

    /// Absorbs the checkpoint's newly finished tasks into the append-only
    /// design matrix (features + latencies, in stable absorb order);
    /// returns how many rows were added.
    pub fn absorb(&mut self, checkpoint: &Checkpoint<'_>) -> usize {
        let fresh = self.delta.absorb(checkpoint);
        if fresh.is_empty() {
            return 0;
        }
        self.x.append_rows(fresh.iter().map(|t| t.features));
        self.latencies.extend(fresh.iter().map(|t| t.latency));
        fresh.len()
    }

    /// Rows absorbed so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.x.rows()
    }

    /// The absorbed design matrix (row `i` is the `i`-th absorbed task).
    #[must_use]
    pub fn features(&self) -> &FeatureMatrix {
        &self.x
    }

    /// Observed latencies aligned with [`WarmRefitState::features`] rows.
    #[must_use]
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// The current latency model, if one has been fit this job.
    #[must_use]
    pub fn model(&self) -> Option<&GradientBoosting<SquaredLoss>> {
        self.model.as_ref()
    }

    /// Refit counters for this job.
    #[must_use]
    pub fn stats(&self) -> RefitStats {
        self.stats
    }

    /// Refits the latency model against the absorbed latencies under
    /// `policy`. Because each row's target is immutable, a refit with no
    /// new rows since the previous one reuses the current model for free.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] before any row is absorbed; otherwise
    /// whatever the underlying fit propagates.
    pub fn refit(&mut self, gbt: &GbtConfig, policy: &RefitPolicy) -> Result<(), MlError> {
        let WarmRefitState {
            x,
            latencies,
            binned,
            model,
            scores,
            fitted_rows,
            refits,
            stats,
            ..
        } = self;
        refit_fields(
            x,
            latencies,
            true,
            binned,
            model,
            scores,
            fitted_rows,
            refits,
            stats,
            gbt,
            policy,
        )
    }

    /// Refits against caller-supplied targets aligned with the absorbed
    /// rows — the transfer predictor's residual head, whose targets move
    /// with the running latency median. The no-new-data skip is disabled
    /// (targets may have changed even when rows have not).
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] before any row is absorbed,
    /// [`MlError::DimensionMismatch`] when `y` does not cover every row;
    /// otherwise whatever the underlying fit propagates.
    pub fn refit_against(
        &mut self,
        y: &[f64],
        gbt: &GbtConfig,
        policy: &RefitPolicy,
    ) -> Result<(), MlError> {
        let WarmRefitState {
            x,
            binned,
            model,
            scores,
            fitted_rows,
            refits,
            stats,
            ..
        } = self;
        refit_fields(
            x,
            y,
            false,
            binned,
            model,
            scores,
            fitted_rows,
            refits,
            stats,
            gbt,
            policy,
        )
    }
}

/// The policy state machine, operating on disjoint field borrows so both
/// target sources (owned latencies / caller residuals) share one
/// implementation.
#[allow(clippy::too_many_arguments)]
fn refit_fields(
    x: &FeatureMatrix,
    y: &[f64],
    targets_stable: bool,
    binned: &mut Option<BinnedMatrix>,
    model: &mut Option<GradientBoosting<SquaredLoss>>,
    scores: &mut Vec<f64>,
    fitted_rows: &mut usize,
    refits: &mut usize,
    stats: &mut RefitStats,
    gbt: &GbtConfig,
    policy: &RefitPolicy,
) -> Result<(), MlError> {
    let n = x.rows();
    if n == 0 {
        return Err(MlError::EmptyTrainingSet);
    }
    if y.len() != n {
        return Err(MlError::DimensionMismatch {
            expected: format!("{n} targets"),
            found: format!("{} targets", y.len()),
        });
    }
    // Validate here — where the policy is consumed — not only in the
    // `NurdConfig::with_refit_policy` builder: policies can arrive via
    // the pub field or `GbtrPredictor::with_policy` without ever passing
    // through it, and a zero-round warm refit would silently freeze the
    // model forever.
    if let RefitPolicy::Warm(w) | RefitPolicy::WarmEveryK { warm: w, .. } = policy {
        if w.warm_rounds == 0 {
            return Err(MlError::InvalidConfig(
                "warm_rounds must be >= 1 (0 would freeze the model)".into(),
            ));
        }
        if !(w.drift_tolerance > 0.0 && w.drift_tolerance <= 1.0) {
            return Err(MlError::InvalidConfig(format!(
                "drift_tolerance must be in (0, 1], got {}",
                w.drift_tolerance
            )));
        }
    }

    // Nothing new to learn: targets immutable and no appended row since
    // the current model was fit. Checked before the schedule so a reuse
    // does not consume a `WarmEveryK` cold slot.
    if targets_stable && model.is_some() && *fitted_rows == n {
        stats.reuses += 1;
        return Ok(());
    }

    // Which flavour does the schedule ask for this time? `refits` counts
    // *performed* fits only (incremented on success below), so scheduled
    // cold refits cannot be skipped by reuses or failed fits.
    let warm_cfg: Option<&WarmRefitConfig> = match policy {
        RefitPolicy::AlwaysCold => None,
        RefitPolicy::Warm(w) => Some(w),
        RefitPolicy::WarmEveryK { cold_every, warm } => {
            if refits.is_multiple_of(*cold_every.max(&1)) {
                None
            } else {
                Some(warm)
            }
        }
    };

    // A warm refit needs a previous model and a binned matrix that is a
    // prefix of the current rows with live edges.
    let mut warm = warm_cfg
        .filter(|_| model.is_some())
        .filter(|_| binned.as_ref().is_some_and(|b| b.rows() <= n));

    if let Some(w) = warm {
        let b = binned.as_mut().expect("checked above");
        let drift = if b.rows() < n {
            b.append_from(x.view())
        } else {
            b.drift()
        };
        if drift > w.drift_tolerance {
            stats.drift_rebins += 1;
            warm = None;
        } else if model.as_ref().expect("checked above").tree_count() + w.warm_rounds > w.max_trees
        {
            stats.cap_resets += 1;
            warm = None;
        }
    }

    match warm {
        Some(w) => {
            let b = binned.as_ref().expect("warm requires binning");
            let prev = model.as_ref().expect("warm requires a model");
            *model = Some(GradientBoosting::warm_start_cached(
                prev,
                b,
                y,
                w.warm_rounds,
                gbt,
                scores,
            )?);
            stats.warm_fits += 1;
        }
        None => {
            // Cold: rebuild the quantization from scratch too, so edges,
            // codes, and ensemble all reflect exactly the current data —
            // what a from-scratch fit would produce. `build_for` honors
            // the `TreeConfig::n_threads` fan-out with identical output.
            let fresh = BinnedMatrix::build_for(x.view(), &gbt.tree);
            *model = Some(GradientBoosting::fit_binned_cached(
                &fresh,
                y,
                SquaredLoss,
                gbt,
                scores,
            )?);
            *binned = Some(fresh);
            stats.cold_fits += 1;
        }
    }
    *fitted_rows = n;
    *refits += 1;
    Ok(())
}

/// Encodes a column-major [`FeatureMatrix`] (dims + columns, bit-exact).
/// Lives here rather than in `nurd-linalg` so the linear-algebra crate
/// stays codec-free; `nurd-serve` reuses it via [`WarmRefitState`].
pub(crate) fn encode_feature_matrix(m: &FeatureMatrix, enc: &mut nurd_codec::Encoder) {
    enc.put_usize(m.rows());
    enc.put_usize(m.cols());
    for c in 0..m.cols() {
        for &v in m.column(c) {
            enc.put_f64(v);
        }
    }
}

/// Inverse of [`encode_feature_matrix`].
pub(crate) fn decode_feature_matrix(
    dec: &mut nurd_codec::Decoder<'_>,
) -> Result<FeatureMatrix, nurd_codec::CodecError> {
    let rows = dec.take_usize()?;
    let cols = dec.take_usize()?;
    let cells = rows.checked_mul(cols).unwrap_or(u64::MAX as usize);
    let need = cells.saturating_mul(8);
    if need > dec.remaining() {
        return Err(nurd_codec::CodecError::LengthOverrun {
            declared: cells as u64,
            remaining: dec.remaining(),
        });
    }
    let mut m = FeatureMatrix::zeros(rows, cols);
    for c in 0..cols {
        for r in 0..rows {
            m.set(r, c, dec.take_f64()?);
        }
    }
    Ok(m)
}

impl nurd_codec::Checkpointable for RefitStats {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        enc.put_usize(self.cold_fits);
        enc.put_usize(self.warm_fits);
        enc.put_usize(self.reuses);
        enc.put_usize(self.drift_rebins);
        enc.put_usize(self.cap_resets);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(RefitStats {
            cold_fits: dec.take_usize()?,
            warm_fits: dec.take_usize()?,
            reuses: dec.take_usize()?,
            drift_rebins: dec.take_usize()?,
            cap_resets: dec.take_usize()?,
        })
    }
}

/// The whole warm-start scratch travels — design matrix, quantization,
/// ensemble, score cache, counters — so a restored predictor's next refit
/// takes exactly the warm/cold branch an uninterrupted run would take.
impl nurd_codec::Checkpointable for WarmRefitState {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        encode_feature_matrix(&self.x, enc);
        self.latencies.encode(enc);
        self.delta.encode(enc);
        self.binned.encode(enc);
        self.model.encode(enc);
        self.scores.encode(enc);
        enc.put_usize(self.fitted_rows);
        enc.put_usize(self.refits);
        self.stats.encode(enc);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(WarmRefitState {
            x: decode_feature_matrix(dec)?,
            latencies: nurd_codec::Checkpointable::decode(dec)?,
            delta: nurd_codec::Checkpointable::decode(dec)?,
            binned: nurd_codec::Checkpointable::decode(dec)?,
            model: nurd_codec::Checkpointable::decode(dec)?,
            scores: nurd_codec::Checkpointable::decode(dec)?,
            fitted_rows: dec.take_usize()?,
            refits: dec.take_usize()?,
            stats: nurd_codec::Checkpointable::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_data::{FinishedTask, RunningTask};

    /// A checkpoint whose finished set is the first `k` of `tasks`.
    fn checkpoint<'a>(tasks: &'a [(Vec<f64>, f64)], k: usize) -> Checkpoint<'a> {
        Checkpoint {
            ordinal: k,
            time: k as f64,
            finished: tasks[..k]
                .iter()
                .enumerate()
                .map(|(id, (f, lat))| FinishedTask {
                    id,
                    features: f,
                    latency: *lat,
                })
                .collect(),
            running: tasks[k..]
                .iter()
                .enumerate()
                .map(|(i, (f, _))| RunningTask {
                    id: k + i,
                    features: f,
                })
                .collect(),
        }
    }

    fn tasks(n: usize) -> Vec<(Vec<f64>, f64)> {
        (0..n)
            .map(|i| {
                let a = ((i * 29) % 17) as f64;
                let b = ((i * 13) % 7) as f64;
                (vec![a, b], 5.0 + 2.0 * a - b)
            })
            .collect()
    }

    #[test]
    fn warm_policy_warms_after_first_cold_fit() {
        let ts = tasks(120);
        let mut state = WarmRefitState::new();
        let policy = RefitPolicy::Warm(WarmRefitConfig::default());
        let gbt = GbtConfig::default();
        for k in [30, 50, 70, 90, 110] {
            state.absorb(&checkpoint(&ts, k));
            state.refit(&gbt, &policy).unwrap();
        }
        let stats = state.stats();
        assert_eq!(stats.cold_fits, 1, "{stats:?}");
        assert_eq!(stats.warm_fits, 4, "{stats:?}");
        assert!(state.model().is_some());
        assert_eq!(state.rows(), 110);
    }

    #[test]
    fn no_new_rows_reuses_model() {
        let ts = tasks(60);
        let mut state = WarmRefitState::new();
        let policy = RefitPolicy::Warm(WarmRefitConfig::default());
        let gbt = GbtConfig::default();
        state.absorb(&checkpoint(&ts, 40));
        state.refit(&gbt, &policy).unwrap();
        let trees = state.model().unwrap().tree_count();
        state.absorb(&checkpoint(&ts, 40));
        state.refit(&gbt, &policy).unwrap();
        assert_eq!(state.model().unwrap().tree_count(), trees);
        assert_eq!(state.stats().reuses, 1);
    }

    #[test]
    fn tree_cap_forces_cold_reset() {
        let ts = tasks(200);
        let mut state = WarmRefitState::new();
        let gbt = GbtConfig {
            n_rounds: 20,
            ..GbtConfig::default()
        };
        let policy = RefitPolicy::Warm(WarmRefitConfig {
            warm_rounds: 10,
            drift_tolerance: 1.0,
            max_trees: 40,
        });
        // 20 → 30 → 40 → cap (would be 50) → cold reset to 20 → 30 ...
        for k in (20..=200).step_by(20) {
            state.absorb(&checkpoint(&ts, k));
            state.refit(&gbt, &policy).unwrap();
            assert!(state.model().unwrap().tree_count() <= 40);
        }
        assert!(state.stats().cap_resets >= 2, "{:?}", state.stats());
    }

    #[test]
    fn drift_forces_rebin_and_cold_fit() {
        // First half benign, second half far out of range: the appended
        // rows shift every quantile.
        let mut ts = tasks(60);
        for (i, (f, lat)) in ts.iter_mut().enumerate().skip(30) {
            f[0] = 1000.0 + i as f64;
            *lat = 2000.0;
        }
        let mut state = WarmRefitState::new();
        let gbt = GbtConfig::default();
        let policy = RefitPolicy::Warm(WarmRefitConfig {
            drift_tolerance: 0.05,
            ..WarmRefitConfig::default()
        });
        state.absorb(&checkpoint(&ts, 30));
        state.refit(&gbt, &policy).unwrap();
        state.absorb(&checkpoint(&ts, 60));
        state.refit(&gbt, &policy).unwrap();
        let stats = state.stats();
        assert_eq!(stats.drift_rebins, 1, "{stats:?}");
        assert_eq!(stats.cold_fits, 2, "{stats:?}");
        assert_eq!(stats.warm_fits, 0, "{stats:?}");
    }

    #[test]
    fn warm_every_k_schedules_cold_refits() {
        let ts = tasks(130);
        let mut state = WarmRefitState::new();
        let gbt = GbtConfig::default();
        let policy = RefitPolicy::WarmEveryK {
            cold_every: 3,
            warm: WarmRefitConfig {
                drift_tolerance: 1.0,
                ..WarmRefitConfig::default()
            },
        };
        for k in (10..=130).step_by(10) {
            state.absorb(&checkpoint(&ts, k));
            state.refit(&gbt, &policy).unwrap();
        }
        let stats = state.stats();
        // Refits 0, 3, 6, 9, 12 are cold → 5 cold, 8 warm.
        assert_eq!(stats.cold_fits, 5, "{stats:?}");
        assert_eq!(stats.warm_fits, 8, "{stats:?}");
    }

    #[test]
    fn degenerate_warm_configs_are_rejected_at_refit_time() {
        // Policies can bypass NurdConfig::with_refit_policy (pub field,
        // GbtrPredictor::with_policy), so the consumer must validate too.
        let ts = tasks(40);
        let mut state = WarmRefitState::new();
        state.absorb(&checkpoint(&ts, 30));
        let gbt = GbtConfig::default();
        let frozen = RefitPolicy::Warm(WarmRefitConfig {
            warm_rounds: 0,
            ..WarmRefitConfig::default()
        });
        assert!(matches!(
            state.refit(&gbt, &frozen),
            Err(MlError::InvalidConfig(_))
        ));
        let bad_tol = RefitPolicy::WarmEveryK {
            cold_every: 3,
            warm: WarmRefitConfig {
                drift_tolerance: 0.0,
                ..WarmRefitConfig::default()
            },
        };
        assert!(matches!(
            state.refit(&gbt, &bad_tol),
            Err(MlError::InvalidConfig(_))
        ));
        assert_eq!(state.stats().cold_fits + state.stats().warm_fits, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let ts = tasks(40);
        let mut state = WarmRefitState::new();
        state.absorb(&checkpoint(&ts, 30));
        state
            .refit(&GbtConfig::default(), &RefitPolicy::AlwaysCold)
            .unwrap();
        state.reset();
        assert_eq!(state.rows(), 0);
        assert!(state.model().is_none());
        assert_eq!(state.stats(), RefitStats::default());
        assert!(matches!(
            state.refit(&GbtConfig::default(), &RefitPolicy::AlwaysCold),
            Err(MlError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn refit_against_supports_moving_targets() {
        let ts = tasks(80);
        let mut state = WarmRefitState::new();
        let gbt = GbtConfig::default();
        let policy = RefitPolicy::Warm(WarmRefitConfig::default());
        state.absorb(&checkpoint(&ts, 50));
        let y1: Vec<f64> = state.latencies().iter().map(|l| l * 0.5).collect();
        state.refit_against(&y1, &gbt, &policy).unwrap();
        // Same rows, new targets: must refit (no reuse skip).
        let y2: Vec<f64> = state.latencies().iter().map(|l| l * 0.6).collect();
        state.refit_against(&y2, &gbt, &policy).unwrap();
        assert_eq!(state.stats().reuses, 0);
        assert_eq!(state.stats().cold_fits + state.stats().warm_fits, 2);
        // Mismatched target length is rejected.
        assert!(matches!(
            state.refit_against(&y2[..10], &gbt, &policy),
            Err(MlError::DimensionMismatch { .. })
        ));
    }
}
