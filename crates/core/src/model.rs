//! The online NURD predictor (Algorithm 1's outer loop).

use nurd_data::{Checkpoint, OnlinePredictor, ScoredPrediction, StreamContext, TaskScore};
use nurd_linalg::{FeatureMatrix, MatrixView};
use nurd_ml::{FlatForest, GradientBoosting, LogisticRegression, SquaredLoss};

use crate::refit::WarmRefitState;
use crate::{calibration, weighting, NurdConfig, RefitPolicy, RefitStats};

/// Per-task diagnostic record produced by [`NurdPredictor::score_running`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdjustedPrediction {
    /// Task id within the job.
    pub id: usize,
    /// Raw latency prediction `ŷ` from the boosted trees.
    pub raw: f64,
    /// Propensity score `z = P(finished | x)`.
    pub propensity: f64,
    /// Final weight `w = max(ε, min(z + δ, 1))`.
    pub weight: f64,
    /// Adjusted prediction `ŷ_adj = ŷ / w`.
    pub adjusted: f64,
}

/// Online NURD straggler predictor; one instance per job.
///
/// Drive it through [`nurd_sim::replay_job`] or call
/// [`NurdPredictor::score_running`] directly to observe the intermediate
/// quantities (raw prediction, propensity, weight) for each running task.
///
/// [`nurd_sim::replay_job`]: https://docs.rs/nurd-sim
#[derive(Debug, Clone)]
pub struct NurdPredictor {
    config: NurdConfig,
    threshold: f64,
    /// δ, fixed at the first prediction checkpoint (Algorithm 1 computes ρ
    /// "before starting prediction"). `None` until then.
    delta: Option<f64>,
    latency_model: Option<GradientBoosting<SquaredLoss>>,
    propensity_model: Option<LogisticRegression>,
    checkpoints_seen: usize,
    fit_failures: usize,
    /// Batches scored through the flattened SoA kernel (diagnostic; lets
    /// smoke gates assert the hot path was actually exercised).
    flat_batches: usize,
    /// Lane groups harvested from flat copies already torn down (each
    /// refit rebuilds `flat`, so the live forest's counter alone would
    /// forget every pre-refit group). [`NurdPredictor::lane_chunks`]
    /// reports this plus the live forest's count.
    lane_chunks: usize,
    name: &'static str,
    /// Scratch buffers refilled in place at every checkpoint so the
    /// per-checkpoint refit allocates nothing beyond first use: the
    /// finished∪running design matrix for the propensity model, its
    /// labels, and the finished-task latencies.
    scratch_x_all: FeatureMatrix,
    scratch_labels: Vec<f64>,
    scratch_y_fin: Vec<f64>,
    /// Reused per-checkpoint output buffers for the batch scoring pass
    /// (raw latency predictions and propensities over the running set).
    scratch_raw: Vec<f64>,
    scratch_prop: Vec<f64>,
    /// Flattened structure-of-arrays copy of the current latency head
    /// (see [`FlatForest`]): *derived* state, rebuilt after every refit
    /// and lazily after a restore — never serialized. `None` until the
    /// first fit or when [`crate::NurdConfig::flat_scoring`] is off.
    flat: Option<FlatForest>,
    /// Cross-checkpoint state for warm [`RefitPolicy`] variants: the
    /// absorbed finished set, its quantization, and the latency model it
    /// carries. Unused (and empty) under [`RefitPolicy::AlwaysCold`],
    /// whose refits go through the historical from-scratch path
    /// bit-for-bit.
    warm: WarmRefitState,
}

impl NurdPredictor {
    /// Creates a predictor with the given configuration. The table name
    /// follows the configuration: `NURD` for the paper protocol,
    /// `NURD-NC` for the no-calibration ablation, `NURD-WS` when a warm
    /// [`RefitPolicy`] is active (the warm-start row of the extended
    /// Table 3).
    #[must_use]
    pub fn new(config: NurdConfig) -> Self {
        let name = match (config.calibrate, &config.refit_policy) {
            (false, _) => "NURD-NC",
            (true, RefitPolicy::AlwaysCold) => "NURD",
            (true, _) => "NURD-WS",
        };
        NurdPredictor {
            config,
            threshold: f64::INFINITY,
            delta: None,
            latency_model: None,
            propensity_model: None,
            checkpoints_seen: 0,
            fit_failures: 0,
            flat_batches: 0,
            lane_chunks: 0,
            name,
            scratch_x_all: FeatureMatrix::new(),
            scratch_labels: Vec::new(),
            scratch_y_fin: Vec::new(),
            scratch_raw: Vec::new(),
            scratch_prop: Vec::new(),
            flat: None,
            warm: WarmRefitState::new(),
        }
    }

    /// The calibration term δ, once computed (at the first prediction
    /// checkpoint); `None` before that or for NURD-NC.
    #[must_use]
    pub fn delta(&self) -> Option<f64> {
        self.delta
    }

    /// Number of checkpoints at which model fitting failed (degenerate
    /// training data); predictions at those checkpoints were skipped.
    #[must_use]
    pub fn fit_failures(&self) -> usize {
        self.fit_failures
    }

    /// Number of running-set batches scored through the flattened
    /// structure-of-arrays kernel so far ([`crate::NurdConfig::flat_scoring`]);
    /// stays zero on the pointer-tree path. Diagnostic only — smoke gates
    /// use it to assert the hot path is actually exercised.
    #[must_use]
    pub fn flat_batches(&self) -> usize {
        self.flat_batches
    }

    /// Number of full lane groups the multi-lane scoring kernels have
    /// processed for this job so far (across every flat rebuild); stays
    /// zero with `scoring_lanes == 1`, on the pointer-tree path, and for
    /// batches narrower than the lane width. Diagnostic only — the
    /// lane-width twin of [`NurdPredictor::flat_batches`], used by smoke
    /// gates to assert the lane kernels actually ran.
    #[must_use]
    pub fn lane_chunks(&self) -> usize {
        self.lane_chunks + self.flat.as_ref().map_or(0, FlatForest::lane_chunks)
    }

    /// Folds the live flat copy's lane-group count into the harvested
    /// total; must be called before any `self.flat = None` teardown so
    /// [`NurdPredictor::lane_chunks`] never moves backwards.
    fn harvest_lane_chunks(&mut self) {
        self.lane_chunks += self.flat.as_ref().map_or(0, FlatForest::lane_chunks);
    }

    /// Warm/cold refit counters for the current job; all-zero under
    /// [`RefitPolicy::AlwaysCold`], whose refits bypass the warm state.
    #[must_use]
    pub fn refit_stats(&self) -> RefitStats {
        self.warm.stats()
    }

    /// Scores every running task at this checkpoint, returning the full
    /// adjusted-prediction breakdown. Returns an empty vector when there is
    /// not enough data to fit the models (fewer than two finished tasks, or
    /// no running tasks).
    pub fn score_running(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<AdjustedPrediction> {
        if checkpoint.finished.len() < 2 || checkpoint.running.is_empty() {
            return Vec::new();
        }
        // Zero-copy row views into the trace storage: only slice pointers
        // are gathered, no feature values are cloned.
        let x_fin = checkpoint.finished_feature_rows();
        let x_run = checkpoint.running_feature_rows();

        // Calibration happens once, before the first prediction (Algorithm 1
        // lines 4–6). NURD-NC skips it and uses w = z.
        if self.delta.is_none() && self.config.calibrate {
            let rho = calibration::centroid_ratio_rows(&x_fin, &x_run);
            self.delta = Some(calibration::calibration_delta(rho, self.config.alpha));
        }

        // Refit h_t and g_t (line 11). `refit_every` > 1 reuses stale models
        // between refits, an ablation knob beyond the paper.
        let have_latency_model = match self.config.refit_policy {
            RefitPolicy::AlwaysCold => self.latency_model.is_some(),
            _ => self.warm.model().is_some(),
        };
        let refit = self
            .checkpoints_seen
            .is_multiple_of(self.config.refit_every.max(1))
            || !have_latency_model;
        self.checkpoints_seen += 1;
        if refit {
            // Invalidated up front so an early return on a failed fit can
            // never leave the flat cache pointing at a superseded ensemble.
            self.harvest_lane_chunks();
            self.flat = None;
            match &self.config.refit_policy {
                // The historical from-scratch path, kept byte-identical:
                // bin and fit over the checkpoint's own row order.
                RefitPolicy::AlwaysCold => {
                    checkpoint.finished_latencies_into(&mut self.scratch_y_fin);
                    match GradientBoosting::fit_view(
                        MatrixView::RowSlices(&x_fin),
                        &self.scratch_y_fin,
                        SquaredLoss,
                        &self.config.gbt,
                    ) {
                        Ok(m) => self.latency_model = Some(m),
                        Err(_) => {
                            self.fit_failures += 1;
                            return Vec::new();
                        }
                    }
                }
                // Warm policies: absorb the checkpoint delta into the
                // persistent state and refit incrementally (cold fallback
                // on drift / tree-cap / first fit handled inside).
                policy => {
                    self.warm.absorb(checkpoint);
                    if self.warm.refit(&self.config.gbt, policy).is_err() {
                        self.fit_failures += 1;
                        return Vec::new();
                    }
                }
            }
            // Finished ∪ running design matrix and labels for g_t, filled
            // into the predictor's scratch buffers in place (the row list
            // is pointer-only; feature values are copied exactly once,
            // into the reused column-major scratch). The training set
            // mixes the mutable running side, so g_t is always *refit* on
            // the full current data — but under a warm policy, IRLS is
            // *seeded* from the previous checkpoint's coefficients
            // (remapped across the standardization shift) and typically
            // converges in one or two Newton steps instead of several.
            // `AlwaysCold` passes no seed and stays bit-for-bit the paper
            // protocol.
            let all_rows: Vec<&[f64]> = x_fin.iter().chain(x_run.iter()).copied().collect();
            self.scratch_x_all.fill_from_rows(all_rows.iter().copied());
            self.scratch_labels.clear();
            self.scratch_labels
                .extend(std::iter::repeat_n(1.0, x_fin.len()));
            self.scratch_labels
                .extend(std::iter::repeat_n(0.0, x_run.len()));
            let seed = match self.config.refit_policy {
                RefitPolicy::AlwaysCold => None,
                _ => self.propensity_model.as_ref(),
            };
            match LogisticRegression::fit_view_warm(
                self.scratch_x_all.view(),
                &self.scratch_labels,
                &self.config.logistic,
                seed,
            ) {
                Ok(m) => self.propensity_model = Some(m),
                Err(_) => {
                    self.fit_failures += 1;
                    return Vec::new();
                }
            }
        }
        // Keep the flattened inference copy in sync: rebuilt after every
        // refit and lazily after a restore (the flat layout is derived
        // state, never serialized or snapshotted).
        if self.config.flat_scoring {
            if refit || self.flat.is_none() {
                let model = match self.config.refit_policy {
                    RefitPolicy::AlwaysCold => self.latency_model.as_ref(),
                    _ => self.warm.model(),
                };
                let lanes = self.config.scoring_lanes;
                self.flat = model.map(|m| m.flatten().with_lanes(lanes));
            }
        } else {
            self.harvest_lane_chunks();
            self.flat = None;
        }
        let h = match self.config.refit_policy {
            RefitPolicy::AlwaysCold => self.latency_model.as_ref(),
            _ => self.warm.model(),
        };
        let (Some(h), Some(g)) = (h, &self.propensity_model) else {
            return Vec::new();
        };

        // Batch scoring over the zero-copy running-task view: one
        // structure-of-arrays pass per model into reused scratch, so the
        // steady state allocates nothing here. The pointer-tree path stays
        // selectable (`flat_scoring = false`) and is bit-identical.
        //
        // When the engine has granted this job within-job parallelism
        // (`set_parallelism` → `gbt.tree.n_threads`, the same plumbing
        // that accelerates refits) and the barrier's running set is big
        // enough to amortize the fan-out, the batch splits into
        // lane-aligned chunks scored concurrently on the shared pool —
        // still bit-identical (disjoint output slices, per-row
        // accumulation untouched; see `predict_view_into_pooled`).
        match &self.flat {
            Some(flat) => {
                let threads = self.config.gbt.tree.n_threads;
                if threads > 1 && x_run.len() >= self.config.parallel_score_min {
                    flat.predict_view_into_pooled(
                        MatrixView::RowSlices(&x_run),
                        nurd_runtime::global(),
                        threads,
                        &mut self.scratch_raw,
                    );
                } else {
                    flat.predict_view_into(MatrixView::RowSlices(&x_run), &mut self.scratch_raw);
                }
                self.flat_batches += 1;
            }
            None => {
                self.scratch_raw.clear();
                self.scratch_raw
                    .extend(h.predict_view(MatrixView::RowSlices(&x_run)));
            }
        }
        g.predict_proba_view_into(MatrixView::RowSlices(&x_run), &mut self.scratch_prop);
        checkpoint
            .running
            .iter()
            .zip(self.scratch_raw.iter().zip(&self.scratch_prop))
            .map(|(task, (&raw, &z))| {
                let w = match self.delta {
                    Some(delta) => weighting::weight(z, delta, self.config.epsilon),
                    // NURD-NC: w = z, floored only to keep division defined.
                    None => z.max(1e-9),
                };
                AdjustedPrediction {
                    id: task.id,
                    raw,
                    propensity: z,
                    weight: w,
                    adjusted: weighting::adjusted_latency(raw, w),
                }
            })
            .collect()
    }
}

impl OnlinePredictor for NurdPredictor {
    fn name(&self) -> &str {
        self.name
    }

    fn begin_stream(&mut self, ctx: &StreamContext) {
        self.threshold = ctx.threshold;
        self.delta = None;
        self.latency_model = None;
        self.propensity_model = None;
        self.checkpoints_seen = 0;
        self.fit_failures = 0;
        self.flat_batches = 0;
        self.lane_chunks = 0;
        self.flat = None;
        self.warm.reset();
    }

    /// Routes the serving engine's hint to [`nurd_ml::TreeConfig::n_threads`],
    /// which fans the latency head's quantization and histogram fills onto
    /// the shared pool — and, for barriers whose running set reaches
    /// [`NurdConfig::parallel_score_min`], splits the flat scoring batch
    /// into lane-aligned chunks scored on the same pool. Both are
    /// bit-identical at every thread count, so honoring the hint can
    /// never change a prediction.
    fn set_parallelism(&mut self, threads: usize) {
        self.config.gbt.tree.n_threads = threads;
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        let threshold = self.threshold;
        self.score_running(checkpoint)
            .into_iter()
            .filter(|p| p.adjusted >= threshold)
            .map(|p| p.id)
            .collect()
    }

    /// Exposes the continuous adjusted predictions as normalized scores
    /// (`adjusted / τ_stra`, so `>= 1.0` ⇔ flagged) from a *single*
    /// [`NurdPredictor::score_running`] pass — the flag set and the model
    /// refits are bit-identical to [`OnlinePredictor::predict`] on the
    /// same checkpoint.
    fn predict_scored(&mut self, checkpoint: &Checkpoint<'_>) -> ScoredPrediction {
        let threshold = self.threshold;
        let predictions = self.score_running(checkpoint);
        let scores = predictions
            .iter()
            .map(|p| TaskScore {
                task: p.id,
                score: if threshold > 0.0 && threshold.is_finite() {
                    p.adjusted / threshold
                } else if p.adjusted >= threshold {
                    1.0
                } else {
                    0.0
                },
            })
            .collect();
        let flagged = predictions
            .into_iter()
            .filter(|p| p.adjusted >= threshold)
            .map(|p| p.id)
            .collect();
        ScoredPrediction { flagged, scores }
    }

    /// Serializes every fitted quantity — δ, both models, the warm-refit
    /// scratch, and the checkpoint counters. Configuration, threshold, and
    /// the scratch buffers are *not* serialized: the factory recreates the
    /// config and [`OnlinePredictor::begin_stream`] restores the
    /// threshold, while the scratch matrices are refilled in place at the
    /// next checkpoint regardless.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        use nurd_codec::Checkpointable;
        let mut enc = nurd_codec::Encoder::new();
        self.delta.encode(&mut enc);
        self.latency_model.encode(&mut enc);
        self.propensity_model.encode(&mut enc);
        enc.put_usize(self.checkpoints_seen);
        enc.put_usize(self.fit_failures);
        self.warm.encode(&mut enc);
        Some(enc.into_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        use nurd_codec::Checkpointable;
        let mut dec = nurd_codec::Decoder::new(bytes);
        let Ok(delta) = Option::<f64>::decode(&mut dec) else {
            return false;
        };
        let Ok(latency_model) = Option::<GradientBoosting<SquaredLoss>>::decode(&mut dec) else {
            return false;
        };
        let Ok(propensity_model) = Option::<LogisticRegression>::decode(&mut dec) else {
            return false;
        };
        let (Ok(checkpoints_seen), Ok(fit_failures)) = (dec.take_usize(), dec.take_usize()) else {
            return false;
        };
        let Ok(warm) = WarmRefitState::decode(&mut dec) else {
            return false;
        };
        if !dec.is_empty() {
            return false;
        }
        self.delta = delta;
        self.latency_model = latency_model;
        self.propensity_model = propensity_model;
        self.checkpoints_seen = checkpoints_seen;
        self.fit_failures = fit_failures;
        self.warm = warm;
        // Derived from the restored model at the next scoring pass. Like
        // `flat_batches`, the lane counter is diagnostic local state, not
        // part of the snapshot — but the groups this process already ran
        // are still harvested so the counter never moves backwards.
        self.harvest_lane_chunks();
        self.flat = None;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_data::{FinishedTask, JobContext, RunningTask};

    /// Builds a checkpoint where finished tasks have latency ≈ features and
    /// running tasks have either similar or alien features.
    fn checkpoint<'a>(fin: &'a [(Vec<f64>, f64)], run: &'a [Vec<f64>]) -> Checkpoint<'a> {
        Checkpoint {
            ordinal: 5,
            time: 100.0,
            finished: fin
                .iter()
                .enumerate()
                .map(|(i, (f, l))| FinishedTask {
                    id: i,
                    features: f,
                    latency: *l,
                })
                .collect(),
            running: run
                .iter()
                .enumerate()
                .map(|(i, f)| RunningTask {
                    id: fin.len() + i,
                    features: f,
                })
                .collect(),
        }
    }

    fn linear_finished(n: usize) -> Vec<(Vec<f64>, f64)> {
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                (vec![x, 1.0 - x], 20.0 + 30.0 * x)
            })
            .collect()
    }

    #[test]
    fn alien_running_task_gets_low_weight_and_dilation() {
        let fin = linear_finished(40);
        let run = vec![vec![0.5, 0.5], vec![8.0, -6.0]]; // typical vs alien
        let mut nurd = NurdPredictor::new(NurdConfig::default());
        let scores = nurd.score_running(&checkpoint(&fin, &run));
        assert_eq!(scores.len(), 2);
        let typical = &scores[0];
        let alien = &scores[1];
        assert!(
            alien.propensity < typical.propensity,
            "alien task should look less finished: {alien:?} vs {typical:?}"
        );
        assert!(alien.weight <= typical.weight);
        assert!(alien.adjusted / alien.raw >= typical.adjusted / typical.raw);
    }

    #[test]
    fn weights_respect_epsilon_floor() {
        let fin = linear_finished(30);
        let run = vec![vec![100.0, -100.0]];
        let mut nurd = NurdPredictor::new(NurdConfig::default().with_epsilon(0.2));
        let scores = nurd.score_running(&checkpoint(&fin, &run));
        assert!(scores[0].weight >= 0.2);
        assert!(scores[0].weight <= 1.0);
    }

    #[test]
    fn nc_variant_uses_raw_propensity() {
        let fin = linear_finished(30);
        let run = vec![vec![0.5, 0.5]];
        let mut nc = NurdPredictor::new(NurdConfig::without_calibration());
        let scores = nc.score_running(&checkpoint(&fin, &run));
        assert!(nc.delta().is_none());
        let s = &scores[0];
        assert!((s.weight - s.propensity).abs() < 1e-9);
    }

    #[test]
    fn delta_computed_once_and_fixed() {
        let fin = linear_finished(30);
        let run = vec![vec![0.5, 0.5]];
        let mut nurd = NurdPredictor::new(NurdConfig::default());
        let ckpt = checkpoint(&fin, &run);
        nurd.score_running(&ckpt);
        let d1 = nurd.delta().expect("delta set after first scoring");
        nurd.score_running(&ckpt);
        assert_eq!(nurd.delta(), Some(d1));
        assert!(d1 > -0.5 && d1 <= 0.5);
    }

    #[test]
    fn warm_policy_scores_and_reports_warm_fits() {
        let fin = linear_finished(40);
        let run = vec![vec![0.5, 0.5], vec![8.0, -6.0]];
        let config = NurdConfig::default()
            .with_refit_policy(crate::RefitPolicy::Warm(crate::WarmRefitConfig::default()));
        let mut nurd = NurdPredictor::new(config);
        let ckpt = checkpoint(&fin, &run);
        let s1 = nurd.score_running(&ckpt);
        assert_eq!(s1.len(), 2);
        assert_eq!(nurd.refit_stats().cold_fits, 1);
        // Same checkpoint again: no new finished rows → model reused.
        let s2 = nurd.score_running(&ckpt);
        assert_eq!(nurd.refit_stats().reuses, 1);
        // Raw latency head output is identical (same model, same rows);
        // propensity is refit but on identical data, so scores agree.
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.raw, b.raw);
        }
        // The alien task still gets dilated under the warm policy.
        assert!(s1[1].weight <= s1[0].weight);
    }

    #[test]
    fn warm_policy_resets_across_jobs() {
        let fin = linear_finished(30);
        let run = vec![vec![0.5, 0.5]];
        let config = NurdConfig::default()
            .with_refit_policy(crate::RefitPolicy::Warm(crate::WarmRefitConfig::default()));
        let mut nurd = NurdPredictor::new(config);
        nurd.score_running(&checkpoint(&fin, &run));
        assert_eq!(nurd.refit_stats().cold_fits, 1);
        let job = nurd_trace::generate_job(
            &nurd_trace::SuiteConfig::new(nurd_trace::TraceStyle::Google)
                .with_jobs(1)
                .with_task_range(10, 12)
                .with_checkpoints(3),
            0,
        );
        let ctx = JobContext {
            threshold: 1.0,
            task_count: job.task_count(),
            feature_dim: job.feature_dim(),
            oracle: &job,
        };
        nurd.begin_job(&ctx);
        assert_eq!(nurd.refit_stats(), crate::RefitStats::default());
    }

    #[test]
    fn too_little_data_yields_no_predictions() {
        let fin = linear_finished(1);
        let run = vec![vec![0.5, 0.5]];
        let mut nurd = NurdPredictor::new(NurdConfig::default());
        assert!(nurd.score_running(&checkpoint(&fin, &run)).is_empty());
        let fin = linear_finished(10);
        let no_run: Vec<Vec<f64>> = Vec::new();
        assert!(nurd.score_running(&checkpoint(&fin, &no_run)).is_empty());
    }

    #[test]
    fn begin_job_resets_state() {
        let fin = linear_finished(30);
        let run = vec![vec![0.5, 0.5]];
        let mut nurd = NurdPredictor::new(NurdConfig::default());
        nurd.score_running(&checkpoint(&fin, &run));
        assert!(nurd.delta().is_some());
        let job = nurd_trace::generate_job(
            &nurd_trace::SuiteConfig::new(nurd_trace::TraceStyle::Google)
                .with_jobs(1)
                .with_task_range(10, 12)
                .with_checkpoints(3),
            0,
        );
        let ctx = JobContext {
            threshold: 1.0,
            task_count: job.task_count(),
            feature_dim: job.feature_dim(),
            oracle: &job,
        };
        nurd.begin_job(&ctx);
        assert!(nurd.delta().is_none());
        assert_eq!(nurd.fit_failures(), 0);
    }

    #[test]
    fn predict_flags_only_above_threshold() {
        let fin = linear_finished(40);
        // One task that looks typical (prediction ~35), one alien.
        let run = vec![vec![0.5, 0.5], vec![9.0, -9.0]];
        let mut nurd = NurdPredictor::new(NurdConfig::default());
        let job = nurd_trace::generate_job(
            &nurd_trace::SuiteConfig::new(nurd_trace::TraceStyle::Google)
                .with_jobs(1)
                .with_task_range(10, 12)
                .with_checkpoints(3),
            0,
        );
        // Threshold far above anything the model can produce: no flags.
        let ctx = JobContext {
            threshold: 1e12,
            task_count: 42,
            feature_dim: 2,
            oracle: &job,
        };
        nurd.begin_job(&ctx);
        assert!(nurd.predict(&checkpoint(&fin, &run)).is_empty());
        // Threshold of zero: everything flags.
        let ctx = JobContext {
            threshold: 0.0,
            task_count: 42,
            feature_dim: 2,
            oracle: &job,
        };
        nurd.begin_job(&ctx);
        assert_eq!(nurd.predict(&checkpoint(&fin, &run)).len(), 2);
    }
}
