//! The weighting function and adjusted prediction (Algorithm 1, lines
//! 15–16; Equations 1 and 4).

/// The final weighting function `w = max(ε, min(z + δ, 1))`.
///
/// `z` is the propensity score (probability the task belongs to the
/// finished class), `δ` the calibration term, `ε` the minimum positive
/// weight. The result is always in `[ε, 1]`.
///
/// # Panics
///
/// Panics unless `0 < epsilon <= 1`.
#[must_use]
pub fn weight(z: f64, delta: f64, epsilon: f64) -> f64 {
    assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
    (z + delta).min(1.0).max(epsilon)
}

/// The adjusted latency prediction `ŷ_adj = ŷ / w` (Equation 1).
///
/// # Panics
///
/// Panics if `w` is not positive.
#[must_use]
pub fn adjusted_latency(y_hat: f64, w: f64) -> f64 {
    assert!(w > 0.0, "weight must be positive");
    y_hat / w
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn weight_clamps_both_sides() {
        assert_eq!(weight(0.9, 0.5, 0.05), 1.0); // hits the upper clamp
        assert_eq!(weight(0.01, -0.5, 0.05), 0.05); // hits ε
        assert!((weight(0.5, 0.1, 0.05) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn adjustment_only_inflates() {
        // w ≤ 1 ⟹ ŷ_adj ≥ ŷ.
        for w in [0.05, 0.3, 1.0] {
            assert!(adjusted_latency(10.0, w) >= 10.0);
        }
    }

    #[test]
    fn similar_task_keeps_its_prediction() {
        // z close to 1 (finished-like features) leaves ŷ nearly unchanged.
        let w = weight(0.97, 0.0, 0.05);
        assert!((adjusted_latency(100.0, w) - 100.0 / 0.97).abs() < 1e-9);
    }

    #[test]
    fn dissimilar_task_is_dilated_to_threshold() {
        // z ≈ 0: maximum dilation 1/ε = 20x at the paper's ε.
        let w = weight(0.0, 0.0, 0.05);
        assert_eq!(adjusted_latency(50.0, w), 1000.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1]")]
    fn epsilon_validated() {
        let _ = weight(0.5, 0.0, 0.0);
    }

    proptest! {
        /// w ∈ [ε, 1] for any propensity and calibration value.
        #[test]
        fn prop_weight_range(z in -1.0..2.0f64, delta in -1.0..1.0f64,
                             eps in 0.01..0.5f64) {
            let w = weight(z, delta, eps);
            prop_assert!(w >= eps && w <= 1.0);
        }

        /// Weight is monotone in z: more finished-like never increases the
        /// adjusted latency.
        #[test]
        fn prop_monotone_in_z(z1 in 0.0..1.0f64, z2 in 0.0..1.0f64,
                              delta in -0.5..0.5f64) {
            let (lo, hi) = if z1 < z2 { (z1, z2) } else { (z2, z1) };
            let w_lo = weight(lo, delta, 0.05);
            let w_hi = weight(hi, delta, 0.05);
            prop_assert!(adjusted_latency(1.0, w_hi) <= adjusted_latency(1.0, w_lo) + 1e-12);
        }
    }
}
