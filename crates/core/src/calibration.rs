//! Distribution compensation: the centroid ratio ρ and calibration term δ
//! (Algorithm 1, lines 4–6).

/// Computes the latency indicator `ρ = ‖c_fin‖₂ / ‖c_run − c_fin‖₂` from
/// the feature matrices of finished and running tasks at the first
/// prediction checkpoint.
///
/// Features are normalized before the centroids are taken: each column is
/// centered on its **median** over finished ∪ running and scaled by its
/// standard deviation. The paper does not pin down a feature scaling, and
/// the choice matters structurally: raw units make `‖c_fin‖` meaningless
/// across heterogeneous columns (fractions vs counts), while *mean*
/// centering over finished ∪ running is degenerate — the overall mean is a
/// convex combination of the two class centroids, which forces
/// `c_fin ∥ c_run` and collapses `ρ` to the constant `n_run / n`. Median
/// centering is robust, fully observable at the checkpoint, and preserves
/// the quantity the paper's intuition describes (§4.2): `‖c_fin‖` measures
/// how atypical the early finishers are relative to the typical task, and
/// `‖c_run − c_fin‖` how far the still-running population has drifted.
///
/// Degenerate cases (`c_run == c_fin`) return `ρ = +∞`, which flows into
/// `δ → −α` (maximum true-positive boost, consistent with "all tasks look
/// alike, propensity alone cannot separate").
///
/// # Panics
///
/// Panics if either matrix is empty or widths disagree.
#[must_use]
pub fn centroid_ratio(finished: &[Vec<f64>], running: &[Vec<f64>]) -> f64 {
    let fin: Vec<&[f64]> = finished.iter().map(Vec::as_slice).collect();
    let run: Vec<&[f64]> = running.iter().map(Vec::as_slice).collect();
    centroid_ratio_rows(&fin, &run)
}

/// [`centroid_ratio`] over borrowed row slices (e.g. straight from
/// `Checkpoint::finished_feature_rows`), avoiding any feature copies.
///
/// # Panics
///
/// Panics if either set is empty or widths disagree.
#[must_use]
pub fn centroid_ratio_rows(finished: &[&[f64]], running: &[&[f64]]) -> f64 {
    assert!(
        !finished.is_empty() && !running.is_empty(),
        "need both finished and running tasks"
    );
    assert_eq!(
        finished[0].len(),
        running[0].len(),
        "feature widths disagree"
    );
    let d = finished[0].len();
    let n_all = finished.len() + running.len();

    // Componentwise median and robust scale (MAD, σ-consistent) over
    // finished ∪ running. A *robust* scale is essential: the straggler
    // subpopulation inflates ordinary standard deviations on exactly the
    // features where it drifts, which would deflate its own drift signal
    // and make ρ blind to the latency shape. MAD ignores the ~10% tail.
    let mut medians = vec![0.0; d];
    let mut scales = vec![0.0; d];
    let mut column = Vec::with_capacity(n_all);
    for j in 0..d {
        column.clear();
        column.extend(finished.iter().chain(running.iter()).map(|r| r[j]));
        column.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        medians[j] = median_of_sorted(&column);
        let mean = column.iter().sum::<f64>() / n_all as f64;
        let var = column.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n_all as f64;
        let std = var.sqrt();
        let mut deviations: Vec<f64> = column.iter().map(|v| (v - medians[j]).abs()).collect();
        deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        let mad = median_of_sorted(&deviations) * 1.4826;
        // Counter-like columns (EV, FL) are mostly zero: their MAD
        // vanishes while their drift is the whole signal, so floor the
        // scale by a fraction of the classical std. The fraction matters:
        // too small and a rare binary column (a handful of failure events)
        // dwarfs every real feature in the geometry.
        scales[j] = mad.max(0.2 * std).max(1e-12);
    }
    let stds = scales;
    // Winsorize at ±8 robust units so that a single unbounded column (e.g.
    // an eviction counter whose body is identically zero) cannot dominate
    // the centroid geometry. The centroid of the normalized rows is
    // accumulated directly — no normalized copies are materialized.
    let normalized_centroid = |rows: &[&[f64]]| -> Vec<f64> {
        let mut c = vec![0.0; d];
        for row in rows {
            for (j, v) in row.iter().enumerate() {
                c[j] += ((v - medians[j]) / stds[j]).clamp(-8.0, 8.0);
            }
        }
        nurd_linalg::scale(&mut c, 1.0 / rows.len() as f64);
        c
    };

    let c_fin = normalized_centroid(finished);
    let c_run = normalized_centroid(running);
    let num = nurd_linalg::l2_norm(&c_fin);
    let den = nurd_linalg::euclidean_distance(&c_run, &c_fin);
    if den < 1e-12 {
        f64::INFINITY
    } else {
        num / den
    }
}

/// The calibration term `δ = 1/(1+ρ) − α` (Equation 3).
///
/// `ρ ≤ 1` (stragglers far from non-stragglers in feature space, long-tail
/// latency) gives a relatively large δ that damps false positives;
/// `ρ > 1` gives a small (negative) δ that boosts true positives.
///
/// # Panics
///
/// Panics if `alpha` is not positive or `rho` is negative.
#[must_use]
pub fn calibration_delta(rho: f64, alpha: f64) -> f64 {
    assert!(alpha > 0.0, "alpha must be positive");
    assert!(rho >= 0.0, "rho must be non-negative");
    1.0 / (1.0 + rho) - alpha
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn delta_bounds_follow_equation_3() {
        // ρ = 0 → δ = 1 − α (maximum); ρ → ∞ → δ → −α (minimum).
        assert!((calibration_delta(0.0, 0.5) - 0.5).abs() < 1e-12);
        assert!((calibration_delta(f64::INFINITY, 0.5) - (-0.5)).abs() < 1e-12);
        // ρ = 1 → δ = 0 at α = 0.5 (the paper's boundary case).
        assert!(calibration_delta(1.0, 0.5).abs() < 1e-12);
    }

    #[test]
    fn delta_decreases_in_rho() {
        let mut prev = f64::INFINITY;
        for rho in [0.0, 0.5, 1.0, 2.0, 10.0] {
            let d = calibration_delta(rho, 0.5);
            assert!(d < prev);
            prev = d;
        }
    }

    #[test]
    fn distinct_running_population_lowers_rho() {
        // Realistic warmup geometry: finished tasks are a small, slightly
        // fast-biased minority; the running majority is nominal except for a
        // straggler subpopulation. The further that subpopulation sits from
        // the nominal cloud, the larger the centroid drift → the smaller ρ.
        let finished: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![0.6 + 0.01 * i as f64, 0.8 + 0.005 * i as f64])
            .collect();
        let nominal: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![1.0 + 0.01 * (i % 7) as f64, 1.0 + 0.01 * (i % 5) as f64])
            .collect();
        let with_stragglers = |pos: f64| -> Vec<Vec<f64>> {
            let mut v = nominal.clone();
            for i in 0..6 {
                v.push(vec![pos + 0.01 * i as f64, pos]);
            }
            v
        };
        let rho_far = centroid_ratio(&finished, &with_stragglers(4.0));
        let rho_near = centroid_ratio(&finished, &with_stragglers(1.1));
        assert!(
            rho_far < rho_near,
            "distinct population must lower rho: {rho_far} vs {rho_near}"
        );
    }

    #[test]
    fn identical_populations_give_infinite_rho() {
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 1.0]).collect();
        let rho = centroid_ratio(&rows, &rows);
        assert!(rho.is_infinite());
        // Which drives δ to its minimum −α.
        assert_eq!(calibration_delta(rho, 0.5), -0.5);
    }

    #[test]
    #[should_panic(expected = "need both finished and running")]
    fn empty_inputs_rejected() {
        let _ = centroid_ratio(&[], &[vec![1.0]]);
    }

    proptest! {
        /// δ always lies in (−α, α] for finite ρ ≥ 0.
        #[test]
        fn prop_delta_in_range(rho in 0.0..1e6f64, alpha in 0.05..1.0f64) {
            let d = calibration_delta(rho, alpha);
            prop_assert!(d > -alpha && d <= 1.0 - alpha);
        }

        /// ρ is scale-invariant: scaling all features leaves it unchanged
        /// (standardization inside the computation).
        #[test]
        fn prop_rho_scale_invariant(scale in 0.1..100.0f64) {
            let finished: Vec<Vec<f64>> = (0..20)
                .map(|i| vec![i as f64 * 0.1, (i % 3) as f64])
                .collect();
            let running: Vec<Vec<f64>> = (0..5)
                .map(|i| vec![3.0 + i as f64 * 0.2, 2.0])
                .collect();
            let scaled_fin: Vec<Vec<f64>> = finished
                .iter()
                .map(|r| r.iter().map(|v| v * scale).collect())
                .collect();
            let scaled_run: Vec<Vec<f64>> = running
                .iter()
                .map(|r| r.iter().map(|v| v * scale).collect())
                .collect();
            let a = centroid_ratio(&finished, &running);
            let b = centroid_ratio(&scaled_fin, &scaled_run);
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }
}
