//! Cross-job transfer learning — the paper's stated future work (§8:
//! "there is a possibility to apply transfer learning to incorporate
//! knowledge from other jobs to improve predictions").
//!
//! The mechanism is residual boosting: a *donor* model is trained offline
//! on a completed job's (features, relative latency) pairs; on the target
//! job, the online latency head learns only the **residual** between the
//! scale-adjusted donor prediction and the observed latencies. Early in a
//! job — when NURD's own head has almost no training data — the donor
//! carries most of the signal; as finished tasks accumulate, the residual
//! model takes over. Everything else (propensity, calibration, weighting)
//! is unchanged NURD.

use nurd_data::{Checkpoint, JobTrace, OnlinePredictor, StreamContext};
use nurd_linalg::MatrixView;
use nurd_ml::{GradientBoosting, LogisticRegression, MlError, SquaredLoss};

use crate::refit::WarmRefitState;
use crate::{calibration, weighting, NurdConfig, RefitPolicy};

/// A latency model distilled from one or more completed jobs, in
/// scale-free (relative-latency) form.
///
/// Donor targets are `latency / median(latency)` so the knowledge moves
/// across jobs whose absolute time scales differ by an order of magnitude;
/// the target-side predictor multiplies back by its own running median.
#[derive(Debug, Clone)]
pub struct DonorModel {
    model: GradientBoosting<SquaredLoss>,
}

impl DonorModel {
    /// Distills a completed job into a transferable latency model, trained
    /// on final feature snapshots against relative latency.
    ///
    /// # Errors
    ///
    /// Propagates booster errors ([`MlError::EmptyTrainingSet`] on an empty
    /// job, configuration errors from `config.gbt`).
    pub fn from_job(job: &JobTrace, config: &NurdConfig) -> Result<Self, MlError> {
        let last = job.checkpoint_count() - 1;
        let x: Vec<Vec<f64>> = job
            .tasks()
            .iter()
            .map(|t| t.snapshot(last).to_vec())
            .collect();
        let mut latencies = job.latencies();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let median = latencies[latencies.len() / 2].max(1e-9);
        let y: Vec<f64> = job.tasks().iter().map(|t| t.latency() / median).collect();
        let model = GradientBoosting::fit(&x, &y, SquaredLoss, &config.gbt)?;
        Ok(DonorModel { model })
    }

    /// Relative-latency prediction (multiples of the donor job's median).
    #[must_use]
    pub fn predict_relative(&self, features: &[f64]) -> f64 {
        self.model.predict(features)
    }
}

/// NURD with a cross-job donor prior on the latency head.
///
/// Implements the same online protocol as [`crate::NurdPredictor`]; the
/// only change is `ŷ = scale · donor(x) + residual(x)`, with the residual
/// head refit per checkpoint on `y − scale · donor(x)` and
/// `scale = median(observed latencies)`.
#[derive(Debug, Clone)]
pub struct TransferNurdPredictor {
    config: NurdConfig,
    donor: DonorModel,
    threshold: f64,
    delta: Option<f64>,
    /// Cross-checkpoint state for warm [`RefitPolicy`] variants (unused
    /// under [`RefitPolicy::AlwaysCold`]). The residual head's *targets*
    /// move with the running latency median, but its *rows* are the same
    /// append-only finished set, so bin reuse and ensemble warm starts
    /// apply unchanged via [`WarmRefitState::refit_against`].
    warm: WarmRefitState,
    /// Donor relative predictions cached per absorbed row (the donor is
    /// frozen, so each row is evaluated exactly once per job).
    donor_rel: Vec<f64>,
    /// Residual-target scratch, rebuilt each refit.
    resid_buf: Vec<f64>,
}

impl TransferNurdPredictor {
    /// Creates a transfer predictor from a donor model.
    #[must_use]
    pub fn new(config: NurdConfig, donor: DonorModel) -> Self {
        TransferNurdPredictor {
            config,
            donor,
            threshold: f64::INFINITY,
            delta: None,
            warm: WarmRefitState::new(),
            donor_rel: Vec::new(),
            resid_buf: Vec::new(),
        }
    }
}

impl OnlinePredictor for TransferNurdPredictor {
    fn name(&self) -> &str {
        "NURD-TL"
    }

    fn begin_stream(&mut self, ctx: &StreamContext) {
        self.threshold = ctx.threshold;
        self.delta = None;
        self.warm.reset();
        self.donor_rel.clear();
        self.resid_buf.clear();
    }

    /// Same routing as `NurdPredictor`: the hint lands on the residual
    /// head's [`nurd_ml::TreeConfig::n_threads`], bit-identical at every
    /// thread count.
    fn set_parallelism(&mut self, threads: usize) {
        self.config.gbt.tree.n_threads = threads;
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        if checkpoint.finished.len() < 2 || checkpoint.running.is_empty() {
            return Vec::new();
        }
        // Zero-copy row views into the trace storage (same hot-path shape
        // as `NurdPredictor::score_running`).
        let x_fin = checkpoint.finished_feature_rows();
        let y_fin = checkpoint.finished_latencies();
        let x_run = checkpoint.running_feature_rows();

        if self.delta.is_none() && self.config.calibrate {
            let rho = calibration::centroid_ratio_rows(&x_fin, &x_run);
            self.delta = Some(calibration::calibration_delta(rho, self.config.alpha));
        }

        // Scale the donor's relative predictions by the observed median.
        let mut sorted = y_fin.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let scale = sorted[sorted.len() / 2].max(1e-9);

        // Residual head: learn what the donor gets wrong on this job.
        let cold_model;
        let residual_model: &GradientBoosting<SquaredLoss> = match &self.config.refit_policy {
            // Historical path: refit the residual head from scratch on the
            // checkpoint's own rows.
            RefitPolicy::AlwaysCold => {
                let residuals: Vec<f64> = x_fin
                    .iter()
                    .zip(&y_fin)
                    .map(|(x, &y)| y - scale * self.donor.predict_relative(x))
                    .collect();
                let Ok(m) = GradientBoosting::fit_view(
                    MatrixView::RowSlices(&x_fin),
                    &residuals,
                    SquaredLoss,
                    &self.config.gbt,
                ) else {
                    return Vec::new();
                };
                cold_model = m;
                &cold_model
            }
            // Warm path: grow the absorbed set, evaluate the (frozen)
            // donor once per new row, rebuild the moving residual targets
            // cheaply, and warm-start the head.
            policy => {
                let added = self.warm.absorb(checkpoint);
                let n = self.warm.rows();
                if added > 0 {
                    let mut row = vec![0.0; self.warm.features().cols()];
                    for r in n - added..n {
                        self.warm.features().row_into(r, &mut row);
                        self.donor_rel.push(self.donor.predict_relative(&row));
                    }
                }
                // With no newly finished row, `scale` (median of the same
                // finished latencies) and the cached donor predictions are
                // unchanged, so the residual targets are bit-identical to
                // the previous checkpoint's — reuse the model rather than
                // stacking warm rounds onto identical data.
                if added > 0 || self.warm.model().is_none() {
                    self.resid_buf.clear();
                    self.resid_buf.extend(
                        self.warm
                            .latencies()
                            .iter()
                            .zip(&self.donor_rel)
                            .map(|(&y, &rel)| y - scale * rel),
                    );
                    if self
                        .warm
                        .refit_against(&self.resid_buf, &self.config.gbt, policy)
                        .is_err()
                    {
                        return Vec::new();
                    }
                }
                self.warm.model().expect("refit succeeded or model cached")
            }
        };

        let x_all: Vec<&[f64]> = x_fin.iter().chain(x_run.iter()).copied().collect();
        let mut labels = vec![1.0; x_fin.len()];
        labels.extend(std::iter::repeat_n(0.0, x_run.len()));
        let Ok(propensity) = LogisticRegression::fit_view(
            MatrixView::RowSlices(&x_all),
            &labels,
            &self.config.logistic,
        ) else {
            return Vec::new();
        };

        let threshold = self.threshold;
        checkpoint
            .running
            .iter()
            .filter(|task| {
                let raw = scale * self.donor.predict_relative(task.features)
                    + residual_model.predict(task.features);
                let z = propensity.predict_proba(task.features);
                let w = match self.delta {
                    Some(delta) => weighting::weight(z, delta, self.config.epsilon),
                    None => z.max(1e-9),
                };
                weighting::adjusted_latency(raw.max(0.0), w) >= threshold
            })
            .map(|task| task.id)
            .collect()
    }

    /// Serializes the per-job fitted state: δ, the warm scratch, and the
    /// cached donor relative predictions. The donor model itself is
    /// *frozen* and comes from the factory, so it does not travel; the
    /// `resid_buf` scratch is rebuilt on the next refit regardless.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        use nurd_codec::Checkpointable;
        let mut enc = nurd_codec::Encoder::new();
        self.delta.encode(&mut enc);
        self.warm.encode(&mut enc);
        self.donor_rel.encode(&mut enc);
        Some(enc.into_bytes())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        use nurd_codec::Checkpointable;
        let mut dec = nurd_codec::Decoder::new(bytes);
        let Ok(delta) = Option::<f64>::decode(&mut dec) else {
            return false;
        };
        let Ok(warm) = WarmRefitState::decode(&mut dec) else {
            return false;
        };
        let Ok(donor_rel) = Vec::<f64>::decode(&mut dec) else {
            return false;
        };
        if !dec.is_empty() {
            return false;
        }
        self.delta = delta;
        self.warm = warm;
        self.donor_rel = donor_rel;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_data::JobContext;
    use nurd_trace::{SuiteConfig, TraceStyle};

    fn suite(seed: u64, jobs: usize) -> Vec<JobTrace> {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(jobs)
            .with_task_range(100, 150)
            .with_checkpoints(14)
            .with_seed(seed);
        nurd_trace::generate_suite(&cfg)
    }

    #[test]
    fn donor_model_learns_relative_latency() {
        let job = &suite(1, 1)[0];
        let donor = DonorModel::from_job(job, &NurdConfig::default()).unwrap();
        // The donor's relative predictions should correlate with truth:
        // slowest task predicted above the fastest.
        let last = job.checkpoint_count() - 1;
        let mut order: Vec<usize> = (0..job.task_count()).collect();
        order.sort_by(|&a, &b| {
            job.tasks()[a]
                .latency()
                .partial_cmp(&job.tasks()[b].latency())
                .unwrap()
        });
        let fastest = job.tasks()[order[0]].snapshot(last);
        let slowest = job.tasks()[*order.last().unwrap()].snapshot(last);
        assert!(donor.predict_relative(slowest) > donor.predict_relative(fastest));
    }

    #[test]
    fn transfer_predictor_runs_the_protocol() {
        let jobs = suite(2, 2);
        let donor = DonorModel::from_job(&jobs[0], &NurdConfig::default()).unwrap();
        let mut p = TransferNurdPredictor::new(NurdConfig::default(), donor);
        let out = nurd_sim_replay(&jobs[1], &mut p);
        assert_eq!(out.confusion.total(), jobs[1].task_count());
        assert_eq!(p.name(), "NURD-TL");
    }

    #[test]
    fn transfer_warm_path_reuses_model_when_nothing_new_finished() {
        let jobs = suite(7, 1);
        let donor = DonorModel::from_job(&jobs[0], &NurdConfig::default()).unwrap();
        let config = NurdConfig::default()
            .with_refit_policy(crate::RefitPolicy::Warm(crate::WarmRefitConfig::default()));
        let mut p = TransferNurdPredictor::new(config, donor);
        let job = &jobs[0];
        let ctx = JobContext {
            threshold: job.straggler_threshold(0.9),
            task_count: job.task_count(),
            feature_dim: job.feature_dim(),
            oracle: job,
        };
        p.begin_job(&ctx);
        let k = job.checkpoint_count() / 2;
        let ckpt = job.checkpoint_at(k);
        p.predict(&ckpt);
        let fits_after_first = p.warm.stats().cold_fits + p.warm.stats().warm_fits;
        // Identical checkpoint again: residual targets are bit-identical,
        // so no further fit may happen.
        p.predict(&ckpt);
        assert_eq!(
            p.warm.stats().cold_fits + p.warm.stats().warm_fits,
            fits_after_first
        );
    }

    #[test]
    fn transfer_warm_policy_matches_cold_accuracy() {
        // Warm-started residual refits must not wreck transfer accuracy
        // relative to the always-cold protocol on the same jobs.
        let jobs = suite(11, 4);
        let donor = DonorModel::from_job(&jobs[0], &NurdConfig::default()).unwrap();
        let warm_cfg = NurdConfig::default()
            .with_refit_policy(crate::RefitPolicy::Warm(crate::WarmRefitConfig::default()));
        let mut cold_f1 = 0.0;
        let mut warm_f1 = 0.0;
        for job in &jobs[1..] {
            let mut cold = TransferNurdPredictor::new(NurdConfig::default(), donor.clone());
            cold_f1 += nurd_sim_replay(job, &mut cold).confusion.f1();
            let mut warm = TransferNurdPredictor::new(warm_cfg.clone(), donor.clone());
            warm_f1 += nurd_sim_replay(job, &mut warm).confusion.f1();
        }
        assert!(
            warm_f1 >= cold_f1 - 0.5,
            "warm transfer {warm_f1:.2} collapsed vs cold {cold_f1:.2}"
        );
    }

    #[test]
    fn transfer_is_competitive_with_scratch_nurd() {
        // Averaged over a few target jobs, the donor prior must not wreck
        // accuracy (it should help early; end-of-job F1 stays comparable).
        let jobs = suite(3, 7);
        let donor = DonorModel::from_job(&jobs[0], &NurdConfig::default()).unwrap();
        let mut scratch = 0.0;
        let mut transfer = 0.0;
        for job in &jobs[1..] {
            let mut a = crate::NurdPredictor::new(NurdConfig::default());
            scratch += nurd_sim_replay(job, &mut a).confusion.f1();
            let mut b = TransferNurdPredictor::new(NurdConfig::default(), donor.clone());
            transfer += nurd_sim_replay(job, &mut b).confusion.f1();
        }
        assert!(
            transfer >= scratch - 0.8,
            "transfer {transfer:.2} collapsed vs scratch {scratch:.2}"
        );
    }

    /// Minimal local replay to avoid a dev-dependency cycle on `nurd-sim`.
    fn nurd_sim_replay(job: &JobTrace, predictor: &mut dyn OnlinePredictor) -> LocalOutcome {
        let threshold = job.straggler_threshold(0.9);
        let warmup = job.warmup_checkpoint(0.04);
        let n = job.task_count();
        predictor.begin_job(&JobContext {
            threshold,
            task_count: n,
            feature_dim: job.feature_dim(),
            oracle: job,
        });
        let mut flagged = vec![false; n];
        for (k, &time) in job.checkpoint_times().iter().enumerate() {
            if k < warmup || time >= threshold {
                continue;
            }
            let mut finished = Vec::new();
            let mut running = Vec::new();
            for task in job.tasks() {
                if flagged[task.id()] {
                    continue;
                }
                if task.latency() <= time {
                    finished.push(nurd_data::FinishedTask {
                        id: task.id(),
                        features: task.snapshot(k),
                        latency: task.latency(),
                    });
                } else {
                    running.push(nurd_data::RunningTask {
                        id: task.id(),
                        features: task.snapshot(k),
                    });
                }
            }
            let running_ids: Vec<usize> = running.iter().map(|r| r.id).collect();
            let ckpt = Checkpoint {
                ordinal: k,
                time,
                finished,
                running,
            };
            for id in predictor.predict(&ckpt) {
                if running_ids.contains(&id) {
                    flagged[id] = true;
                }
            }
        }
        let mut confusion = Confusion::default();
        for (task, &f) in job.tasks().iter().zip(&flagged) {
            match (f, task.latency() >= threshold) {
                (true, true) => confusion.tp += 1,
                (true, false) => confusion.fp += 1,
                (false, true) => confusion.fne += 1,
                (false, false) => confusion.tn += 1,
            }
        }
        LocalOutcome { confusion }
    }

    struct LocalOutcome {
        confusion: Confusion,
    }

    #[derive(Default)]
    struct Confusion {
        tp: usize,
        fp: usize,
        fne: usize,
        tn: usize,
    }

    impl Confusion {
        fn total(&self) -> usize {
            self.tp + self.fp + self.fne + self.tn
        }
        fn f1(&self) -> f64 {
            if self.tp == 0 {
                return 0.0;
            }
            let p = self.tp as f64 / (self.tp + self.fp) as f64;
            let r = self.tp as f64 / (self.tp + self.fne) as f64;
            2.0 * p * r / (p + r)
        }
    }
}
