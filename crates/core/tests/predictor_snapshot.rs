//! The predictor-level half of the restart-equals-uninterrupted contract:
//! a fresh `NurdPredictor` restored from `snapshot_state` bytes must score
//! every future checkpoint bit-for-bit like the original instance.

use nurd_core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd_data::{Checkpoint, FinishedTask, OnlinePredictor, RunningTask, StreamContext};

fn tasks(n: usize) -> Vec<(Vec<f64>, f64)> {
    (0..n)
        .map(|i| {
            let a = ((i * 29) % 17) as f64;
            let b = ((i * 13) % 7) as f64;
            (vec![a, b], 5.0 + 2.0 * a - b)
        })
        .collect()
}

/// A checkpoint whose finished set is the first `k` tasks.
fn checkpoint(ts: &[(Vec<f64>, f64)], k: usize, ordinal: usize) -> Checkpoint<'_> {
    Checkpoint {
        ordinal,
        time: ordinal as f64 * 10.0,
        finished: ts[..k]
            .iter()
            .enumerate()
            .map(|(id, (f, lat))| FinishedTask {
                id,
                features: f,
                latency: *lat,
            })
            .collect(),
        running: ts[k..]
            .iter()
            .enumerate()
            .map(|(i, (f, _))| RunningTask {
                id: k + i,
                features: f,
            })
            .collect(),
    }
}

fn mid_job_restore_matches(config: NurdConfig) {
    let ts = tasks(120);
    let ctx = StreamContext {
        threshold: 25.0,
        task_count: 120,
        feature_dim: 2,
    };
    let mut live = NurdPredictor::new(config.clone());
    live.begin_stream(&ctx);
    // Drive a few checkpoints, snapshot mid-job.
    for (ordinal, k) in [30usize, 50, 70].into_iter().enumerate() {
        live.predict(&checkpoint(&ts, k, ordinal));
    }
    let blob = live.snapshot_state().expect("NurdPredictor supports blobs");

    let mut restored = NurdPredictor::new(config);
    restored.begin_stream(&ctx);
    assert!(
        restored.restore_state(&blob),
        "restore must accept its own bytes"
    );
    assert_eq!(restored.delta(), live.delta());
    assert_eq!(restored.refit_stats(), live.refit_stats());

    // Every future checkpoint must flag the identical task set.
    for (ordinal, k) in [90usize, 100, 110].into_iter().enumerate() {
        let ckpt = checkpoint(&ts, k, 3 + ordinal);
        assert_eq!(
            live.predict(&ckpt),
            restored.predict(&ckpt),
            "restored predictor diverged at checkpoint {ordinal}"
        );
    }
}

#[test]
fn cold_policy_restore_is_bit_for_bit() {
    mid_job_restore_matches(NurdConfig::default());
}

#[test]
fn warm_policy_restore_is_bit_for_bit() {
    mid_job_restore_matches(
        NurdConfig::default().with_refit_policy(RefitPolicy::Warm(WarmRefitConfig::default())),
    );
}

#[test]
fn garbage_bytes_are_rejected_without_panic() {
    let mut p = NurdPredictor::new(NurdConfig::default());
    p.begin_stream(&StreamContext {
        threshold: 10.0,
        task_count: 4,
        feature_dim: 2,
    });
    assert!(!p.restore_state(&[0xFF; 13]));
    assert!(!p.restore_state(b""));
    // Truncated real blob: also rejected, never a panic.
    let ts = tasks(40);
    p.predict(&checkpoint(&ts, 30, 0));
    let blob = p.snapshot_state().unwrap();
    for cut in [1usize, blob.len() / 2, blob.len() - 1] {
        assert!(!p.restore_state(&blob[..cut]), "cut at {cut} accepted");
    }
}
