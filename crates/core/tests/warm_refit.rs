//! Integration guarantees of the warm-start refit subsystem:
//!
//! 1. `RefitPolicy::AlwaysCold` is the legacy protocol **bit-for-bit** —
//!    an independently coded reference of the per-checkpoint pipeline
//!    (cold GBT fit on the checkpoint's finished rows, cold logistic
//!    propensity fit, weighting formula) reproduces every scored quantity
//!    exactly;
//! 2. warm-started refits stay within a small accuracy tolerance of cold
//!    refits on drifting data, across whole replays;
//! 3. the `warm_rounds × drift_tolerance` ablation grid (the sweep the
//!    `warm_vs_cold` bench runs informally) is pinned cell-by-cell to its
//!    accuracy envelope, so a regression in the drift fallback, score
//!    cache, or warm boosting path surfaces as one cell drifting.

use nurd_core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig, WarmRefitState};
use nurd_data::{Checkpoint, JobContext, JobTrace, OnlinePredictor};
use nurd_linalg::MatrixView;
use nurd_ml::{GradientBoosting, LogisticRegression, SquaredLoss};
use nurd_trace::{SuiteConfig, TraceStyle};
use proptest::prelude::*;

fn job_from_seed(seed: u64) -> JobTrace {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(1)
        .with_task_range(80, 110)
        .with_checkpoints(12)
        .with_seed(seed);
    nurd_trace::generate_job(&cfg, 0)
}

/// The pre-warm-start per-checkpoint pipeline, coded independently of
/// `NurdPredictor`: cold latency fit over the checkpoint's finished rows
/// (in checkpoint order), cold balanced logistic propensity fit over
/// finished ∪ running, paper weighting. Returns
/// `(raw, propensity, weight, adjusted)` per running task.
fn legacy_reference(
    ckpt: &Checkpoint<'_>,
    config: &NurdConfig,
    delta: Option<f64>,
) -> Option<Vec<(f64, f64, f64, f64)>> {
    let x_fin = ckpt.finished_feature_rows();
    let y_fin = ckpt.finished_latencies();
    let x_run = ckpt.running_feature_rows();
    let h = GradientBoosting::fit_view(
        MatrixView::RowSlices(&x_fin),
        &y_fin,
        SquaredLoss,
        &config.gbt,
    )
    .ok()?;
    let x_all: Vec<&[f64]> = x_fin.iter().chain(x_run.iter()).copied().collect();
    let mut labels = vec![1.0; x_fin.len()];
    labels.extend(std::iter::repeat_n(0.0, x_run.len()));
    let g = LogisticRegression::fit_view(MatrixView::RowSlices(&x_all), &labels, &config.logistic)
        .ok()?;
    Some(
        x_run
            .iter()
            .map(|row| {
                let raw = h.predict(row);
                let z = g.predict_proba(row);
                let w = match delta {
                    Some(delta) => nurd_core::weight(z, delta, config.epsilon),
                    None => z.max(1e-9),
                };
                (raw, z, w, nurd_core::adjusted_latency(raw, w))
            })
            .collect(),
    )
}

fn assert_always_cold_matches_legacy(seed: u64) {
    let job = job_from_seed(seed);
    let config = NurdConfig::default(); // refit_policy: AlwaysCold
    let mut nurd = NurdPredictor::new(config.clone());
    nurd.begin_job(&JobContext {
        threshold: job.straggler_threshold(0.9),
        task_count: job.task_count(),
        feature_dim: job.feature_dim(),
        oracle: &job,
    });
    let warmup = job.warmup_checkpoint(0.04);
    let mut compared = 0;
    for k in warmup..job.checkpoint_count() {
        let ckpt = job.checkpoint_at(k);
        if ckpt.finished.len() < 2 || ckpt.running.is_empty() {
            continue;
        }
        let scores = nurd.score_running(&ckpt);
        let Some(reference) = legacy_reference(&ckpt, &config, nurd.delta()) else {
            assert!(scores.is_empty(), "predictor scored where reference failed");
            continue;
        };
        assert_eq!(scores.len(), reference.len(), "checkpoint {k}");
        for (s, (raw, z, w, adj)) in scores.iter().zip(&reference) {
            assert_eq!(s.raw, *raw, "raw mismatch at checkpoint {k}");
            assert_eq!(s.propensity, *z, "propensity mismatch at checkpoint {k}");
            assert_eq!(s.weight, *w, "weight mismatch at checkpoint {k}");
            assert_eq!(s.adjusted, *adj, "adjusted mismatch at checkpoint {k}");
        }
        compared += 1;
    }
    assert!(compared >= 3, "too few comparable checkpoints ({compared})");
}

#[test]
fn always_cold_is_bit_for_bit_legacy() {
    assert_always_cold_matches_legacy(41);
}

/// Replays a job's growing finished set through a warm `WarmRefitState`
/// and returns `(warm_mse, cold_mse, target_variance)` over the final
/// absorbed rows, with the cold reference fit on exactly the same data.
fn warm_vs_cold_mse(job: &JobTrace, warm_cfg: WarmRefitConfig) -> (f64, f64, f64) {
    let gbt = NurdConfig::default().gbt;
    let policy = RefitPolicy::Warm(warm_cfg);
    let mut state = WarmRefitState::new();
    for k in 0..job.checkpoint_count() {
        let ckpt = job.checkpoint_at(k);
        if ckpt.finished.len() < 2 {
            continue;
        }
        state.absorb(&ckpt);
        state.refit(&gbt, &policy).unwrap();
    }
    let warm_model = state.model().expect("job yields fits");
    let cold = GradientBoosting::fit_view(
        state.features().view(),
        state.latencies(),
        SquaredLoss,
        &gbt,
    )
    .unwrap();
    let y = state.latencies();
    let mse =
        |p: &[f64]| p.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / y.len() as f64;
    (
        mse(&warm_model.predict_view(state.features().view())),
        mse(&cold.predict_view(state.features().view())),
        nurd_linalg::variance(y).max(1e-9),
    )
}

/// The standing ablation regression (ROADMAP: registry/bench coverage for
/// warm policies): across the `warm_rounds` × `drift_tolerance` grid the
/// warm-vs-cold bench sweeps informally, warm MSE must stay within a
/// fixed tolerance of cold on every cell — including the extremes (few
/// rounds + never-rebin, many rounds + hair-trigger rebin). A regression
/// in the drift fallback, the score cache, or the warm boosting path
/// shows up here as one cell drifting.
#[test]
fn warm_ablation_grid_stays_within_cold_tolerance() {
    let jobs = [job_from_seed(0xAB1), job_from_seed(0xAB2)];
    for &warm_rounds in &[8usize, 24, 48] {
        for &drift_tolerance in &[0.05f64, 0.12, 1.0] {
            // Per-cell accuracy envelope. Cells with a live drift guard
            // carry the bench's headline ±-few-percent claim (wider at 8
            // rounds, where hair-trigger rebins keep resetting the
            // surviving ensemble). Disabling rebinning outright
            // (tolerance 1.0) is the sweep's documented worst case: every
            // fit routes through quantile edges frozen at the tiny warmup
            // distribution, a real accuracy cliff the drift statistic
            // exists to prevent — those cells only guard against
            // *catastrophic* regression. The grid as a whole pins each
            // cell to its historical envelope.
            let slack = if drift_tolerance >= 1.0 {
                0.45
            } else if warm_rounds == 8 {
                0.12
            } else {
                0.05
            };
            for job in &jobs {
                let (mw, mc, var) = warm_vs_cold_mse(
                    job,
                    WarmRefitConfig {
                        warm_rounds,
                        drift_tolerance,
                        ..WarmRefitConfig::default()
                    },
                );
                assert!(
                    mw <= mc + slack * var,
                    "warm mse {mw} strayed from cold {mc} (var {var}) at \
                     warm_rounds={warm_rounds} drift_tolerance={drift_tolerance}"
                );
            }
        }
    }
}

/// More warm rounds per refit may not *hurt* final-fit accuracy: the
/// 48-round cells must be at least as good as the 8-round cells up to a
/// small slack (they see the same data; extra rounds only reduce
/// residuals). Pins the ablation's expected direction, not just a bound.
#[test]
fn warm_ablation_more_rounds_never_worse() {
    let job = job_from_seed(0xAB3);
    let at = |warm_rounds| {
        warm_vs_cold_mse(
            &job,
            WarmRefitConfig {
                warm_rounds,
                drift_tolerance: 1.0, // isolate the rounds axis
                ..WarmRefitConfig::default()
            },
        )
    };
    let (mse_few, _, var) = at(8);
    let (mse_many, _, _) = at(48);
    assert!(
        mse_many <= mse_few + 0.01 * var,
        "48 warm rounds ({mse_many}) worse than 8 ({mse_few}), var {var}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `AlwaysCold` ≡ legacy across randomized jobs: every scored
    /// quantity is bit-identical to the independently coded reference
    /// pipeline — the warm-start machinery must be invisible to the
    /// paper-protocol configuration.
    #[test]
    fn prop_always_cold_equals_legacy(seed in 0u64..1000) {
        assert_always_cold_matches_legacy(seed);
    }

    /// Warm-started refits track cold refits on drifting data: replaying
    /// a job's growing finished set through a warm `WarmRefitState` must
    /// end within a few percent (of target variance) of a cold fit on the
    /// same final data.
    #[test]
    fn prop_warm_refit_mse_tracks_cold_on_drifting_data(seed in 0u64..1000) {
        let job = job_from_seed(seed);
        let gbt = NurdConfig::default().gbt;
        let policy = RefitPolicy::Warm(WarmRefitConfig::default());
        let mut state = WarmRefitState::new();
        for k in 0..job.checkpoint_count() {
            let ckpt = job.checkpoint_at(k);
            if ckpt.finished.len() < 2 {
                continue;
            }
            state.absorb(&ckpt);
            state.refit(&gbt, &policy).unwrap();
        }
        let warm_model = state.model().expect("job yields fits");
        prop_assert!(state.stats().warm_fits > 0, "{:?}", state.stats());

        // Cold reference on exactly the same final rows.
        let cold = GradientBoosting::fit_view(
            state.features().view(),
            state.latencies(),
            SquaredLoss,
            &gbt,
        )
        .unwrap();
        let y = state.latencies();
        let preds_warm = warm_model.predict_view(state.features().view());
        let preds_cold = cold.predict_view(state.features().view());
        let mse = |p: &[f64]| {
            p.iter()
                .zip(y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / y.len() as f64
        };
        let (mw, mc) = (mse(&preds_warm), mse(&preds_cold));
        let var = nurd_linalg::variance(y).max(1e-9);
        prop_assert!(
            mw <= mc + 0.05 * var,
            "warm mse {mw} strayed from cold {mc} (var {var})"
        );
    }
}
