//! `nurd-health` — the Guard-style node-health manager.
//!
//! NURD predicts *task*-level stragglers, but in a real fleet stragglers
//! cluster: a degraded NIC or a thermally throttled socket stretches
//! every task co-located on that machine (the correlated scenarios
//! `nurd_trace::NodeModel` generates). This crate closes the node axis
//! of the loop: a [`HealthAggregator`] attaches to a running engine as a
//! [`nurd_serve::HealthObserver`], folds every finalized job's per-node
//! straggler truth (and every scored barrier's per-node scores) into
//! rolling per-node rates, and renders a typed [`NodeVerdict`] per node
//! — `Healthy`, `Watch`, or `Quarantine` — that quarantine-capable
//! mitigation policies (`nurd_mitigate::NodeAwarePolicy`) consume.
//!
//! # Determinism
//!
//! The engine calls the observer from whichever worker drains a shard,
//! so observations from different jobs interleave in scheduling order.
//! The aggregator's state is nevertheless deterministic because every
//! update is **keyed and idempotent**: finalization tallies key by job
//! id, barrier suspicion keys by (job, ordinal), and both are
//! insert-if-absent into `BTreeMap`s. Any arrival order — including the
//! partial re-observation a crash recovery's WAL replay can produce on
//! top of a restored snapshot blob — converges to the same maps, and
//! [`HealthAggregator::rates`] folds them in sorted key order, so the
//! derived rates and verdicts are bit-identical across shard counts,
//! worker counts, and crash/recover boundaries (the recovery-equivalence
//! property test in the root crate pins this).
//!
//! # Reading the verdicts
//!
//! Rates are **computed on read**, never cached: per node, the per-job
//! straggler rates fold in ascending job-id order through an EWMA
//! (`rate ← decay·rate + (1−decay)·job_rate`), so later jobs dominate
//! and a recovered machine decays back toward `Healthy`. A node with
//! fewer than [`HealthConfig::min_tasks`] observed tasks is never judged
//! past `Healthy` — one unlucky task is not evidence. `docs/OPERATIONS.md`
//! is the operator's guide to the knobs and verdict triage.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::Mutex;

use nurd_codec::{Checkpointable, CodecError, Decoder, Encoder};
use nurd_data::TaskScore;
use nurd_serve::{HealthObserver, JobReport};

/// Format version of the aggregator's snapshot blob
/// ([`HealthObserver::snapshot_state`]); bumped on layout change,
/// mismatches reject the blob rather than misread it.
const BLOB_VERSION: u32 = 1;

/// Tuning for the [`HealthAggregator`]'s rate folding and verdict
/// boundaries. The defaults suit the vendored trace generators (p90
/// thresholds ⇒ ~10% baseline straggler rate on healthy nodes, ≥3×
/// stretch on sick ones); production fleets should calibrate against
/// their own baseline rate — see `docs/OPERATIONS.md`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// EWMA retention of *older* jobs when folding a node's per-job
    /// straggler rates in job-id order: `rate ← decay·rate +
    /// (1−decay)·job_rate`. Higher = slower to convict, slower to
    /// forgive.
    pub decay: f64,
    /// Folded rate at or above which a node is [`NodeVerdict::Watch`].
    pub watch_threshold: f64,
    /// Folded rate at or above which a node is
    /// [`NodeVerdict::Quarantine`].
    pub quarantine_threshold: f64,
    /// Minimum observed tasks (summed across jobs) before a node can be
    /// judged past `Healthy`.
    pub min_tasks: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            decay: 0.6,
            watch_threshold: 0.25,
            quarantine_threshold: 0.45,
            min_tasks: 8,
        }
    }
}

/// The aggregator's judgement of one node, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeVerdict {
    /// Straggler rate below the watch boundary (or too few tasks
    /// observed to judge).
    Healthy,
    /// Elevated rate — keep placing tasks, but expect clones.
    Watch,
    /// Rate past the quarantine boundary — policies should evict and
    /// restart this node's tasks elsewhere.
    Quarantine,
}

/// Everything the aggregator currently knows about one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// Total tasks observed on the node across finalized jobs.
    pub tasks: u64,
    /// How many of those straggled (ground truth at finalization).
    pub stragglers: u64,
    /// The EWMA-folded straggler rate (see [`HealthConfig::decay`]).
    pub rate: f64,
    /// Mean per-barrier predictor score of the node's tasks — the
    /// *early-warning* signal, available before any job finalizes
    /// (`0.0` when the engine is not scoring).
    pub suspicion: f64,
    /// The verdict the rate and [`HealthConfig`] boundaries render.
    pub verdict: NodeVerdict,
}

/// Per-job, per-node straggler tally (ground truth at finalization).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct NodeTally {
    tasks: u64,
    stragglers: u64,
}

impl Checkpointable for NodeTally {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.tasks);
        enc.put_u64(self.stragglers);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(NodeTally {
            tasks: dec.take_u64()?,
            stragglers: dec.take_u64()?,
        })
    }
}

/// Per-node `(score sum, task count)` accumulators for one barrier.
type BarrierScores = BTreeMap<u32, (f64, u64)>;

/// The keyed observation maps (see the crate docs for why keyed +
/// insert-if-absent is the determinism mechanism).
#[derive(Debug, Default, Clone, PartialEq)]
struct AggState {
    /// job → node → tally, inserted once per job at finalization.
    finalized: BTreeMap<u64, BTreeMap<u32, NodeTally>>,
    /// job → barrier ordinal → per-node score sums, inserted once per
    /// scored barrier.
    barriers: BTreeMap<u64, BTreeMap<u64, BarrierScores>>,
}

impl AggState {
    fn encode(&self, enc: &mut Encoder) {
        self.finalized.encode(enc);
        enc.put_usize(self.barriers.len());
        for (job, ordinals) in &self.barriers {
            enc.put_u64(*job);
            enc.put_usize(ordinals.len());
            for (ordinal, nodes) in ordinals {
                enc.put_u64(*ordinal);
                enc.put_usize(nodes.len());
                for (node, (sum, count)) in nodes {
                    enc.put_u32(*node);
                    enc.put_f64(*sum);
                    enc.put_u64(*count);
                }
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let finalized = Checkpointable::decode(dec)?;
        let mut barriers = BTreeMap::new();
        for _ in 0..dec.take_len(8)? {
            let job = dec.take_u64()?;
            let mut ordinals = BTreeMap::new();
            for _ in 0..dec.take_len(8)? {
                let ordinal = dec.take_u64()?;
                let mut nodes = BTreeMap::new();
                for _ in 0..dec.take_len(20)? {
                    let node = dec.take_u32()?;
                    let sum = dec.take_f64()?;
                    let count = dec.take_u64()?;
                    nodes.insert(node, (sum, count));
                }
                ordinals.insert(ordinal, nodes);
            }
            barriers.insert(job, ordinals);
        }
        Ok(AggState {
            finalized,
            barriers,
        })
    }
}

/// The fleet's node-health scoreboard: attach to an engine with
/// [`nurd_serve::Engine::attach_observer`] /
/// [`nurd_serve::EngineService::attach_observer`] (it implements
/// [`HealthObserver`]), then read [`HealthAggregator::verdicts`] to
/// drive placement or a quarantine policy.
///
/// # Example
///
/// ```
/// use nurd_health::{HealthAggregator, HealthConfig, NodeVerdict};
/// use nurd_serve::HealthObserver;
///
/// let agg = HealthAggregator::new(HealthConfig {
///     min_tasks: 4,
///     ..HealthConfig::default()
/// });
/// // Normally the engine feeds these; here, hand-feed one finalized
/// // job: node 0 hosted tasks {0, 1} (healthy), node 1 hosted {2, 3}
/// // and both straggled.
/// # let report = nurd_serve::JobReport {
/// #     job: 1,
/// #     checkpoints_scored: 0,
/// #     finalized: nurd_serve::FinalizeReason::JobEnd,
/// #     outcome: nurd_sim::ReplayOutcome {
/// #         threshold: 100.0,
/// #         flagged_at: Vec::new(),
/// #         confusion: Default::default(),
/// #         f1_timeline: Vec::new(),
/// #         warmup_checkpoint: 0,
/// #     },
/// #     actions: Vec::new(),
/// # };
/// agg.observe_finalized(&report, Some(&[0, 0, 1, 1]), &[false, false, true, true]);
/// assert_eq!(agg.verdict(1), NodeVerdict::Healthy); // 2 tasks < min_tasks
/// ```
pub struct HealthAggregator {
    config: HealthConfig,
    state: Mutex<AggState>,
}

impl std::fmt::Debug for HealthAggregator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthAggregator")
            .field("config", &self.config)
            .finish()
    }
}

impl HealthAggregator {
    /// A fresh, empty aggregator.
    #[must_use]
    pub fn new(config: HealthConfig) -> Self {
        HealthAggregator {
            config,
            state: Mutex::new(AggState::default()),
        }
    }

    /// The configuration the verdicts are rendered against.
    #[must_use]
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AggState> {
        // The keyed maps have no invariant a panicked peer can have
        // broken halfway (inserts are single-call).
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Per-node statistics for every node ever observed, node-id order.
    /// Computed on read by folding the keyed maps in sorted order — same
    /// maps ⇒ same answer, regardless of how observations interleaved.
    #[must_use]
    pub fn rates(&self) -> BTreeMap<u32, NodeStats> {
        let state = self.lock();
        let mut out: BTreeMap<u32, NodeStats> = BTreeMap::new();
        // Fold finalization tallies job-id-ascending: the EWMA weights
        // later (newer) jobs highest.
        for tallies in state.finalized.values() {
            for (&node, tally) in tallies {
                let job_rate = if tally.tasks == 0 {
                    0.0
                } else {
                    tally.stragglers as f64 / tally.tasks as f64
                };
                let entry = out.entry(node).or_insert(NodeStats {
                    tasks: 0,
                    stragglers: 0,
                    rate: job_rate,
                    suspicion: 0.0,
                    verdict: NodeVerdict::Healthy,
                });
                if entry.tasks > 0 {
                    entry.rate =
                        self.config.decay * entry.rate + (1.0 - self.config.decay) * job_rate;
                }
                entry.tasks += tally.tasks;
                entry.stragglers += tally.stragglers;
            }
        }
        // Suspicion: plain mean of the node's per-barrier mean scores.
        let mut suspicion: BTreeMap<u32, (f64, u64)> = BTreeMap::new();
        for ordinals in state.barriers.values() {
            for nodes in ordinals.values() {
                for (&node, &(sum, count)) in nodes {
                    if count > 0 {
                        let cell = suspicion.entry(node).or_insert((0.0, 0));
                        cell.0 += sum / count as f64;
                        cell.1 += 1;
                    }
                }
            }
        }
        for (node, (sum, barriers)) in suspicion {
            let entry = out.entry(node).or_insert(NodeStats {
                tasks: 0,
                stragglers: 0,
                rate: 0.0,
                suspicion: 0.0,
                verdict: NodeVerdict::Healthy,
            });
            entry.suspicion = sum / barriers as f64;
        }
        for stats in out.values_mut() {
            stats.verdict = self.judge(stats.tasks, stats.rate);
        }
        out
    }

    /// Every observed node's verdict, node-id order.
    #[must_use]
    pub fn verdicts(&self) -> BTreeMap<u32, NodeVerdict> {
        self.rates()
            .into_iter()
            .map(|(node, stats)| (node, stats.verdict))
            .collect()
    }

    /// One node's verdict (`Healthy` when never observed).
    #[must_use]
    pub fn verdict(&self, node: u32) -> NodeVerdict {
        self.rates()
            .get(&node)
            .map_or(NodeVerdict::Healthy, |s| s.verdict)
    }

    fn judge(&self, tasks: u64, rate: f64) -> NodeVerdict {
        if tasks < self.config.min_tasks {
            NodeVerdict::Healthy
        } else if rate >= self.config.quarantine_threshold {
            NodeVerdict::Quarantine
        } else if rate >= self.config.watch_threshold {
            NodeVerdict::Watch
        } else {
            NodeVerdict::Healthy
        }
    }
}

impl HealthObserver for HealthAggregator {
    fn observe_barrier(
        &self,
        job: u64,
        ordinal: usize,
        _time: f64,
        nodes: Option<&[u32]>,
        scores: &[TaskScore],
    ) {
        let Some(nodes) = nodes else { return };
        let mut state = self.lock();
        let slot = state.barriers.entry(job).or_default().entry(ordinal as u64);
        let std::collections::btree_map::Entry::Vacant(slot) = slot else {
            return; // already observed (idempotence under re-observation)
        };
        let mut per_node: BTreeMap<u32, (f64, u64)> = BTreeMap::new();
        for s in scores {
            if let Some(&node) = nodes.get(s.task) {
                let cell = per_node.entry(node).or_insert((0.0, 0));
                cell.0 += s.score;
                cell.1 += 1;
            }
        }
        slot.insert(per_node);
    }

    fn observe_finalized(&self, report: &JobReport, nodes: Option<&[u32]>, straggled: &[bool]) {
        let Some(nodes) = nodes else { return };
        let mut state = self.lock();
        let slot = state.finalized.entry(report.job);
        let std::collections::btree_map::Entry::Vacant(slot) = slot else {
            return; // already observed (idempotence under re-observation)
        };
        let mut tallies: BTreeMap<u32, NodeTally> = BTreeMap::new();
        for (t, &node) in nodes.iter().enumerate() {
            let tally = tallies.entry(node).or_default();
            tally.tasks += 1;
            tally.stragglers += u64::from(straggled.get(t).copied().unwrap_or(true));
        }
        slot.insert(tallies);
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let state = self.lock();
        let mut enc = Encoder::new();
        enc.put_u32(BLOB_VERSION);
        state.encode(&mut enc);
        enc.into_bytes()
    }

    fn restore_state(&self, blob: &[u8]) -> bool {
        let mut dec = Decoder::new(blob);
        let ok = dec
            .take_u32()
            .ok()
            .filter(|&v| v == BLOB_VERSION)
            .and_then(|_| AggState::decode(&mut dec).ok());
        match ok {
            Some(restored) => {
                *self.lock() = restored;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(job: u64) -> JobReport {
        JobReport {
            job,
            checkpoints_scored: 0,
            finalized: nurd_serve::FinalizeReason::JobEnd,
            outcome: nurd_sim::ReplayOutcome {
                threshold: 100.0,
                flagged_at: Vec::new(),
                confusion: Default::default(),
                f1_timeline: Vec::new(),
                warmup_checkpoint: 0,
            },
            actions: Vec::new(),
        }
    }

    fn agg() -> HealthAggregator {
        HealthAggregator::new(HealthConfig {
            decay: 0.5,
            watch_threshold: 0.25,
            quarantine_threshold: 0.5,
            min_tasks: 4,
        })
    }

    #[test]
    fn node_blind_jobs_are_ignored() {
        let a = agg();
        a.observe_finalized(&report(1), None, &[true, true]);
        assert!(a.rates().is_empty());
    }

    #[test]
    fn tallies_and_verdicts() {
        let a = agg();
        // Node 0: 4 tasks, 0 stragglers. Node 1: 4 tasks, all straggle.
        a.observe_finalized(
            &report(1),
            Some(&[0, 0, 1, 1, 0, 0, 1, 1]),
            &[false, false, true, true, false, false, true, true],
        );
        let rates = a.rates();
        assert_eq!(rates[&0].verdict, NodeVerdict::Healthy);
        assert_eq!(rates[&1].verdict, NodeVerdict::Quarantine);
        assert_eq!(rates[&1].tasks, 4);
        assert_eq!(rates[&1].stragglers, 4);
        assert!((rates[&1].rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_tasks_gates_judgement() {
        let a = agg();
        // 2 tasks on node 7, both straggle — not enough evidence.
        a.observe_finalized(&report(1), Some(&[7, 7]), &[true, true]);
        assert_eq!(a.verdict(7), NodeVerdict::Healthy);
        // Two more straggling tasks clear the gate.
        a.observe_finalized(&report(2), Some(&[7, 7]), &[true, true]);
        assert_eq!(a.verdict(7), NodeVerdict::Quarantine);
    }

    #[test]
    fn ewma_weights_later_jobs() {
        let a = agg();
        // Job 1: node 3 fully sick. Jobs 2, 3: fully recovered.
        a.observe_finalized(&report(1), Some(&[3; 4]), &[true; 4]);
        a.observe_finalized(&report(3), Some(&[3; 4]), &[false; 4]);
        a.observe_finalized(&report(2), Some(&[3; 4]), &[false; 4]);
        // decay 0.5: 1.0 → 0.5 → 0.25.
        let rates = a.rates();
        assert!((rates[&3].rate - 0.25).abs() < 1e-12);
        assert_eq!(rates[&3].verdict, NodeVerdict::Watch);
    }

    #[test]
    fn observation_is_idempotent_and_order_independent() {
        let a = agg();
        let b = agg();
        let nodes = [0u32, 1, 0, 1];
        let truth = [true, false, false, true];
        // a: jobs 1, 2, with job 1 re-observed (WAL-replay shape).
        a.observe_finalized(&report(1), Some(&nodes), &truth);
        a.observe_finalized(&report(2), Some(&nodes), &[false; 4]);
        a.observe_finalized(&report(1), Some(&nodes), &[true; 4]);
        // b: reverse arrival order, no duplicates.
        b.observe_finalized(&report(2), Some(&nodes), &[false; 4]);
        b.observe_finalized(&report(1), Some(&nodes), &truth);
        assert_eq!(a.rates(), b.rates());
    }

    #[test]
    fn barrier_scores_feed_suspicion() {
        let a = agg();
        let scores = [
            TaskScore {
                task: 0,
                score: 0.2,
            },
            TaskScore {
                task: 1,
                score: 1.6,
            },
            TaskScore {
                task: 2,
                score: 0.4,
            },
            TaskScore {
                task: 3,
                score: 1.8,
            },
        ];
        a.observe_barrier(1, 0, 10.0, Some(&[0, 1, 0, 1]), &scores);
        // Duplicate delivery of the same barrier is dropped.
        a.observe_barrier(1, 0, 10.0, Some(&[0, 1, 0, 1]), &[]);
        let rates = a.rates();
        assert!((rates[&0].suspicion - 0.3).abs() < 1e-12);
        assert!((rates[&1].suspicion - 1.7).abs() < 1e-12);
        // Scores alone never convict: no finalized tasks yet.
        assert_eq!(rates[&1].verdict, NodeVerdict::Healthy);
    }

    #[test]
    fn snapshot_round_trips_and_rejects_garbage() {
        let a = agg();
        a.observe_finalized(&report(1), Some(&[0, 1, 1]), &[false, true, true]);
        a.observe_barrier(
            1,
            2,
            30.0,
            Some(&[0, 1, 1]),
            &[TaskScore {
                task: 1,
                score: 1.2,
            }],
        );
        let blob = a.snapshot_state();

        let fresh = agg();
        assert!(fresh.restore_state(&blob));
        assert_eq!(fresh.rates(), a.rates());

        assert!(!agg().restore_state(&[0xFF; 7]), "garbage blob rejected");
        assert!(
            !agg().restore_state(&blob[..blob.len() - 1]),
            "truncation rejected"
        );
    }
}
