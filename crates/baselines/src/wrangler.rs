//! Wrangler (Yadwadkar et al., 2014): the systems baseline.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nurd_data::{Checkpoint, JobContext, OnlinePredictor};
use nurd_ml::{LinearSvm, SvmConfig};

/// Wrangler: a linear SVM straggler classifier.
///
/// Per the paper's protocol (§6), Wrangler is granted what no online
/// method has — labeled stragglers: "we randomly sample 2/3 non-stragglers
/// and stragglers from each job as training to mimic the same situation in
/// the original paper". The adapter trains offline in
/// [`OnlinePredictor::begin_job`] on final-snapshot features with oracle
/// labels (minority class upweighted, the deterministic equivalent of
/// Wrangler's oversampling) and classifies running tasks online.
#[derive(Debug, Clone)]
pub struct WranglerPredictor {
    svm_config: SvmConfig,
    /// Fraction of tasks sampled for offline training.
    train_fraction: f64,
    seed: u64,
    model: Option<LinearSvm>,
}

impl Default for WranglerPredictor {
    fn default() -> Self {
        WranglerPredictor {
            svm_config: SvmConfig::default(),
            train_fraction: 2.0 / 3.0,
            seed: 0x3A7A,
            model: None,
        }
    }
}

impl OnlinePredictor for WranglerPredictor {
    fn name(&self) -> &str {
        "Wrangler"
    }

    fn begin_job(&mut self, ctx: &JobContext<'_>) {
        self.model = None;
        let job = ctx.oracle;
        let threshold = ctx.threshold;
        let n = job.task_count();
        let mut rng = StdRng::seed_from_u64(self.seed ^ job.job_id());
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(&mut rng);
        let take = ((self.train_fraction * n as f64).round() as usize).clamp(2, n);

        let last = job.checkpoint_count() - 1;
        let mut x = Vec::with_capacity(take);
        let mut y = Vec::with_capacity(take);
        let mut positives = 0usize;
        for &id in &ids[..take] {
            let task = &job.tasks()[id];
            x.push(task.snapshot(last).to_vec());
            let is_straggler = task.latency() >= threshold;
            positives += usize::from(is_straggler);
            y.push(if is_straggler { 1.0 } else { -1.0 });
        }
        if positives == 0 || positives == take {
            return; // degenerate sample; predict nothing
        }
        // Oversampling-equivalent: weight classes inversely to frequency.
        let negatives = take - positives;
        let config = SvmConfig {
            class_weights: (1.0, negatives as f64 / positives as f64),
            seed: self.svm_config.seed ^ job.job_id(),
            ..self.svm_config.clone()
        };
        self.model = LinearSvm::fit(&x, &y, &config).ok();
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        let Some(model) = &self.model else {
            return Vec::new();
        };
        checkpoint
            .running
            .iter()
            .filter(|t| model.predict(t.features) > 0.0)
            .map(|t| t.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_sim::{replay_job, ReplayConfig};
    use nurd_trace::{SuiteConfig, TraceStyle};

    fn job() -> nurd_data::JobTrace {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(1)
            .with_task_range(150, 180)
            .with_checkpoints(12)
            .with_seed(31);
        nurd_trace::generate_job(&cfg, 0)
    }

    #[test]
    fn oracle_labels_buy_high_tpr() {
        let job = job();
        let out = replay_job(
            &job,
            &mut WranglerPredictor::default(),
            &ReplayConfig::default(),
        );
        // With labeled stragglers and oversampling, Wrangler catches most
        // stragglers (Table 3: TPR 0.95) but its linear boundary and
        // oversampling bias produce many false positives (FPR 0.42).
        assert!(out.confusion.tpr() > 0.5, "tpr {}", out.confusion.tpr());
        assert!(out.confusion.fpr() > 0.01, "fpr {}", out.confusion.fpr());
    }

    #[test]
    fn predicts_nothing_before_begin_job() {
        let mut p = WranglerPredictor::default();
        let ckpt = Checkpoint {
            ordinal: 0,
            time: 1.0,
            finished: vec![],
            running: vec![],
        };
        assert!(p.predict(&ckpt).is_empty());
    }
}
