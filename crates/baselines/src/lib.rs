//! Every method evaluated in the NURD paper, behind the common
//! [`nurd_data::OnlinePredictor`] interface.
//!
//! The [`registry`] function returns the full Table 3 roster — the
//! paper's 23 methods (one supervised regressor (GBTR), fourteen outlier
//! detectors, two PU learners, three censored/survival regressors, the
//! Wrangler system baseline, and NURD with its NURD-NC ablation) plus
//! this reproduction's `NURD-WS` row, which runs NURD under the default
//! warm refit policy so warm-vs-cold accuracy is tracked wherever Table 3
//! is produced. Each entry builds fresh per-job predictor instances, as
//! the paper trains one model per job.
//!
//! # Example
//!
//! ```
//! let methods = nurd_baselines::registry();
//! assert_eq!(methods.len(), 24);
//! let nurd = methods.iter().find(|m| m.name == "NURD").unwrap();
//! let mut predictor = nurd.build();
//! assert_eq!(predictor.name(), "NURD");
//! ```

mod outlier_adapter;
mod pu_adapter;
mod registry;
mod supervised;
mod survival_adapter;
mod wrangler;

pub use outlier_adapter::{OutlierPredictor, XgbodPredictor};
pub use pu_adapter::{PuBaggingPredictor, PuEnPredictor};
pub use registry::{registry, registry_with_nurd_alpha, MethodFamily, MethodSpec};
pub use supervised::GbtrPredictor;
pub use survival_adapter::{CoxPredictor, GrabitPredictor, TobitPredictor};
pub use wrangler::WranglerPredictor;
