//! Censored/survival regression adapters.

use nurd_data::{Checkpoint, OnlinePredictor, StreamContext};
use nurd_survival::{CoxConfig, CoxPh, Grabit, GrabitConfig, Tobit, TobitConfig};

/// Builds the censored training triples at a checkpoint: finished tasks are
/// observed at their latency, running tasks are censored at the checkpoint
/// time.
fn censored_triples(checkpoint: &Checkpoint<'_>) -> (Vec<Vec<f64>>, Vec<f64>, Vec<bool>) {
    let mut x = checkpoint.finished_features();
    let mut time = checkpoint.finished_latencies();
    let mut observed = vec![true; x.len()];
    for task in &checkpoint.running {
        x.push(task.features.to_vec());
        time.push(checkpoint.time);
        observed.push(false);
    }
    (x, time, observed)
}

/// Tobit online: linear censored-Gaussian regression refit per checkpoint;
/// flags a running task when the predicted latent latency crosses `τ_stra`.
#[derive(Debug, Clone)]
pub struct TobitPredictor {
    config: TobitConfig,
    threshold: f64,
}

impl Default for TobitPredictor {
    fn default() -> Self {
        TobitPredictor {
            config: TobitConfig::default(),
            threshold: f64::INFINITY,
        }
    }
}

impl OnlinePredictor for TobitPredictor {
    fn name(&self) -> &str {
        "Tobit"
    }

    fn begin_stream(&mut self, ctx: &StreamContext) {
        self.threshold = ctx.threshold;
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        if checkpoint.finished.len() < 2 || checkpoint.running.is_empty() {
            return Vec::new();
        }
        let (x, time, observed) = censored_triples(checkpoint);
        let Ok(model) = Tobit::fit(&x, &time, &observed, &self.config) else {
            return Vec::new();
        };
        checkpoint
            .running
            .iter()
            .filter(|t| model.predict(t.features) >= self.threshold)
            .map(|t| t.id)
            .collect()
    }
}

/// Grabit online: boosted Tobit, the paper's strongest baseline on Google
/// traces.
///
/// σ is a KTBoost *hyperparameter*: per the paper's protocol (§6) it is
/// tuned once on a handful of jobs and applied to every job unchanged.
/// That single pre-specified scale is exactly the distributional
/// assumption §3.4 criticizes — it cannot match every job's latency
/// spread, which is what separates Grabit from NURD in Table 3.
#[derive(Debug, Clone)]
pub struct GrabitPredictor {
    config: GrabitConfig,
    threshold: f64,
}

impl GrabitPredictor {
    /// The globally tuned σ (seconds), found by sweeping on the six
    /// hyperparameter-tuning jobs as the paper does for every method.
    pub const TUNED_SIGMA: f64 = 60.0;
}

impl Default for GrabitPredictor {
    fn default() -> Self {
        GrabitPredictor {
            config: GrabitConfig {
                sigma: Some(Self::TUNED_SIGMA),
                ..GrabitConfig::default()
            },
            threshold: f64::INFINITY,
        }
    }
}

impl OnlinePredictor for GrabitPredictor {
    fn name(&self) -> &str {
        "Grabit"
    }

    fn begin_stream(&mut self, ctx: &StreamContext) {
        self.threshold = ctx.threshold;
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        if checkpoint.finished.len() < 2 || checkpoint.running.is_empty() {
            return Vec::new();
        }
        let (x, time, observed) = censored_triples(checkpoint);
        let Ok(model) = Grabit::fit(&x, &time, &observed, &self.config) else {
            return Vec::new();
        };
        checkpoint
            .running
            .iter()
            .filter(|t| model.predict(t.features) >= self.threshold)
            .map(|t| t.id)
            .collect()
    }
}

/// CoxPH online: proportional hazards of *completion*; a running task
/// predicted to survive (stay running) past `τ_stra` with probability
/// ≥ 0.5 is flagged.
#[derive(Debug, Clone)]
pub struct CoxPredictor {
    config: CoxConfig,
    threshold: f64,
}

impl Default for CoxPredictor {
    fn default() -> Self {
        CoxPredictor {
            config: CoxConfig::default(),
            threshold: f64::INFINITY,
        }
    }
}

impl OnlinePredictor for CoxPredictor {
    fn name(&self) -> &str {
        "CoxPH"
    }

    fn begin_stream(&mut self, ctx: &StreamContext) {
        self.threshold = ctx.threshold;
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        if checkpoint.finished.len() < 2 || checkpoint.running.is_empty() {
            return Vec::new();
        }
        let (x, time, observed) = censored_triples(checkpoint);
        let Ok(model) = CoxPh::fit(&x, &time, &observed, &self.config) else {
            return Vec::new();
        };
        checkpoint
            .running
            .iter()
            .filter(|t| model.survival_at(t.features, self.threshold) >= 0.5)
            .map(|t| t.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_sim::{replay_job, ReplayConfig};
    use nurd_trace::{SuiteConfig, TraceStyle};

    fn job(seed: u64) -> nurd_data::JobTrace {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(1)
            .with_task_range(100, 130)
            .with_checkpoints(12)
            .with_seed(seed);
        nurd_trace::generate_job(&cfg, 0)
    }

    #[test]
    fn all_three_run_the_protocol() {
        let job = job(13);
        for p in [
            &mut TobitPredictor::default() as &mut dyn OnlinePredictor,
            &mut GrabitPredictor::default(),
            &mut CoxPredictor::default(),
        ] {
            let out = replay_job(&job, p, &ReplayConfig::default());
            assert_eq!(out.confusion.total(), job.task_count(), "{}", p.name());
        }
    }

    #[test]
    fn grabit_is_competitive_with_tobit_on_f1() {
        // Averaged over a few jobs, the boosted version stays in the same
        // F1 neighborhood as the linear one (Table 3 has Grabit ahead on
        // the full suites; tiny samples carry variance, so the bound here
        // is loose).
        let mut tobit_f1 = 0.0;
        let mut grabit_f1 = 0.0;
        for seed in [1, 2, 3, 4, 5, 6] {
            let job = job(seed);
            let t = replay_job(
                &job,
                &mut TobitPredictor::default(),
                &ReplayConfig::default(),
            );
            let g = replay_job(
                &job,
                &mut GrabitPredictor::default(),
                &ReplayConfig::default(),
            );
            tobit_f1 += t.confusion.f1();
            grabit_f1 += g.confusion.f1();
        }
        // Guard against wholesale breakage rather than asserting a strict
        // ordering: the fixed global σ penalizes Grabit on the fast, small
        // jobs this fixture generates (see DESIGN.md protocol notes), while
        // the full Table 3 suites have Grabit ahead of Tobit.
        assert!(
            grabit_f1 > 0.5 && grabit_f1 >= 0.3 * tobit_f1,
            "grabit {grabit_f1} vs tobit {tobit_f1}"
        );
    }

    #[test]
    fn censored_triples_shapes() {
        let job = job(9);
        let k = 6;
        let time = job.checkpoint_times()[k];
        let mut finished = Vec::new();
        let mut running = Vec::new();
        for task in job.tasks() {
            if task.latency() <= time {
                finished.push(nurd_data::FinishedTask {
                    id: task.id(),
                    features: task.snapshot(k),
                    latency: task.latency(),
                });
            } else {
                running.push(nurd_data::RunningTask {
                    id: task.id(),
                    features: task.snapshot(k),
                });
            }
        }
        let ckpt = Checkpoint {
            ordinal: k,
            time,
            finished,
            running,
        };
        let (x, t, o) = censored_triples(&ckpt);
        assert_eq!(x.len(), job.task_count());
        assert_eq!(t.len(), o.len());
        let censored = o.iter().filter(|&&b| !b).count();
        assert_eq!(censored, ckpt.running.len());
        assert!(t
            .iter()
            .zip(&o)
            .all(|(&ti, &oi)| oi || (ti - time).abs() < 1e-12));
    }
}
