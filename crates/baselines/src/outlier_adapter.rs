//! Adapters exposing the fourteen outlier detectors as online predictors.

use nurd_data::{Checkpoint, OnlinePredictor};
use nurd_outlier::{contamination_threshold, OutlierDetector, Xgbod};

/// Drives any transductive [`OutlierDetector`] through the online
/// protocol: at each checkpoint the detector scores all visible tasks
/// (finished ∪ running) and flags the running tasks whose score exceeds
/// the contamination-quantile threshold.
///
/// As §3.2 of the paper argues, these methods only see the feature space —
/// the observed latencies of finished tasks are never used — which is
/// exactly why feature-space decoys sink their precision.
pub struct OutlierPredictor {
    detector: Box<dyn OutlierDetector + Send>,
    /// Expected outlier share (PyOD-style contamination; 0.1 matches the
    /// p90 straggler definition).
    contamination: f64,
}

impl OutlierPredictor {
    /// Wraps a detector with the default 0.1 contamination.
    #[must_use]
    pub fn new(detector: Box<dyn OutlierDetector + Send>) -> Self {
        OutlierPredictor {
            detector,
            contamination: 0.1,
        }
    }
}

impl std::fmt::Debug for OutlierPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutlierPredictor")
            .field("detector", &self.detector.name())
            .field("contamination", &self.contamination)
            .finish()
    }
}

impl OnlinePredictor for OutlierPredictor {
    fn name(&self) -> &str {
        self.detector.name()
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        if checkpoint.running.is_empty() || checkpoint.visible_count() < 5 {
            return Vec::new();
        }
        let mut x = checkpoint.finished_features();
        let n_finished = x.len();
        x.extend(checkpoint.running_features());
        let Ok(scores) = self.detector.score_all(&x) else {
            return Vec::new();
        };
        if scores.iter().any(|s| !s.is_finite()) {
            return Vec::new();
        }
        let threshold = contamination_threshold(&scores, self.contamination);
        checkpoint
            .running
            .iter()
            .enumerate()
            .filter(|(i, _)| scores[n_finished + i] > threshold)
            .map(|(_, t)| t.id)
            .collect()
    }
}

/// XGBOD under the online protocol: the supervised head is trained on
/// finished-vs-running proxy labels (no straggler labels exist online —
/// see `DESIGN.md` §3), and running tasks in the top contamination
/// quantile of predicted running-ness are flagged.
#[derive(Debug, Clone)]
pub struct XgbodPredictor {
    model: Xgbod,
    contamination: f64,
}

impl Default for XgbodPredictor {
    fn default() -> Self {
        XgbodPredictor {
            model: Xgbod::default(),
            contamination: 0.1,
        }
    }
}

impl OnlinePredictor for XgbodPredictor {
    fn name(&self) -> &str {
        "XGBOD"
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        if checkpoint.finished.len() < 2 || checkpoint.running.is_empty() {
            return Vec::new();
        }
        let mut x = checkpoint.finished_features();
        let n_finished = x.len();
        x.extend(checkpoint.running_features());
        let mut labels = vec![0.0; n_finished];
        labels.extend(std::iter::repeat_n(1.0, checkpoint.running.len()));
        let Ok(fitted) = self.model.fit(&x, &labels) else {
            return Vec::new();
        };
        let Ok(scores) = fitted.score_all(&x) else {
            return Vec::new();
        };
        let threshold = contamination_threshold(&scores, self.contamination);
        checkpoint
            .running
            .iter()
            .enumerate()
            .filter(|(i, _)| scores[n_finished + i] > threshold)
            .map(|(_, t)| t.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_outlier::Knn;
    use nurd_sim::{replay_job, ReplayConfig};
    use nurd_trace::{SuiteConfig, TraceStyle};

    fn job() -> nurd_data::JobTrace {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(1)
            .with_task_range(120, 150)
            .with_checkpoints(12)
            .with_seed(77);
        nurd_trace::generate_job(&cfg, 0)
    }

    #[test]
    fn knn_adapter_runs_the_protocol() {
        let job = job();
        let mut p = OutlierPredictor::new(Box::new(Knn::default()));
        let out = replay_job(&job, &mut p, &ReplayConfig::default());
        assert_eq!(out.confusion.total(), job.task_count());
        // An unsupervised detector flags *something* on these traces.
        assert!(out.confusion.true_positives + out.confusion.false_positives > 0);
    }

    #[test]
    fn xgbod_adapter_runs_the_protocol() {
        let job = job();
        let mut p = XgbodPredictor::default();
        let out = replay_job(&job, &mut p, &ReplayConfig::default());
        assert_eq!(out.confusion.total(), job.task_count());
    }

    #[test]
    fn no_flags_on_empty_checkpoints() {
        let mut p = OutlierPredictor::new(Box::new(Knn::default()));
        let ckpt = Checkpoint {
            ordinal: 0,
            time: 1.0,
            finished: vec![],
            running: vec![],
        };
        assert!(p.predict(&ckpt).is_empty());
    }
}
