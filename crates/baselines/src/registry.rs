//! The 24-method roster of Table 3 (the paper's 23 plus the `NURD-WS`
//! warm-refit row this reproduction adds).

use nurd_core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd_data::OnlinePredictor;
use nurd_outlier::{
    Abod, Cblof, Cof, Hbos, IsolationForest, Knn, Lof, Lscp, Mcd, OcSvm, PcaDetector, Sod, Sos,
};

use crate::{
    CoxPredictor, GbtrPredictor, GrabitPredictor, OutlierPredictor, PuBaggingPredictor,
    PuEnPredictor, TobitPredictor, WranglerPredictor, XgbodPredictor,
};

/// Method family, as grouped in Table 3's left column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodFamily {
    /// Plain supervised learning (GBTR).
    Supervised,
    /// Unsupervised outlier detection (fourteen methods).
    OutlierDetection,
    /// Positive-unlabeled learning.
    PositiveUnlabeled,
    /// Censored and survival regression.
    CensoredSurvival,
    /// Systems solutions (Wrangler).
    Systems,
    /// This paper's methods (NURD-NC, NURD).
    Ours,
}

impl MethodFamily {
    /// The family label used in Table 3.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            MethodFamily::Supervised => "Supervised",
            MethodFamily::OutlierDetection => "Outlier detection",
            MethodFamily::PositiveUnlabeled => "Positive-unlabeled",
            MethodFamily::CensoredSurvival => "Censored and survival regression",
            MethodFamily::Systems => "Systems",
            MethodFamily::Ours => "Ours",
        }
    }
}

type Factory = Box<dyn Fn() -> Box<dyn OnlinePredictor + Send> + Send + Sync>;

/// One evaluable method: a display name, its Table 3 family, and a factory
/// producing fresh per-job predictor instances.
pub struct MethodSpec {
    /// Name as printed in the paper's tables.
    pub name: &'static str,
    /// Table 3 grouping.
    pub family: MethodFamily,
    factory: Factory,
}

impl MethodSpec {
    fn new(
        name: &'static str,
        family: MethodFamily,
        factory: impl Fn() -> Box<dyn OnlinePredictor + Send> + Send + Sync + 'static,
    ) -> Self {
        MethodSpec {
            name,
            family,
            factory: Box::new(factory),
        }
    }

    /// Builds a fresh predictor (one per job, per the paper's protocol).
    #[must_use]
    pub fn build(&self) -> Box<dyn OnlinePredictor + Send> {
        (self.factory)()
    }
}

impl std::fmt::Debug for MethodSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodSpec")
            .field("name", &self.name)
            .field("family", &self.family)
            .finish()
    }
}

/// All Table 3 methods in the paper's row order — the paper's 23 plus a
/// `NURD-WS` row (NURD under the default warm [`RefitPolicy`], including
/// the warm-seeded propensity IRLS) so the warm-refit subsystem's
/// accuracy claims get standing Table 3 coverage, not just the
/// `crates/core/tests/warm_refit.rs` tolerances — with NURD at its
/// Google-tuned `α` (see [`registry_with_nurd_alpha`] for per-dataset
/// tuning).
#[must_use]
pub fn registry() -> Vec<MethodSpec> {
    registry_with_nurd_alpha(NurdConfig::default().alpha)
}

/// The full roster with NURD's calibration parameter `α` overridden.
///
/// The paper tunes hyperparameters per dataset on six held-out jobs (§6);
/// on the synthetic traces that procedure lands at `α = 0.20` for the
/// Google style and `α = 0.40` for the feature-poor Alibaba style (weaker
/// propensity signal wants a more aggressive weighting).
#[must_use]
pub fn registry_with_nurd_alpha(alpha: f64) -> Vec<MethodSpec> {
    use MethodFamily as F;
    vec![
        MethodSpec::new("GBTR", F::Supervised, || Box::new(GbtrPredictor::default())),
        MethodSpec::new("ABOD", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(Abod::default())))
        }),
        MethodSpec::new("CBLOF", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(Cblof::default())))
        }),
        MethodSpec::new("HBOS", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(Hbos::default())))
        }),
        MethodSpec::new("IFOREST", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(IsolationForest::default())))
        }),
        MethodSpec::new("KNN", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(Knn::default())))
        }),
        MethodSpec::new("LOF", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(Lof::default())))
        }),
        MethodSpec::new("MCD", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(Mcd::default())))
        }),
        MethodSpec::new("OCSVM", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(OcSvm::default())))
        }),
        MethodSpec::new("PCA", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(PcaDetector::default())))
        }),
        MethodSpec::new("SOS", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(Sos::default())))
        }),
        MethodSpec::new("LSCP", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(Lscp::default())))
        }),
        MethodSpec::new("COF", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(Cof::default())))
        }),
        MethodSpec::new("SOD", F::OutlierDetection, || {
            Box::new(OutlierPredictor::new(Box::new(Sod::default())))
        }),
        MethodSpec::new("XGBOD", F::OutlierDetection, || {
            Box::new(XgbodPredictor::default())
        }),
        MethodSpec::new("PU-EN", F::PositiveUnlabeled, || {
            Box::new(PuEnPredictor::default())
        }),
        MethodSpec::new("PU-BG", F::PositiveUnlabeled, || {
            Box::new(PuBaggingPredictor::default())
        }),
        MethodSpec::new("Tobit", F::CensoredSurvival, || {
            Box::new(TobitPredictor::default())
        }),
        MethodSpec::new("Grabit", F::CensoredSurvival, || {
            Box::new(GrabitPredictor::default())
        }),
        MethodSpec::new("CoxPH", F::CensoredSurvival, || {
            Box::new(CoxPredictor::default())
        }),
        MethodSpec::new("Wrangler", F::Systems, || {
            Box::new(WranglerPredictor::default())
        }),
        MethodSpec::new("NURD-NC", F::Ours, || {
            Box::new(NurdPredictor::new(NurdConfig::without_calibration()))
        }),
        MethodSpec::new("NURD-WS", F::Ours, move || {
            Box::new(NurdPredictor::new(
                NurdConfig::default()
                    .with_alpha(alpha)
                    .with_refit_policy(RefitPolicy::Warm(WarmRefitConfig::default())),
            ))
        }),
        MethodSpec::new("NURD", F::Ours, move || {
            Box::new(NurdPredictor::new(NurdConfig::default().with_alpha(alpha)))
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_24_methods_in_table3_order() {
        let methods = registry();
        assert_eq!(methods.len(), 24);
        assert_eq!(methods[0].name, "GBTR");
        assert_eq!(methods[22].name, "NURD-WS");
        assert_eq!(methods[23].name, "NURD");
        let outliers = methods
            .iter()
            .filter(|m| m.family == MethodFamily::OutlierDetection)
            .count();
        assert_eq!(outliers, 14);
        let ours = methods
            .iter()
            .filter(|m| m.family == MethodFamily::Ours)
            .count();
        assert_eq!(ours, 3, "NURD-NC, NURD-WS, NURD");
    }

    #[test]
    fn factories_produce_matching_names() {
        for spec in registry() {
            let predictor = spec.build();
            assert_eq!(predictor.name(), spec.name);
        }
    }

    #[test]
    fn families_have_labels() {
        for spec in registry() {
            assert!(!spec.family.label().is_empty());
        }
    }

    #[test]
    fn fresh_instances_are_independent() {
        let methods = registry();
        let nurd = methods.iter().find(|m| m.name == "NURD").unwrap();
        let a = nurd.build();
        let b = nurd.build();
        // Two instances; names equal but they are distinct allocations.
        assert_eq!(a.name(), b.name());
    }
}
