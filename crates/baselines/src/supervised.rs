//! GBTR: the plain supervised baseline (§6 "Supervised learning").

use nurd_data::{Checkpoint, JobContext, OnlinePredictor};
use nurd_linalg::MatrixView;
use nurd_ml::{GbtConfig, GradientBoosting, SquaredLoss};

/// Gradient boosting trained on finished tasks with no correction; flags a
/// running task when the raw prediction crosses `τ_stra`. This is the
/// paper's demonstration of uncorrected training/test drift: predictions
/// are biased toward non-stragglers, so TPR is low.
#[derive(Debug, Clone)]
pub struct GbtrPredictor {
    config: GbtConfig,
    threshold: f64,
}

impl GbtrPredictor {
    /// Creates the baseline with the given booster configuration.
    #[must_use]
    pub fn new(config: GbtConfig) -> Self {
        GbtrPredictor {
            config,
            threshold: f64::INFINITY,
        }
    }
}

impl Default for GbtrPredictor {
    fn default() -> Self {
        GbtrPredictor::new(GbtConfig {
            n_rounds: 50,
            ..GbtConfig::default()
        })
    }
}

impl OnlinePredictor for GbtrPredictor {
    fn name(&self) -> &str {
        "GBTR"
    }

    fn begin_job(&mut self, ctx: &JobContext<'_>) {
        self.threshold = ctx.threshold;
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        if checkpoint.finished.len() < 2 || checkpoint.running.is_empty() {
            return Vec::new();
        }
        // Zero-copy row views: the booster bins straight from the trace
        // storage, no feature cloning.
        let x = checkpoint.finished_feature_rows();
        let y = checkpoint.finished_latencies();
        let Ok(model) =
            GradientBoosting::fit_view(MatrixView::RowSlices(&x), &y, SquaredLoss, &self.config)
        else {
            return Vec::new();
        };
        let run_rows = checkpoint.running_feature_rows();
        let preds = model.predict_view(MatrixView::RowSlices(&run_rows));
        checkpoint
            .running
            .iter()
            .zip(preds)
            .filter(|(_, pred)| *pred >= self.threshold)
            .map(|(t, _)| t.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_sim::{replay_job, ReplayConfig};
    use nurd_trace::{SuiteConfig, TraceStyle};

    #[test]
    fn gbtr_underpredicts_stragglers() {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(1)
            .with_task_range(150, 180)
            .with_checkpoints(15)
            .with_long_tail_fraction(1.0)
            .with_seed(5);
        let job = nurd_trace::generate_job(&cfg, 0);
        let out = replay_job(
            &job,
            &mut GbtrPredictor::default(),
            &ReplayConfig::default(),
        );
        // Trained only on non-stragglers, GBTR cannot predict beyond the
        // observed latency range: FPR stays near zero and TPR well below 1.
        assert!(out.confusion.fpr() < 0.15, "fpr {}", out.confusion.fpr());
        assert!(out.confusion.tpr() < 0.9, "tpr {}", out.confusion.tpr());
    }

    #[test]
    fn no_predictions_without_training_data() {
        let mut p = GbtrPredictor::default();
        let ckpt = Checkpoint {
            ordinal: 0,
            time: 1.0,
            finished: vec![],
            running: vec![],
        };
        assert!(p.predict(&ckpt).is_empty());
    }
}
