//! GBTR: the plain supervised baseline (§6 "Supervised learning").

use nurd_core::{RefitPolicy, RefitStats, WarmRefitState};
use nurd_data::{Checkpoint, OnlinePredictor, StreamContext};
use nurd_linalg::MatrixView;
use nurd_ml::{GbtConfig, GradientBoosting, SquaredLoss};

/// Gradient boosting trained on finished tasks with no correction; flags a
/// running task when the raw prediction crosses `τ_stra`. This is the
/// paper's demonstration of uncorrected training/test drift: predictions
/// are biased toward non-stragglers, so TPR is low.
///
/// Consumes the same per-checkpoint refit machinery as NURD itself: under
/// a warm [`RefitPolicy`] the booster is warm-started across checkpoints
/// through a [`WarmRefitState`] instead of being refit from scratch.
#[derive(Debug, Clone)]
pub struct GbtrPredictor {
    config: GbtConfig,
    policy: RefitPolicy,
    threshold: f64,
    warm: WarmRefitState,
}

impl GbtrPredictor {
    /// Creates the baseline with the given booster configuration and the
    /// paper's always-cold refit behaviour.
    #[must_use]
    pub fn new(config: GbtConfig) -> Self {
        GbtrPredictor::with_policy(config, RefitPolicy::AlwaysCold)
    }

    /// Creates the baseline with an explicit refit policy.
    #[must_use]
    pub fn with_policy(config: GbtConfig, policy: RefitPolicy) -> Self {
        GbtrPredictor {
            config,
            policy,
            threshold: f64::INFINITY,
            warm: WarmRefitState::new(),
        }
    }

    /// Warm/cold refit counters for the current job (all-zero under
    /// [`RefitPolicy::AlwaysCold`]).
    #[must_use]
    pub fn refit_stats(&self) -> RefitStats {
        self.warm.stats()
    }
}

impl Default for GbtrPredictor {
    fn default() -> Self {
        GbtrPredictor::new(GbtConfig {
            n_rounds: 50,
            ..GbtConfig::default()
        })
    }
}

impl OnlinePredictor for GbtrPredictor {
    fn name(&self) -> &str {
        "GBTR"
    }

    fn begin_stream(&mut self, ctx: &StreamContext) {
        self.threshold = ctx.threshold;
        self.warm.reset();
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        if checkpoint.finished.len() < 2 || checkpoint.running.is_empty() {
            return Vec::new();
        }
        let cold_model;
        let model: &GradientBoosting<SquaredLoss> = match &self.policy {
            // Historical path: zero-copy row views — the booster bins
            // straight from the trace storage, no feature cloning.
            RefitPolicy::AlwaysCold => {
                let x = checkpoint.finished_feature_rows();
                let y = checkpoint.finished_latencies();
                let Ok(m) = GradientBoosting::fit_view(
                    MatrixView::RowSlices(&x),
                    &y,
                    SquaredLoss,
                    &self.config,
                ) else {
                    return Vec::new();
                };
                cold_model = m;
                &cold_model
            }
            // Warm path: absorb the finished-set delta and refit
            // incrementally, exactly as NURD's latency head does.
            policy => {
                self.warm.absorb(checkpoint);
                if self.warm.refit(&self.config, policy).is_err() {
                    return Vec::new();
                }
                self.warm.model().expect("refit succeeded")
            }
        };
        let run_rows = checkpoint.running_feature_rows();
        let preds = model.predict_view(MatrixView::RowSlices(&run_rows));
        checkpoint
            .running
            .iter()
            .zip(preds)
            .filter(|(_, pred)| *pred >= self.threshold)
            .map(|(t, _)| t.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_sim::{replay_job, ReplayConfig};
    use nurd_trace::{SuiteConfig, TraceStyle};

    #[test]
    fn gbtr_underpredicts_stragglers() {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(1)
            .with_task_range(150, 180)
            .with_checkpoints(15)
            .with_long_tail_fraction(1.0)
            .with_seed(5);
        let job = nurd_trace::generate_job(&cfg, 0);
        let out = replay_job(
            &job,
            &mut GbtrPredictor::default(),
            &ReplayConfig::default(),
        );
        // Trained only on non-stragglers, GBTR cannot predict beyond the
        // observed latency range: FPR stays near zero and TPR well below 1.
        assert!(out.confusion.fpr() < 0.15, "fpr {}", out.confusion.fpr());
        assert!(out.confusion.tpr() < 0.9, "tpr {}", out.confusion.tpr());
    }

    #[test]
    fn warm_policy_flags_similarly_and_actually_warms() {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(1)
            .with_task_range(150, 180)
            .with_checkpoints(15)
            .with_seed(5);
        let job = nurd_trace::generate_job(&cfg, 0);
        let cold_out = replay_job(
            &job,
            &mut GbtrPredictor::default(),
            &ReplayConfig::default(),
        );
        let mut warm = GbtrPredictor::with_policy(
            GbtConfig {
                n_rounds: 50,
                ..GbtConfig::default()
            },
            nurd_core::RefitPolicy::Warm(nurd_core::WarmRefitConfig::default()),
        );
        let warm_out = replay_job(&job, &mut warm, &ReplayConfig::default());
        let stats = warm.refit_stats();
        assert!(stats.warm_fits > 0, "{stats:?}");
        assert!(
            (warm_out.confusion.f1() - cold_out.confusion.f1()).abs() <= 0.25,
            "warm {} vs cold {}",
            warm_out.confusion.f1(),
            cold_out.confusion.f1()
        );
    }

    #[test]
    fn no_predictions_without_training_data() {
        let mut p = GbtrPredictor::default();
        let ckpt = Checkpoint {
            ordinal: 0,
            time: 1.0,
            finished: vec![],
            running: vec![],
        };
        assert!(p.predict(&ckpt).is_empty());
    }
}
