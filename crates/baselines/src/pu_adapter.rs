//! PU-learning adapters: the labeled class is the finished tasks.

use nurd_data::{Checkpoint, OnlinePredictor};
use nurd_pu::{PuBagging, PuEn};

/// PU-EN online: labeled = finished, unlabeled = running; a running task
/// whose corrected finished-class probability falls below 0.5 is flagged.
///
/// As §3.3 of the paper predicts, the "labeled at random" assumption fails
/// here (only *fast* non-stragglers get labeled), so the classifier is
/// over-aggressive early — high TPR, high FPR.
#[derive(Debug, Clone, Default)]
pub struct PuEnPredictor {
    learner: PuEn,
}

impl OnlinePredictor for PuEnPredictor {
    fn name(&self) -> &str {
        "PU-EN"
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        if checkpoint.finished.len() < 2 || checkpoint.running.is_empty() {
            return Vec::new();
        }
        let labeled = checkpoint.finished_features();
        let unlabeled = checkpoint.running_features();
        let Ok(model) = self.learner.fit(&labeled, &unlabeled) else {
            return Vec::new();
        };
        checkpoint
            .running
            .iter()
            .filter(|t| model.positive_probability(t.features) < 0.5)
            .map(|t| t.id)
            .collect()
    }
}

/// PU-BG online: bagged SVMs trained finished-vs-random-unlabeled; a
/// running task with a negative out-of-bag decision score (not
/// finished-like) is flagged.
#[derive(Debug, Clone, Default)]
pub struct PuBaggingPredictor {
    learner: PuBagging,
}

impl OnlinePredictor for PuBaggingPredictor {
    fn name(&self) -> &str {
        "PU-BG"
    }

    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
        if checkpoint.finished.len() < 2 || checkpoint.running.is_empty() {
            return Vec::new();
        }
        let positives = checkpoint.finished_features();
        let unlabeled = checkpoint.running_features();
        let Ok(model) = self.learner.fit(&positives, &unlabeled) else {
            return Vec::new();
        };
        checkpoint
            .running
            .iter()
            .zip(model.oob_scores())
            .filter(|(_, &score)| score < 0.0)
            .map(|(t, _)| t.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_sim::{replay_job, ReplayConfig};
    use nurd_trace::{SuiteConfig, TraceStyle};

    fn job() -> nurd_data::JobTrace {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(1)
            .with_task_range(100, 130)
            .with_checkpoints(12)
            .with_seed(88);
        nurd_trace::generate_job(&cfg, 0)
    }

    #[test]
    fn pu_en_is_aggressive_but_catches_stragglers() {
        let job = job();
        let out = replay_job(
            &job,
            &mut PuEnPredictor::default(),
            &ReplayConfig::default(),
        );
        // The paper's observation: PU learners achieve high TPR at the cost
        // of many false positives.
        assert!(out.confusion.tpr() > 0.5, "tpr {}", out.confusion.tpr());
    }

    #[test]
    fn pu_bg_runs_the_protocol() {
        let job = job();
        let out = replay_job(
            &job,
            &mut PuBaggingPredictor::default(),
            &ReplayConfig::default(),
        );
        assert_eq!(out.confusion.total(), job.task_count());
    }

    #[test]
    fn empty_checkpoints_produce_no_flags() {
        let ckpt = Checkpoint {
            ordinal: 0,
            time: 1.0,
            finished: vec![],
            running: vec![],
        };
        assert!(PuEnPredictor::default().predict(&ckpt).is_empty());
        assert!(PuBaggingPredictor::default().predict(&ckpt).is_empty());
    }
}
