//! Bit-for-bit codec round-trips for every checkpointable ML model.
//!
//! The serving engine's recovery contract is *bit-for-bit* equality with
//! an uninterrupted run, so an encode/decode cycle may not perturb a
//! single prediction bit.

use nurd_codec::{Checkpointable, Decoder, Encoder};
use nurd_linalg::MatrixView;
use nurd_ml::{
    BinnedMatrix, GbtConfig, GradientBoosting, LogisticConfig, LogisticRegression, SquaredLoss,
};

fn roundtrip<T: Checkpointable>(value: &T) -> T {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes);
    let out = T::decode(&mut dec).expect("decode");
    assert!(
        dec.is_empty(),
        "decode must consume exactly what encode wrote"
    );
    out
}

fn training_rows(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![(i % 17) as f64, ((i * 7) % 13) as f64 * 0.5])
        .collect();
    let y: Vec<f64> = x.iter().map(|r| r[0] * 0.3 - r[1] + 1.0).collect();
    (x, y)
}

#[test]
fn gbt_ensemble_predictions_survive_bit_for_bit() {
    let (x, y) = training_rows(120);
    let cfg = GbtConfig {
        n_rounds: 12,
        ..GbtConfig::default()
    };
    let model = GradientBoosting::fit(&x, &y, SquaredLoss, &cfg).unwrap();
    let restored = roundtrip(&model);
    for row in &x {
        assert_eq!(
            model.predict(row).to_bits(),
            restored.predict(row).to_bits(),
            "prediction drifted through the codec"
        );
    }
}

#[test]
fn logistic_regression_probabilities_survive_bit_for_bit() {
    let (x, y) = training_rows(80);
    let labels: Vec<f64> = y.iter().map(|&v| f64::from(v > 2.0)).collect();
    let model = LogisticRegression::fit(&x, &labels, &LogisticConfig::default()).unwrap();
    let restored = roundtrip(&model);
    for row in &x {
        assert_eq!(
            model.predict_proba(row).to_bits(),
            restored.predict_proba(row).to_bits()
        );
    }
}

#[test]
fn binned_matrix_round_trips_structurally_equal() {
    let (x, _) = training_rows(200);
    let binned = BinnedMatrix::build(MatrixView::Rows(&x), 16);
    let restored = roundtrip(&binned);
    assert_eq!(binned, restored);
}

#[test]
fn corrupt_gbt_bytes_yield_typed_errors_not_panics() {
    let (x, y) = training_rows(40);
    let model = GradientBoosting::fit(&x, &y, SquaredLoss, &GbtConfig::default()).unwrap();
    let mut enc = Encoder::new();
    model.encode(&mut enc);
    let bytes = enc.into_bytes();
    // Truncation at every prefix length must error, never panic.
    for cut in 0..bytes.len() {
        let mut dec = Decoder::new(&bytes[..cut]);
        assert!(GradientBoosting::<SquaredLoss>::decode(&mut dec).is_err());
    }
}
