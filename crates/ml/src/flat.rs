//! Structure-of-arrays ensemble layout for the scoring hot path.
//!
//! [`RegressionTree`] stores its nodes as a `Vec` of two-variant enums —
//! perfect for growth, hostile to inference: every traversal step pattern
//! matches a 40-byte node and chases `usize` children through an allocation
//! shared with split metadata the walk never reads. [`FlatForest`] re-lays
//! an entire fitted ensemble into parallel primitive arrays once, so the
//! per-event scoring loop of `nurd-core` touches only what it needs:
//!
//! ```text
//!            node 0   node 1   node 2  …            (all trees, contiguous)
//! feature   [  u32  ][  u32  ][  u32  ]   split feature (0 at leaves)
//! split_bin [  u8   ][  u8   ][  u8   ]   bin-code threshold (MAX at leaves)
//! threshold [  f64  ][  f64  ][  f64  ]   raw threshold (+∞ at leaves)
//! children  [u32 u32][u32 u32][u32 u32]   left/right pairs; leaves self-loop
//! value     [  f64  ][  f64  ][  f64  ]   leaf weight (0 at splits)
//! ```
//!
//! Because every leaf's children point back at the leaf itself, a walk can
//! run a **fixed** number of steps (the tree's depth) with one
//! unconditional indexed load per step — `idx = children[2·idx + go_right]`
//! — and no branch mispredicts on the routing decision. Past its leaf, a
//! short path simply treads water.
//!
//! # Bit-for-bit equivalence
//!
//! Every batch kernel accumulates leaf values *tree by tree, in ensemble
//! order*, exactly as the pointer-tree paths fold them
//! (`trees.iter().map(...).sum::<f64>()` is a left fold from `0.0`), and
//! applies `base_score + learning_rate · Σ` as the final step. Routing
//! compares are the identical expressions (`x <= threshold` on raw
//! features, `code <= split_bin` on bin codes — NaN routes right on both
//! paths). The flat kernels are therefore **bit-identical** to
//! [`RegressionTree::predict`] / [`RegressionTree::predict_binned`] sums,
//! a property pinned by this module's differential proptests and the
//! workspace-level `hot_path_equivalence` suite.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use nurd_linalg::MatrixView;
use nurd_runtime::ThreadPool;

use crate::binned::BinnedMatrix;
use crate::tree::{Node, RegressionTree};

/// Default number of rows the batch kernels walk per tree step
/// ([`FlatForest::set_lanes`]).
pub const DEFAULT_LANES: usize = 4;

/// The lane widths the batch kernels are compiled for.
pub const SUPPORTED_LANES: [usize; 4] = [1, 2, 4, 8];

/// A whole fitted ensemble flattened into contiguous structure-of-arrays
/// node storage (see the module docs for the layout and the equivalence
/// contract).
///
/// Build one with [`crate::GradientBoosting::flatten`] (or
/// [`FlatForest::from_trees`] for raw trees), rebuild it whenever the
/// source ensemble is refit, and score batches through
/// [`FlatForest::predict_binned_batch`] / [`FlatForest::predict_view_into`].
#[derive(Debug)]
pub struct FlatForest {
    /// Split feature per node (`0` at leaves — never routed on, but kept a
    /// valid index so the fixed-depth walk's loads stay in bounds).
    feature: Vec<u32>,
    /// Raw-feature threshold per node (`+∞` at leaves).
    threshold: Vec<f64>,
    /// Bin-code threshold per node (`u8::MAX` at leaves, or everywhere on
    /// ensembles with exact-grown trees — see [`FlatForest::supports_binned`]).
    split_bin: Vec<u8>,
    /// Child pairs: `children[2i]` = left, `children[2i+1]` = right;
    /// leaves store their own index twice (the self-loop).
    children: Vec<u32>,
    /// Leaf weight per node (`0.0` at splits; splits are never read back).
    value: Vec<f64>,
    /// Root node index of each tree.
    roots: Vec<u32>,
    /// Depth of each tree — how many routing steps the fixed walk takes.
    depths: Vec<u32>,
    base_score: f64,
    learning_rate: f64,
    /// Whether every flattened tree carried a bin-code cache.
    binned_capable: bool,
    /// `1 + max split feature index` over all nodes (0 with no splits).
    /// Checked once per row/matrix so the walk itself can elide per-step
    /// bounds checks: every reachable node's `feature` — including the
    /// `0` stored at leaves — indexes below this.
    min_width: u32,
    /// Rows the batch kernels walk per tree step (one of
    /// [`SUPPORTED_LANES`]; see [`FlatForest::set_lanes`]).
    lanes: u32,
    /// Full lane groups processed by the multi-lane kernels — the
    /// counter CI gates observe to prove the lane path actually ran
    /// (the lane-width twin of `NurdPredictor::flat_batches`). Atomic so
    /// pool-parallel scoring can share one forest across threads; the
    /// value is exact (every group is counted once), only its
    /// observation point races.
    lane_chunks: AtomicUsize,
}

impl Default for FlatForest {
    fn default() -> Self {
        FlatForest {
            feature: Vec::new(),
            threshold: Vec::new(),
            split_bin: Vec::new(),
            children: Vec::new(),
            value: Vec::new(),
            roots: Vec::new(),
            depths: Vec::new(),
            base_score: 0.0,
            learning_rate: 0.0,
            binned_capable: false,
            min_width: 0,
            lanes: DEFAULT_LANES as u32,
            lane_chunks: AtomicUsize::new(0),
        }
    }
}

impl Clone for FlatForest {
    fn clone(&self) -> Self {
        FlatForest {
            feature: self.feature.clone(),
            threshold: self.threshold.clone(),
            split_bin: self.split_bin.clone(),
            children: self.children.clone(),
            value: self.value.clone(),
            roots: self.roots.clone(),
            depths: self.depths.clone(),
            base_score: self.base_score,
            learning_rate: self.learning_rate,
            binned_capable: self.binned_capable,
            min_width: self.min_width,
            lanes: self.lanes,
            lane_chunks: AtomicUsize::new(self.lane_chunks.load(Ordering::Relaxed)),
        }
    }
}

impl FlatForest {
    /// An empty forest (predicts `base_score` everywhere). Use
    /// [`FlatForest::push_tree`] to grow it; `clear` + `push_tree` recycle
    /// one instance across boosting rounds without reallocating.
    #[must_use]
    pub fn new(base_score: f64, learning_rate: f64) -> Self {
        FlatForest {
            base_score,
            learning_rate,
            binned_capable: true,
            ..FlatForest::default()
        }
    }

    /// Flattens an ensemble: trees in slice order (the order every
    /// pointer-path sum folds them in).
    #[must_use]
    pub fn from_trees(trees: &[RegressionTree], base_score: f64, learning_rate: f64) -> Self {
        let mut forest = FlatForest::new(base_score, learning_rate);
        for tree in trees {
            forest.push_tree(tree);
        }
        forest
    }

    /// Appends one tree's nodes to the arrays (becoming the new last tree
    /// of the ensemble-order accumulation).
    pub fn push_tree(&mut self, tree: &RegressionTree) {
        let base = self.feature.len();
        let nodes = tree.nodes();
        let bins = tree.split_bins();
        self.binned_capable &= tree.supports_binned_predict();
        self.roots.push(base as u32);
        self.depths.push(tree.depth() as u32);
        self.feature.reserve(nodes.len());
        self.threshold.reserve(nodes.len());
        self.split_bin.reserve(nodes.len());
        self.children.reserve(2 * nodes.len());
        self.value.reserve(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            match node {
                Node::Leaf { weight } => {
                    self.feature.push(0);
                    self.threshold.push(f64::INFINITY);
                    self.split_bin.push(u8::MAX);
                    let own = (base + i) as u32;
                    self.children.push(own);
                    self.children.push(own);
                    self.value.push(*weight);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    self.feature.push(*feature as u32);
                    self.threshold.push(*threshold);
                    self.split_bin.push(bins.get(i).copied().unwrap_or(u8::MAX));
                    self.children.push((base + *left) as u32);
                    self.children.push((base + *right) as u32);
                    self.value.push(0.0);
                    self.min_width = self.min_width.max(*feature as u32 + 1);
                }
            }
        }
    }

    /// Removes every tree while keeping the array capacities (and the
    /// base score / learning rate) — the boosting loop's recycle path.
    pub fn clear(&mut self) {
        self.feature.clear();
        self.threshold.clear();
        self.split_bin.clear();
        self.children.clear();
        self.value.clear();
        self.roots.clear();
        self.depths.clear();
        self.binned_capable = true;
        self.min_width = 0;
    }

    /// Number of flattened trees.
    #[must_use]
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all trees.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.feature.len()
    }

    /// The constant initial score `f₀` applied by the prediction kernels.
    #[must_use]
    pub fn base_score(&self) -> f64 {
        self.base_score
    }

    /// The shrinkage applied to the accumulated leaf sum.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Whether the binned kernels are available (every flattened tree was
    /// histogram-grown and carries its bin-code cache).
    #[must_use]
    pub fn supports_binned(&self) -> bool {
        self.binned_capable
    }

    /// Rows the batch kernels walk per tree step.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes as usize
    }

    /// Sets the lane width: how many rows each batch kernel interleaves
    /// per tree step. The per-row accumulation order is identical at
    /// every width, so scores are **bit-identical** across lane widths —
    /// this knob trades only instruction-level parallelism (wider = more
    /// independent load chains in flight, more register pressure).
    ///
    /// # Panics
    ///
    /// Panics unless `lanes` is one of [`SUPPORTED_LANES`].
    pub fn set_lanes(&mut self, lanes: usize) {
        assert!(
            SUPPORTED_LANES.contains(&lanes),
            "unsupported lane width {lanes}: the kernels are compiled for {SUPPORTED_LANES:?}"
        );
        self.lanes = lanes as u32;
    }

    /// Builder-style [`FlatForest::set_lanes`].
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.set_lanes(lanes);
        self
    }

    /// How many full lane groups the multi-lane kernels have processed
    /// (0 whenever `lanes == 1` or every batch was narrower than the
    /// lane width) — the observable CI gates use to prove the lane path
    /// ran.
    #[must_use]
    pub fn lane_chunks(&self) -> usize {
        self.lane_chunks.load(Ordering::Relaxed)
    }

    /// Ensemble score for a single raw-feature sample — bit-identical to
    /// the pointer path `base + lr · Σ_t tree_t.predict(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `features` is narrower than a split feature index.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (t, &root) in self.roots.iter().enumerate() {
            let mut idx = root as usize;
            for _ in 0..self.depths[t] {
                // NaN fails the compare and routes right, as on all paths.
                let go_left = features[self.feature[idx] as usize] <= self.threshold[idx];
                idx = self.children[2 * idx + 1 - usize::from(go_left)] as usize;
            }
            acc += self.value[idx];
        }
        self.base_score + self.learning_rate * acc
    }

    /// Scores every row of a matrix view into `out` (cleared and refilled
    /// — the reusable-buffer twin of `predict_view`). Bit-identical to
    /// [`crate::GradientBoosting::predict_view`] on the source ensemble.
    ///
    /// # Panics
    ///
    /// Panics if the view is narrower than a split feature index.
    pub fn predict_view_into(&self, xs: MatrixView<'_>, out: &mut Vec<f64>) {
        out.clear();
        out.resize(xs.rows(), 0.0);
        self.score_chunk(xs, out);
    }

    /// Allocating convenience wrapper over [`FlatForest::predict_view_into`].
    #[must_use]
    pub fn predict_view(&self, xs: MatrixView<'_>) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_view_into(xs, &mut out);
        out
    }

    /// Pool-parallel twin of [`FlatForest::predict_view_into`]: splits
    /// the batch into at most `max_chunks` contiguous, lane-aligned
    /// chunks and scores them concurrently on `pool` (the calling thread
    /// participates).
    ///
    /// **Bit-identical at any thread count**: every row's score is a
    /// function of that row alone (accumulated from 0.0 in ensemble
    /// order by whichever worker owns its chunk), chunk boundaries
    /// depend only on `(rows, max_chunks, lane width)` — never on
    /// scheduling — and each chunk writes its own disjoint output
    /// slice. Chunk sizes are rounded up to a lane multiple so only the
    /// final chunk runs remainder rows through the scalar kernel.
    ///
    /// Falls back to the sequential path on a single-thread pool, with
    /// `max_chunks <= 1`, when the batch is smaller than one chunk, or
    /// for column-major views (no cheap contiguous row sub-slicing; the
    /// serving hot path is row-major).
    ///
    /// # Panics
    ///
    /// Panics if the view is narrower than a split feature index.
    pub fn predict_view_into_pooled(
        &self,
        xs: MatrixView<'_>,
        pool: &ThreadPool,
        max_chunks: usize,
        out: &mut Vec<f64>,
    ) {
        let rows = xs.rows();
        out.clear();
        out.resize(rows, 0.0);
        if rows == 0 {
            return;
        }
        // ceil(rows / chunks), rounded up to a lane multiple.
        let lanes = (self.lanes as usize).max(1);
        let per = rows.div_ceil(max_chunks.max(1)).div_ceil(lanes) * lanes;
        if pool.threads() <= 1 || per >= rows {
            self.score_chunk(xs, out);
            return;
        }
        match xs {
            MatrixView::Rows(r) => pool.scope(|s| {
                for (ci, chunk) in out.chunks_mut(per).enumerate() {
                    let sub = &r[ci * per..ci * per + chunk.len()];
                    s.spawn(move || self.score_chunk(MatrixView::Rows(sub), chunk));
                }
            }),
            MatrixView::RowSlices(r) => pool.scope(|s| {
                for (ci, chunk) in out.chunks_mut(per).enumerate() {
                    let sub = &r[ci * per..ci * per + chunk.len()];
                    s.spawn(move || self.score_chunk(MatrixView::RowSlices(sub), chunk));
                }
            }),
            columns => self.score_chunk(columns, out),
        }
    }

    /// Scores one contiguous chunk in place: accumulate from zero, then
    /// apply `base + lr · Σ` — the unit of work `predict_view_into`
    /// runs once and `predict_view_into_pooled` fans out.
    fn score_chunk(&self, xs: MatrixView<'_>, out: &mut [f64]) {
        self.accumulate_view(xs, 1.0, out);
        for v in out.iter_mut() {
            *v = self.base_score + self.learning_rate * *v;
        }
    }

    /// Scores the half-open row range `rows` of a binned matrix, appending
    /// one score per row to `out` — the warm-start suffix-replay kernel.
    /// Bit-identical to `base + lr · Σ_t tree_t.predict_binned(row)` per
    /// row.
    ///
    /// # Panics
    ///
    /// Panics when the forest contains exact-grown trees (no bin-code
    /// cache; see [`FlatForest::supports_binned`]) or `rows` exceeds the
    /// matrix.
    pub fn predict_binned_extend(
        &self,
        binned: &BinnedMatrix,
        rows: Range<usize>,
        out: &mut Vec<f64>,
    ) {
        let start = out.len();
        out.resize(start + rows.len(), 0.0);
        let acc = &mut out[start..];
        self.accumulate_binned_from(binned, rows.start, 1.0, acc);
        for v in acc.iter_mut() {
            *v = self.base_score + self.learning_rate * *v;
        }
    }

    /// Batch ensemble scores for the row range `rows` of a binned matrix —
    /// the whole-barrier scoring entry point. Allocating wrapper over
    /// [`FlatForest::predict_binned_extend`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`FlatForest::predict_binned_extend`].
    #[must_use]
    pub fn predict_binned_batch(&self, binned: &BinnedMatrix, rows: Range<usize>) -> Vec<f64> {
        let mut out = Vec::with_capacity(rows.len());
        self.predict_binned_extend(binned, rows, &mut out);
        out
    }

    /// `scores[i] += scale · leaf_t(row i)` for every tree `t` in ensemble
    /// order, over rows `0..scores.len()` of the binned matrix — the
    /// boosting-round score-update kernel (one freshly fit tree, `scale` =
    /// learning rate). `base_score`/`learning_rate` are **not** applied.
    ///
    /// # Panics
    ///
    /// Same conditions as [`FlatForest::predict_binned_extend`].
    pub fn accumulate_binned(&self, binned: &BinnedMatrix, scale: f64, scores: &mut [f64]) {
        self.accumulate_binned_from(binned, 0, scale, scores);
    }

    /// `scores[i] += scale · leaf_t(row i)` for every tree in ensemble
    /// order, reading raw features from the view — the exact-growth twin
    /// of [`FlatForest::accumulate_binned`].
    pub fn accumulate_view(&self, xs: MatrixView<'_>, scale: f64, scores: &mut [f64]) {
        // Row-major views get a monomorphized kernel with the row slice
        // hoisted out of the walk; the (cold-path) column-major view
        // falls back to per-cell access.
        match xs {
            MatrixView::Rows(rows) => self.accumulate_rows(|i| rows[i].as_slice(), scale, scores),
            MatrixView::RowSlices(rows) => self.accumulate_rows(|i| rows[i], scale, scores),
            columns => {
                for (t, &root) in self.roots.iter().enumerate() {
                    let root = root as usize;
                    let depth = self.depths[t];
                    if depth == 0 {
                        let w = scale * self.value[root];
                        for s in scores.iter_mut() {
                            *s += w;
                        }
                        continue;
                    }
                    for (row, s) in scores.iter_mut().enumerate() {
                        let mut idx = root;
                        for _ in 0..depth {
                            let x = columns.get(row, self.feature[idx] as usize);
                            let go_left = x <= self.threshold[idx];
                            idx = self.children[2 * idx + 1 - usize::from(go_left)] as usize;
                        }
                        *s += scale * self.value[idx];
                    }
                }
            }
        }
    }

    /// Raw-feature batch walker: dispatches to the lane kernel compiled
    /// for this forest's lane width (remainder rows and `lanes == 1`
    /// take the scalar kernel). The per-row accumulation order is the
    /// same on every path, so the choice is invisible in the output.
    fn accumulate_rows<'a>(
        &self,
        row: impl Fn(usize) -> &'a [f64],
        scale: f64,
        scores: &mut [f64],
    ) {
        match self.lanes {
            8 => self.accumulate_rows_lanes::<8>(&row, scale, scores),
            4 => self.accumulate_rows_lanes::<4>(&row, scale, scores),
            2 => self.accumulate_rows_lanes::<2>(&row, scale, scores),
            _ => self.accumulate_rows_scalar(&row, scale, scores),
        }
    }

    /// Multi-row interleaved raw-feature walker: full groups of `L`
    /// consecutive rows descend every tree *together*, one step per row
    /// per iteration, as `L` independent dependency chains
    /// (`[usize; L]` cursors) the CPU can overlap — the walk is latency-
    /// bound on dependent loads, so interleaving is where the speedup
    /// comes from. Each lane keeps its own `f64` accumulator and adds
    /// leaf values in ensemble order, exactly like the scalar kernel, so
    /// outputs are **bit-identical** at every lane width. The trailing
    /// `scores.len() % L` rows run through the scalar kernel.
    fn accumulate_rows_lanes<'a, const L: usize>(
        &self,
        row: &impl Fn(usize) -> &'a [f64],
        scale: f64,
        scores: &mut [f64],
    ) {
        /// One fixed-depth descent of all `L` lanes, no per-step bounds
        /// checks. The per-step loop over lanes is a compile-time-sized
        /// array walk the compiler unrolls (and, on the branchless
        /// child-select, can auto-vectorize).
        ///
        /// # Safety
        ///
        /// Every `feats[l].len() >= forest.min_width`, and every
        /// `idx[l]` must be one of `forest.roots` (then each step stays
        /// on indices `push_tree` wrote: `children` entries and roots
        /// are valid node indices, and every reachable node's `feature`
        /// — `0` at self-looping leaves — is below `min_width`).
        #[inline(always)]
        unsafe fn walk<const L: usize>(
            forest: &FlatForest,
            feats: &[&[f64]; L],
            idx: &mut [usize; L],
            depth: usize,
        ) {
            for _ in 0..depth {
                for l in 0..L {
                    // SAFETY: the caller's contract above.
                    unsafe {
                        let i = idx[l];
                        let x = *feats[l].get_unchecked(*forest.feature.get_unchecked(i) as usize);
                        let go_left = x <= *forest.threshold.get_unchecked(i);
                        idx[l] = *forest
                            .children
                            .get_unchecked(2 * i + 1 - usize::from(go_left))
                            as usize;
                    }
                }
            }
        }
        let min_width = self.min_width as usize;
        let value = self.value.as_slice();
        let full = scores.len() / L;
        for g in 0..full {
            let base = g * L;
            let feats: [&[f64]; L] = std::array::from_fn(|l| row(base + l));
            for (l, f) in feats.iter().enumerate() {
                assert!(
                    f.len() >= min_width,
                    "row {} is narrower ({}) than the forest's split features ({min_width})",
                    base + l,
                    f.len()
                );
            }
            let mut acc: [f64; L] = std::array::from_fn(|l| scores[base + l]);
            for (t, &root) in self.roots.iter().enumerate() {
                let mut idx = [root as usize; L];
                let depth = self.depths[t] as usize;
                // SAFETY: row widths were checked against `min_width`
                // above; `root`/`depth` come from this forest's tables.
                unsafe {
                    match depth {
                        0 => {}
                        1 => walk(self, &feats, &mut idx, 1),
                        2 => walk(self, &feats, &mut idx, 2),
                        3 => walk(self, &feats, &mut idx, 3),
                        4 => walk(self, &feats, &mut idx, 4),
                        d => walk(self, &feats, &mut idx, d),
                    }
                }
                // Per lane: one addition per tree, ensemble order — the
                // identical FP sequence the scalar kernel performs.
                for l in 0..L {
                    acc[l] += scale * value[idx[l]];
                }
            }
            scores[base..base + L].copy_from_slice(&acc);
        }
        if full > 0 {
            self.lane_chunks.fetch_add(full, Ordering::Relaxed);
        }
        let done = full * L;
        if done < scores.len() {
            self.accumulate_rows_scalar(&|i| row(done + i), scale, &mut scores[done..]);
        }
    }

    /// Single-row (scalar) raw-feature walker — the `lanes == 1` kernel
    /// and the remainder path of the lane kernels. The row-fetch closure
    /// is monomorphized per view variant, so the inner loop is pure
    /// indexed loads plus one branchless select per step. The walk is
    /// dispatched on the tree's depth so the common shallow depths get a
    /// fully unrolled step sequence.
    fn accumulate_rows_scalar<'a>(
        &self,
        row: &impl Fn(usize) -> &'a [f64],
        scale: f64,
        scores: &mut [f64],
    ) {
        /// One fixed-depth descent, no per-step bounds checks.
        ///
        /// # Safety
        ///
        /// `features.len() >= forest.min_width`, and `root` must be one of
        /// `forest.roots` (then every step stays on indices `push_tree`
        /// wrote: `children` entries and roots are valid node indices, and
        /// every reachable node's `feature` — `0` at self-looping leaves —
        /// is below `min_width`).
        #[inline(always)]
        unsafe fn walk(forest: &FlatForest, features: &[f64], root: usize, depth: usize) -> usize {
            let mut idx = root;
            for _ in 0..depth {
                // SAFETY: the caller's contract above.
                unsafe {
                    let x = *features.get_unchecked(*forest.feature.get_unchecked(idx) as usize);
                    let go_left = x <= *forest.threshold.get_unchecked(idx);
                    idx = *forest
                        .children
                        .get_unchecked(2 * idx + 1 - usize::from(go_left))
                        as usize;
                }
            }
            idx
        }
        let min_width = self.min_width as usize;
        let value = self.value.as_slice();
        // Row-outer: the row slice and the running sum live in registers
        // across the whole ensemble (one score store per row instead of
        // one read-modify-write per tree), and the per-row tree walks are
        // independent load chains the CPU overlaps. The addition sequence
        // per score element is unchanged from tree-outer (tree order), so
        // the result is bit-identical. The depth match makes the common
        // shallow walks fully unrolled fixed-trip sequences.
        for (i, s) in scores.iter_mut().enumerate() {
            let features = row(i);
            assert!(
                features.len() >= min_width,
                "row {i} is narrower ({}) than the forest's split features ({min_width})",
                features.len()
            );
            let mut acc = *s;
            for (t, &root) in self.roots.iter().enumerate() {
                let root = root as usize;
                // SAFETY: the row width was checked against `min_width`
                // above; `root`/`depth` come from this forest's tables.
                let idx = unsafe {
                    match self.depths[t] as usize {
                        0 => root,
                        1 => walk(self, features, root, 1),
                        2 => walk(self, features, root, 2),
                        3 => walk(self, features, root, 3),
                        4 => walk(self, features, root, 4),
                        d => walk(self, features, root, d),
                    }
                };
                acc += scale * value[idx];
            }
            *s = acc;
        }
    }

    /// The shared binned walker: `scores[j] += scale · leaf(first_row + j)`
    /// per tree, ensemble order.
    fn accumulate_binned_from(
        &self,
        binned: &BinnedMatrix,
        first_row: usize,
        scale: f64,
        scores: &mut [f64],
    ) {
        assert!(
            self.binned_capable,
            "binned kernels require histogram-grown trees (bin-code cache)"
        );
        assert!(
            first_row + scores.len() <= binned.rows(),
            "row range {}..{} out of bounds for {} matrix rows",
            first_row,
            first_row + scores.len(),
            binned.rows()
        );
        if scores.is_empty() {
            return;
        }
        // One slice per feature, hoisted out of the walk so the inner loop
        // is pure indexed loads (the only allocation in this kernel, a few
        // machine words per feature).
        let cols: Vec<&[u8]> = (0..binned.features()).map(|f| binned.codes(f)).collect();
        assert!(
            cols.len() >= self.min_width as usize,
            "binned matrix is narrower ({}) than the forest's split features ({})",
            cols.len(),
            self.min_width
        );
        assert!(
            cols.iter().all(|c| c.len() == binned.rows()),
            "every bin-code column must span all {} rows",
            binned.rows()
        );
        // Safety preconditions for both kernels below are established by
        // the asserts above: `cols.len() >= min_width`, every column
        // spans all rows, and `first_row + scores.len() <= rows`.
        match self.lanes {
            8 => self.accumulate_binned_lanes::<8>(&cols, first_row, scale, scores),
            4 => self.accumulate_binned_lanes::<4>(&cols, first_row, scale, scores),
            2 => self.accumulate_binned_lanes::<2>(&cols, first_row, scale, scores),
            _ => self.accumulate_binned_scalar(&cols, first_row, scale, scores),
        }
    }

    /// Multi-row interleaved binned walker: the bin-code twin of
    /// [`FlatForest::accumulate_rows_lanes`] — `L` consecutive rows
    /// descend each tree together as independent cursor chains, each
    /// lane accumulating in ensemble order (bit-identical to the scalar
    /// kernel), remainder rows falling back to it.
    ///
    /// Caller (`accumulate_binned_from`) has already validated `cols`
    /// against `min_width` and the row range against the matrix.
    fn accumulate_binned_lanes<const L: usize>(
        &self,
        cols: &[&[u8]],
        first_row: usize,
        scale: f64,
        scores: &mut [f64],
    ) {
        /// One fixed-depth descent of all `L` lanes (rows
        /// `row0 .. row0 + L`), no per-step bounds checks.
        ///
        /// # Safety
        ///
        /// `cols.len() >= forest.min_width` with every column at least
        /// `row0 + L` long, and every `idx[l]` must start at one of
        /// `forest.roots` (then each step stays on indices `push_tree`
        /// wrote; see [`FlatForest::accumulate_rows_lanes`]).
        #[inline(always)]
        unsafe fn walk<const L: usize>(
            forest: &FlatForest,
            cols: &[&[u8]],
            row0: usize,
            idx: &mut [usize; L],
            depth: usize,
        ) {
            for _ in 0..depth {
                for (l, ix) in idx.iter_mut().enumerate() {
                    // SAFETY: the caller's contract above.
                    unsafe {
                        let i = *ix;
                        let code = *cols
                            .get_unchecked(*forest.feature.get_unchecked(i) as usize)
                            .get_unchecked(row0 + l);
                        let go_right = code > *forest.split_bin.get_unchecked(i);
                        *ix =
                            *forest.children.get_unchecked(2 * i + usize::from(go_right)) as usize;
                    }
                }
            }
        }
        let value = self.value.as_slice();
        let full = scores.len() / L;
        for g in 0..full {
            let base = g * L;
            let row0 = first_row + base;
            let mut acc: [f64; L] = std::array::from_fn(|l| scores[base + l]);
            for (t, &root) in self.roots.iter().enumerate() {
                let mut idx = [root as usize; L];
                let depth = self.depths[t] as usize;
                // SAFETY: the caller validated widths and the row range;
                // `root`/`depth` come from this forest's tables.
                unsafe {
                    match depth {
                        0 => {}
                        1 => walk(self, cols, row0, &mut idx, 1),
                        2 => walk(self, cols, row0, &mut idx, 2),
                        3 => walk(self, cols, row0, &mut idx, 3),
                        4 => walk(self, cols, row0, &mut idx, 4),
                        d => walk(self, cols, row0, &mut idx, d),
                    }
                }
                for l in 0..L {
                    acc[l] += scale * value[idx[l]];
                }
            }
            scores[base..base + L].copy_from_slice(&acc);
        }
        if full > 0 {
            self.lane_chunks.fetch_add(full, Ordering::Relaxed);
        }
        let done = full * L;
        if done < scores.len() {
            self.accumulate_binned_scalar(cols, first_row + done, scale, &mut scores[done..]);
        }
    }

    /// Single-row binned walker — the `lanes == 1` kernel and the
    /// remainder path of [`FlatForest::accumulate_binned_lanes`].
    ///
    /// Caller (`accumulate_binned_from`) has already validated `cols`
    /// against `min_width` and the row range against the matrix.
    fn accumulate_binned_scalar(
        &self,
        cols: &[&[u8]],
        first_row: usize,
        scale: f64,
        scores: &mut [f64],
    ) {
        /// One fixed-depth descent, no per-step bounds checks.
        ///
        /// # Safety
        ///
        /// `cols.len() >= forest.min_width` with every column at least
        /// `row + 1` long, and `root` must be one of `forest.roots` (then
        /// every step stays on indices `push_tree` wrote: `children`
        /// entries and roots are valid node indices, and every reachable
        /// node's `feature` — `0` at self-looping leaves — is below
        /// `min_width`).
        #[inline(always)]
        unsafe fn walk(
            forest: &FlatForest,
            cols: &[&[u8]],
            row: usize,
            root: usize,
            depth: usize,
        ) -> usize {
            let mut idx = root;
            for _ in 0..depth {
                // SAFETY: the caller's contract above.
                unsafe {
                    let code = *cols
                        .get_unchecked(*forest.feature.get_unchecked(idx) as usize)
                        .get_unchecked(row);
                    let go_right = code > *forest.split_bin.get_unchecked(idx);
                    idx = *forest
                        .children
                        .get_unchecked(2 * idx + usize::from(go_right))
                        as usize;
                }
            }
            idx
        }
        let value = self.value.as_slice();
        // Row-outer with a register accumulator, same shape (and the same
        // bit-identity argument) as the raw-feature walker above.
        for (j, s) in scores.iter_mut().enumerate() {
            let row = first_row + j;
            let mut acc = *s;
            for (t, &root) in self.roots.iter().enumerate() {
                let root = root as usize;
                // SAFETY: the matrix width was checked against `min_width`
                // and every column's length against `binned.rows()` by the
                // caller (`row < binned.rows()` by its range assert);
                // `root` and `depth` come from this forest's tables.
                let idx = unsafe {
                    match self.depths[t] as usize {
                        0 => root,
                        1 => walk(self, cols, row, root, 1),
                        2 => walk(self, cols, row, root, 2),
                        3 => walk(self, cols, row, root, 3),
                        4 => walk(self, cols, row, root, 4),
                        d => walk(self, cols, row, root, d),
                    }
                };
                acc += scale * value[idx];
            }
            *s = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GbtConfig, GradientBoosting, SquaredLoss, TreeConfig, TreeGrowth};
    use proptest::prelude::*;

    /// Deterministic pseudo-random rows with mild structure (and exact
    /// duplicates, exercising shared bin codes).
    fn rows(n: usize, d: usize, salt: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..d)
                    .map(|c| {
                        let h = (i as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((c as u64) << 7)
                            .wrapping_add(salt);
                        ((h >> 33) % 97) as f64 / 9.7 - 5.0
                    })
                    .collect()
            })
            .collect()
    }

    fn targets(x: &[Vec<f64>]) -> Vec<f64> {
        x.iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(c, v)| (c as f64 + 1.0) * v)
                    .sum()
            })
            .collect()
    }

    /// A shared pool for the pooled-scoring tests (spawning threads per
    /// proptest case would dominate the suite's runtime).
    fn test_pool() -> &'static ThreadPool {
        use std::sync::OnceLock;
        static POOL: OnceLock<ThreadPool> = OnceLock::new();
        POOL.get_or_init(|| ThreadPool::new(3))
    }

    #[test]
    fn lane_widths_are_bit_identical_and_counter_observable() {
        // 37 rows: indivisible by every lane width, so each kernel runs
        // full groups *and* a scalar remainder.
        let x = rows(37, 3, 23);
        let y = targets(&x);
        let cfg = GbtConfig {
            n_rounds: 12,
            ..GbtConfig::default()
        };
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let model = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        let scalar = model.flatten().with_lanes(1);
        let raw1 = scalar.predict_view(MatrixView::Rows(&x));
        let bin1 = scalar.predict_binned_batch(&binned, 0..x.len());
        assert_eq!(scalar.lane_chunks(), 0, "lanes == 1 never counts groups");
        for lanes in [2usize, 4, 8] {
            let flat = model.flatten().with_lanes(lanes);
            assert_eq!(flat.lanes(), lanes);
            assert_eq!(
                flat.predict_view(MatrixView::Rows(&x)),
                raw1,
                "raw kernel at {lanes} lanes"
            );
            assert_eq!(
                flat.predict_binned_batch(&binned, 0..x.len()),
                bin1,
                "binned kernel at {lanes} lanes"
            );
            // One full-group count per kernel invocation (raw + binned).
            assert_eq!(flat.lane_chunks(), 2 * (x.len() / lanes));
        }
    }

    #[test]
    fn lane_kernels_handle_tiny_batches() {
        // Batches narrower than the lane width must run entirely on the
        // scalar remainder path, bit-identically.
        let x = rows(20, 2, 29);
        let y = targets(&x);
        let cfg = GbtConfig {
            n_rounds: 6,
            ..GbtConfig::default()
        };
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let model = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        let flat = model.flatten().with_lanes(8);
        for n in 0..8usize {
            assert_eq!(
                flat.predict_view(MatrixView::Rows(&x[..n])),
                model.predict_view(MatrixView::Rows(&x[..n])),
                "batch of {n} rows"
            );
        }
        assert_eq!(flat.lane_chunks(), 0, "no full group ever formed");
    }

    #[test]
    #[should_panic(expected = "unsupported lane width")]
    fn set_lanes_rejects_unsupported_widths() {
        FlatForest::new(0.0, 0.1).set_lanes(3);
    }

    #[test]
    fn pooled_scoring_is_bit_identical_at_any_chunking() {
        let x = rows(101, 3, 31);
        let y = targets(&x);
        let cfg = GbtConfig {
            n_rounds: 15,
            ..GbtConfig::default()
        };
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let model = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        let slices: Vec<&[f64]> = x.iter().map(Vec::as_slice).collect();
        for lanes in SUPPORTED_LANES {
            let flat = model.flatten().with_lanes(lanes);
            let sequential = flat.predict_view(MatrixView::Rows(&x));
            for pool in [&ThreadPool::new(1), test_pool()] {
                for max_chunks in [0usize, 1, 2, 5, 64, 1000] {
                    let mut out = vec![-7.0; 3]; // dirty buffer must be replaced
                    flat.predict_view_into_pooled(MatrixView::Rows(&x), pool, max_chunks, &mut out);
                    assert_eq!(
                        out,
                        sequential,
                        "lanes {lanes}, {} threads, {max_chunks} chunks",
                        pool.threads()
                    );
                    flat.predict_view_into_pooled(
                        MatrixView::RowSlices(&slices),
                        pool,
                        max_chunks,
                        &mut out,
                    );
                    assert_eq!(out, sequential, "row-slice view, lanes {lanes}");
                }
            }
        }
        // Empty batches are fine too.
        let flat = model.flatten();
        let mut out = vec![1.0];
        flat.predict_view_into_pooled(MatrixView::Rows(&x[..0]), test_pool(), 4, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_forest_predicts_base_score() {
        let forest = FlatForest::new(2.5, 0.3);
        assert_eq!(forest.predict(&[1.0, 2.0]), 2.5);
        assert_eq!(forest.tree_count(), 0);
        assert!(forest.supports_binned());
        let x = rows(4, 2, 1);
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), 16);
        assert_eq!(forest.predict_binned_batch(&binned, 0..4), vec![2.5; 4]);
    }

    #[test]
    fn flatten_matches_pointer_paths_bit_for_bit() {
        let x = rows(120, 3, 7);
        let y = targets(&x);
        let cfg = GbtConfig {
            n_rounds: 25,
            ..GbtConfig::default()
        };
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let model = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        let flat = model.flatten();
        assert_eq!(flat.tree_count(), model.tree_count());
        let batch = flat.predict_binned_batch(&binned, 0..x.len());
        for (i, row) in x.iter().enumerate() {
            assert_eq!(flat.predict(row), model.predict(row), "raw row {i}");
            assert_eq!(batch[i], model.predict(row), "binned row {i}");
        }
        assert_eq!(
            flat.predict_view(MatrixView::Rows(&x)),
            model.predict_view(MatrixView::Rows(&x))
        );
    }

    #[test]
    fn exact_grown_forest_supports_raw_but_not_binned() {
        let x = rows(40, 2, 3);
        let y = targets(&x);
        let cfg = GbtConfig {
            n_rounds: 5,
            tree: TreeConfig {
                growth: TreeGrowth::Exact,
                ..TreeConfig::default()
            },
            ..GbtConfig::default()
        };
        let model = GradientBoosting::fit(&x, &y, SquaredLoss, &cfg).unwrap();
        let flat = model.flatten();
        assert!(!flat.supports_binned());
        for row in &x {
            assert_eq!(flat.predict(row), model.predict(row));
        }
    }

    #[test]
    #[should_panic(expected = "binned kernels require histogram-grown trees")]
    fn binned_kernel_rejects_exact_grown_trees() {
        let x = rows(30, 2, 9);
        let y = targets(&x);
        let cfg = GbtConfig {
            n_rounds: 3,
            tree: TreeConfig {
                growth: TreeGrowth::Exact,
                ..TreeConfig::default()
            },
            ..GbtConfig::default()
        };
        let model = GradientBoosting::fit(&x, &y, SquaredLoss, &cfg).unwrap();
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), 256);
        let _ = model.flatten().predict_binned_batch(&binned, 0..x.len());
    }

    #[test]
    fn leaf_only_trees_walk_zero_steps() {
        // min_split_gain so high no split survives: every tree is a single
        // leaf (the "max-depth leaf-only" edge case — depth 0, the fixed
        // walk must not touch features at all).
        let x = rows(25, 2, 11);
        let y = targets(&x);
        let cfg = GbtConfig {
            n_rounds: 4,
            tree: TreeConfig {
                min_split_gain: f64::INFINITY,
                ..TreeConfig::default()
            },
            ..GbtConfig::default()
        };
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let model = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        let flat = model.flatten();
        let batch = flat.predict_binned_batch(&binned, 0..x.len());
        for (i, row) in x.iter().enumerate() {
            assert_eq!(batch[i], model.predict(row));
            // Features can be anything for a leaf-only ensemble — even empty.
            assert_eq!(flat.predict(&[]), model.predict(row));
        }
    }

    #[test]
    fn single_bin_features_route_identically() {
        // Constant columns collapse to a single bin; splits on them are
        // impossible, but the walk must still be in-bounds and identical.
        let mut x = rows(30, 3, 13);
        for row in &mut x {
            row[1] = 4.2;
        }
        let y = targets(&x);
        let cfg = GbtConfig {
            n_rounds: 8,
            ..GbtConfig::default()
        };
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let model = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        let flat = model.flatten();
        let batch = flat.predict_binned_batch(&binned, 0..x.len());
        for (i, row) in x.iter().enumerate() {
            assert_eq!(batch[i], model.predict(row));
        }
    }

    #[test]
    fn subranges_and_extend_agree_with_full_batch() {
        let x = rows(60, 2, 17);
        let y = targets(&x);
        let cfg = GbtConfig {
            n_rounds: 10,
            ..GbtConfig::default()
        };
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let model = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        let flat = model.flatten();
        let full = flat.predict_binned_batch(&binned, 0..60);
        assert_eq!(flat.predict_binned_batch(&binned, 20..45), full[20..45]);
        assert_eq!(flat.predict_binned_batch(&binned, 7..7), Vec::<f64>::new());
        let mut out = vec![-1.0; 3];
        flat.predict_binned_extend(&binned, 10..20, &mut out);
        assert_eq!(out[..3], [-1.0; 3], "extend must not clobber the prefix");
        assert_eq!(out[3..], full[10..20]);
    }

    #[test]
    fn clear_and_push_recycle_matches_fresh_build() {
        let x = rows(50, 2, 19);
        let y = targets(&x);
        let cfg = GbtConfig {
            n_rounds: 6,
            ..GbtConfig::default()
        };
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let model = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        let fresh = model.flatten();
        let mut recycled = FlatForest::new(model.base_score(), model.learning_rate());
        // Dirty it first, then recycle — the boosting loop's usage pattern.
        recycled.push_tree(&model.trees()[0]);
        recycled.clear();
        for tree in model.trees() {
            recycled.push_tree(tree);
        }
        assert_eq!(
            recycled.predict_binned_batch(&binned, 0..x.len()),
            fresh.predict_binned_batch(&binned, 0..x.len())
        );
    }

    proptest! {
        /// Differential property (satellite 1): across random data shapes,
        /// depths, thread hints, and subtraction settings, the flat batch
        /// kernel, the per-tree binned walk, and the exact-mode raw walk
        /// agree bit-for-bit on the training matrix.
        #[test]
        fn prop_flat_equals_pointer_paths(
            n in 12usize..70,
            d in 1usize..4,
            depth in 1usize..6,
            rounds in 1usize..14,
            max_bins in 2usize..32,
            threads in 1usize..3,
            subtraction_bit in 0u8..2,
            salt in 0u64..1000,
        ) {
            let subtraction = subtraction_bit == 1;
            let x = rows(n, d, salt);
            let y = targets(&x);
            let cfg = GbtConfig {
                n_rounds: rounds,
                tree: TreeConfig {
                    max_depth: depth,
                    max_bins,
                    hist_subtraction: subtraction,
                    n_threads: threads,
                    ..TreeConfig::default()
                },
                ..GbtConfig::default()
            };
            let binned = BinnedMatrix::build_for(MatrixView::Rows(&x), &cfg.tree);
            let model = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
            let flat = model.flatten();
            let batch = flat.predict_binned_batch(&binned, 0..n);
            for (i, row) in x.iter().enumerate() {
                prop_assert_eq!(batch[i], model.predict(row), "row {}", i);
                prop_assert_eq!(flat.predict(row), model.predict(row), "raw row {}", i);
            }
            // Every lane width (n is arbitrary, so remainder rows are
            // covered) and the pooled path agree bit-for-bit with the
            // pointer-equal batch above.
            let pointer_view = model.predict_view(MatrixView::Rows(&x));
            for lanes in SUPPORTED_LANES {
                let lf = flat.clone().with_lanes(lanes);
                prop_assert_eq!(
                    lf.predict_view(MatrixView::Rows(&x)),
                    pointer_view.clone(),
                    "raw kernel, {} lanes",
                    lanes
                );
                prop_assert_eq!(
                    lf.predict_binned_batch(&binned, 0..n),
                    batch.clone(),
                    "binned kernel, {} lanes",
                    lanes
                );
                let mut pooled = Vec::new();
                lf.predict_view_into_pooled(
                    MatrixView::Rows(&x),
                    test_pool(),
                    3,
                    &mut pooled,
                );
                prop_assert_eq!(pooled, pointer_view.clone(), "pooled, {} lanes", lanes);
            }
        }

        /// Differential property across a warm-start append: the rebuilt
        /// flat forest stays bit-identical to the grown pointer ensemble,
        /// on both the original prefix and the appended suffix.
        #[test]
        fn prop_flat_survives_warm_start_rebuild(
            n in 30usize..80,
            extra in 2usize..12,
            salt in 0u64..500,
        ) {
            let x = rows(n, 2, salt);
            let y = targets(&x);
            let split = n * 2 / 3;
            let cfg = GbtConfig { n_rounds: 8, ..GbtConfig::default() };
            let mut binned = BinnedMatrix::build(MatrixView::Rows(&x[..split]), cfg.tree.max_bins);
            let prev =
                GradientBoosting::fit_binned(&binned, &y[..split], SquaredLoss, &cfg).unwrap();
            binned.append_from(MatrixView::Rows(&x));
            let grown =
                GradientBoosting::warm_start(&prev, &binned, &y, extra, &cfg).unwrap();
            let flat = grown.flatten();
            prop_assert_eq!(flat.tree_count(), grown.tree_count());
            let batch = flat.predict_binned_batch(&binned, 0..n);
            for (i, row) in x.iter().enumerate() {
                prop_assert_eq!(flat.predict(row), grown.predict(row), "raw row {}", i);
            }
            // And the batch kernel agrees with the per-tree binned walk.
            let per_tree = (0..n).map(|i| {
                grown.base_score()
                    + grown.learning_rate()
                        * grown.trees().iter()
                            .map(|t| t.predict_binned(&binned, i))
                            .sum::<f64>()
            });
            for (i, expect) in per_tree.enumerate() {
                prop_assert_eq!(batch[i], expect, "binned row {}", i);
            }
        }
    }
}
