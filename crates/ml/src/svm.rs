//! Linear support vector machine trained with Pegasos (primal SGD).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::MlError;

/// Hyperparameters for [`LinearSvm`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvmConfig {
    /// Regularization strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of SGD steps (draws with replacement).
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional per-class weights `(weight_neg, weight_pos)` to handle
    /// imbalance (Wrangler oversamples stragglers; class weighting is the
    /// deterministic equivalent).
    pub class_weights: (f64, f64),
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-3,
            iterations: 20_000,
            seed: 7,
            class_weights: (1.0, 1.0),
        }
    }
}

/// Binary linear SVM: `sign(w·x + b)` with labels in `{-1, +1}`.
///
/// Used by the Wrangler baseline (the original system uses linear SVMs "for
/// interpretability") and as the base learner of the PU-BG bagging ensemble.
/// Features are standardized internally.
///
/// # Example
///
/// ```
/// use nurd_ml::{LinearSvm, SvmConfig};
///
/// # fn main() -> Result<(), nurd_ml::MlError> {
/// let x = vec![vec![-2.0], vec![-1.5], vec![1.5], vec![2.0]];
/// let y = vec![-1.0, -1.0, 1.0, 1.0];
/// let svm = LinearSvm::fit(&x, &y, &SvmConfig::default())?;
/// assert!(svm.decision_function(&[1.8]) > 0.0);
/// assert!(svm.decision_function(&[-1.8]) < 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
}

impl LinearSvm {
    /// Fits the SVM; labels must be in `{-1, +1}`.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] / [`MlError::DimensionMismatch`] on bad
    /// shapes, [`MlError::InvalidConfig`] on labels outside `{-1, +1}` or a
    /// non-positive `lambda`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &SvmConfig) -> Result<Self, MlError> {
        let d = crate::error::check_xy(x, y)?;
        if y.iter().any(|&v| v != -1.0 && v != 1.0) {
            return Err(MlError::InvalidConfig("labels must be -1.0 or +1.0".into()));
        }
        if config.lambda <= 0.0 {
            return Err(MlError::InvalidConfig(format!(
                "lambda must be positive, got {}",
                config.lambda
            )));
        }

        let mut xs = x.to_vec();
        let std_params = nurd_linalg::standardize_columns(&mut xs)
            .map_err(|e| MlError::OptimizationFailed(e.to_string()))?;

        let n = xs.len();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut rng = StdRng::seed_from_u64(config.seed);

        for t in 1..=config.iterations {
            let i = rng.gen_range(0..n);
            let eta = 1.0 / (config.lambda * t as f64);
            let margin = y[i] * (nurd_linalg::dot(&w, &xs[i]) + b);
            let class_weight = if y[i] > 0.0 {
                config.class_weights.1
            } else {
                config.class_weights.0
            };
            // Regularization shrink.
            nurd_linalg::scale(&mut w, 1.0 - eta * config.lambda);
            if margin < 1.0 {
                // Hinge sub-gradient step.
                nurd_linalg::add_scaled(&mut w, eta * class_weight * y[i], &xs[i]);
                b += eta * class_weight * y[i];
            }
            // Pegasos projection onto the ball of radius 1/sqrt(λ).
            let norm = nurd_linalg::l2_norm(&w);
            let radius = 1.0 / config.lambda.sqrt();
            if norm > radius {
                nurd_linalg::scale(&mut w, radius / norm);
            }
        }

        Ok(LinearSvm {
            weights: w,
            bias: b,
            feature_means: std_params.means,
            feature_stds: std_params.stds,
        })
    }

    /// Signed distance to the separating hyperplane (positive = class `+1`).
    ///
    /// # Panics
    ///
    /// Panics if `features` has a different width than the training data.
    #[must_use]
    pub fn decision_function(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.weights.len(), "feature width mismatch");
        let mut z = self.bias;
        for ((&f, &w), (&m, &s)) in features
            .iter()
            .zip(&self.weights)
            .zip(self.feature_means.iter().zip(&self.feature_stds))
        {
            z += w * (f - m) / s;
        }
        z
    }

    /// Hard class prediction in `{-1, +1}`.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        if self.decision_function(features) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Learned weights in standardized feature space.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn separates_two_clusters() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            x.push(vec![i as f64 * 0.1, 1.0]);
            y.push(-1.0);
            x.push(vec![i as f64 * 0.1 + 5.0, 1.0]);
            y.push(1.0);
        }
        let svm = LinearSvm::fit(&x, &y, &SvmConfig::default()).unwrap();
        let mut correct = 0;
        for (xi, &yi) in x.iter().zip(&y) {
            if svm.predict(xi) == yi {
                correct += 1;
            }
        }
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    fn class_weights_shift_boundary_toward_minority() {
        // 30 negatives at 0, 3 positives at 1: unweighted SVM favors the
        // majority; upweighting positives should recover them.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            x.push(vec![(i % 5) as f64 * 0.02]);
            y.push(-1.0);
        }
        for i in 0..3 {
            x.push(vec![1.0 + i as f64 * 0.02]);
            y.push(1.0);
        }
        let weighted = LinearSvm::fit(
            &x,
            &y,
            &SvmConfig {
                class_weights: (1.0, 10.0),
                ..SvmConfig::default()
            },
        )
        .unwrap();
        assert_eq!(weighted.predict(&[1.01]), 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let cfg = SvmConfig::default();
        let a = LinearSvm::fit(&x, &y, &cfg).unwrap();
        let b = LinearSvm::fit(&x, &y, &cfg).unwrap();
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn rejects_bad_labels() {
        assert!(matches!(
            LinearSvm::fit(&[vec![1.0]], &[0.0], &SvmConfig::default()),
            Err(MlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_nonpositive_lambda() {
        let cfg = SvmConfig {
            lambda: 0.0,
            ..SvmConfig::default()
        };
        assert!(matches!(
            LinearSvm::fit(&[vec![1.0]], &[1.0], &cfg),
            Err(MlError::InvalidConfig(_))
        ));
    }

    proptest! {
        /// decision_function is finite for any finite probe.
        #[test]
        fn prop_decision_finite(probe in -1e3..1e3f64) {
            let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
            let y = vec![-1.0, -1.0, 1.0, 1.0];
            let svm = LinearSvm::fit(&x, &y, &SvmConfig::default()).unwrap();
            prop_assert!(svm.decision_function(&[probe]).is_finite());
        }

        /// predict always returns a hard label in {-1, +1}.
        #[test]
        fn prop_predict_hard_label(probe in -1e3..1e3f64) {
            let x = vec![vec![0.0], vec![3.0]];
            let y = vec![-1.0, 1.0];
            let svm = LinearSvm::fit(&x, &y, &SvmConfig::default()).unwrap();
            let p = svm.predict(&[probe]);
            prop_assert!(p == 1.0 || p == -1.0);
        }
    }
}
