//! CART-style regression trees fit to gradient/hessian statistics.
//!
//! The tree minimizes the second-order (Newton) objective used by
//! XGBoost-style boosting: each leaf's weight is `-G / (H + λ)` and a split's
//! gain is the reduction in `-G²/(H+λ)` across the partition. With gradients
//! `g_i = f_i - y_i` and unit hessians this reduces to ordinary
//! variance-reduction CART, so the same tree serves plain regression too.

use crate::MlError;

/// Hyperparameters for a single regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0). Must be ≥ 1.
    pub max_depth: usize,
    /// Minimum hessian mass per child (≈ sample count for unit hessians).
    pub min_child_weight: f64,
    /// L2 regularization on leaf weights (λ in the XGBoost objective).
    pub lambda: f64,
    /// Minimum gain required to keep a split (γ).
    pub min_split_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 3,
            min_child_weight: 1.0,
            lambda: 1.0,
            min_split_gain: 1e-9,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        /// Samples with `x[feature] <= threshold` go left.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
///
/// # Example
///
/// ```
/// use nurd_ml::{RegressionTree, TreeConfig};
///
/// # fn main() -> Result<(), nurd_ml::MlError> {
/// let x = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
/// // Gradients of squared loss at prediction 0: g = -y.
/// let grads = vec![-1.0, -1.0, -9.0, -9.0];
/// let hess = vec![1.0; 4];
/// let tree = RegressionTree::fit(&x, &grads, &hess, &TreeConfig::default())?;
/// assert!(tree.predict(&[10.5]) > tree.predict(&[0.5]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree to per-sample gradients and hessians.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] / [`MlError::DimensionMismatch`] on
    /// inconsistent inputs, [`MlError::InvalidConfig`] if `max_depth == 0`.
    pub fn fit(
        x: &[Vec<f64>],
        gradients: &[f64],
        hessians: &[f64],
        config: &TreeConfig,
    ) -> Result<Self, MlError> {
        crate::error::check_xy(x, gradients)?;
        if hessians.len() != gradients.len() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} hessians", gradients.len()),
                found: format!("{} hessians", hessians.len()),
            });
        }
        if config.max_depth == 0 {
            return Err(MlError::InvalidConfig("max_depth must be >= 1".into()));
        }
        let mut builder = Builder {
            x,
            gradients,
            hessians,
            config,
            nodes: Vec::new(),
        };
        let indices: Vec<usize> = (0..x.len()).collect();
        builder.build(indices, 0);
        Ok(RegressionTree {
            nodes: builder.nodes,
        })
    }

    /// The tree's output for one sample (a leaf weight; the caller applies
    /// base score and learning rate).
    ///
    /// # Panics
    ///
    /// Panics if `features` is narrower than a split feature index, which
    /// only happens when predicting with fewer features than training used.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (splits + leaves).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Depth of the deepest leaf (root-only tree has depth 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + walk(nodes, *left).max(walk(nodes, *right))
                }
            }
        }
        walk(&self.nodes, 0)
    }
}

struct Builder<'a> {
    x: &'a [Vec<f64>],
    gradients: &'a [f64],
    hessians: &'a [f64],
    config: &'a TreeConfig,
    nodes: Vec<Node>,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

impl Builder<'_> {
    /// Builds the subtree over `indices`; returns the node index.
    fn build(&mut self, indices: Vec<usize>, depth: usize) -> usize {
        let (g_sum, h_sum) = self.sums(&indices);
        let leaf_weight = -g_sum / (h_sum + self.config.lambda);

        if depth >= self.config.max_depth || indices.len() < 2 {
            return self.push_leaf(leaf_weight);
        }
        let Some(split) = self.best_split(&indices, g_sum, h_sum) else {
            return self.push_leaf(leaf_weight);
        };
        if split.gain <= self.config.min_split_gain {
            return self.push_leaf(leaf_weight);
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| self.x[i][split.feature] <= split.threshold);
        // Degenerate partitions cannot happen: thresholds are midpoints of
        // strictly distinct consecutive values.
        let placeholder = self.push_leaf(0.0);
        let left = self.build(left_idx, depth + 1);
        let right = self.build(right_idx, depth + 1);
        self.nodes[placeholder] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
        };
        placeholder
    }

    fn push_leaf(&mut self, weight: f64) -> usize {
        self.nodes.push(Node::Leaf { weight });
        self.nodes.len() - 1
    }

    fn sums(&self, indices: &[usize]) -> (f64, f64) {
        indices.iter().fold((0.0, 0.0), |(g, h), &i| {
            (g + self.gradients[i], h + self.hessians[i])
        })
    }

    fn best_split(&self, indices: &[usize], g_sum: f64, h_sum: f64) -> Option<BestSplit> {
        let d = self.x[0].len();
        let lambda = self.config.lambda;
        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let mut best: Option<BestSplit> = None;

        let mut order: Vec<usize> = indices.to_vec();
        for feature in 0..d {
            order.sort_by(|&a, &b| {
                self.x[a][feature]
                    .partial_cmp(&self.x[b][feature])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut g_left = 0.0;
            let mut h_left = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                g_left += self.gradients[i];
                h_left += self.hessians[i];
                let v = self.x[i][feature];
                let v_next = self.x[order[w + 1]][feature];
                if v == v_next {
                    continue;
                }
                let h_right = h_sum - h_left;
                if h_left < self.config.min_child_weight
                    || h_right < self.config.min_child_weight
                {
                    continue;
                }
                let g_right = g_sum - g_left;
                let gain = 0.5
                    * (g_left * g_left / (h_left + lambda)
                        + g_right * g_right / (h_right + lambda)
                        - parent_score);
                if best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(BestSplit {
                        feature,
                        threshold: 0.5 * (v + v_next),
                        gain,
                    });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn squared_loss_grads(y: &[f64]) -> (Vec<f64>, Vec<f64>) {
        // Gradient of 1/2 (f - y)^2 at f = 0 is -y; hessian is 1.
        (y.iter().map(|v| -v).collect(), vec![1.0; y.len()])
    }

    #[test]
    fn perfectly_separable_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 10.0 }).collect();
        let (g, h) = squared_loss_grads(&y);
        let cfg = TreeConfig {
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
        assert!((tree.predict(&[2.0]) - 0.0).abs() < 1e-9);
        assert!((tree.predict(&[15.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 5];
        let (g, h) = squared_loss_grads(&y);
        let cfg = TreeConfig {
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert!((tree.predict(&[0.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let (g, h) = squared_loss_grads(&y);
        let cfg = TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
        assert!(tree.depth() <= 2);
        assert!(tree.leaf_count() <= 4);
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let x: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let y = vec![0.0, 0.0, 0.0, 100.0];
        let (g, h) = squared_loss_grads(&y);
        let cfg = TreeConfig {
            min_child_weight: 2.0,
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
        // The only useful split (3 vs 1) is blocked on the right child;
        // 2-2 split is allowed.
        for node in 0..tree.node_count() {
            if let Node::Split { threshold, .. } = tree.nodes[node] {
                assert!((threshold - 1.5).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multivariate_picks_informative_feature() {
        // Feature 1 is pure noise; feature 0 determines the target.
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i / 15) as f64, ((i * 7919) % 13) as f64])
            .collect();
        let y: Vec<f64> = (0..30).map(|i| if i < 15 { -5.0 } else { 5.0 }).collect();
        let (g, h) = squared_loss_grads(&y);
        let tree = RegressionTree::fit(&x, &g, &h, &TreeConfig::default()).unwrap();
        match &tree.nodes[0] {
            Node::Split { feature, .. } => assert_eq!(*feature, 0),
            Node::Leaf { .. } => panic!("expected a split at the root"),
        }
    }

    #[test]
    fn rejects_zero_depth() {
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let err = RegressionTree::fit(&[vec![1.0]], &[1.0], &[1.0], &cfg).unwrap_err();
        assert!(matches!(err, MlError::InvalidConfig(_)));
    }

    #[test]
    fn rejects_hessian_length_mismatch() {
        let err = RegressionTree::fit(
            &[vec![1.0], vec![2.0]],
            &[1.0, 2.0],
            &[1.0],
            &TreeConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MlError::DimensionMismatch { .. }));
    }

    proptest! {
        /// Leaf predictions stay within the hull of the Newton-optimal
        /// per-sample weights (for unit hessians, within [-max|g|, max|g|]).
        #[test]
        fn prop_predictions_bounded_by_gradient_hull(
            ys in proptest::collection::vec(-100.0..100.0f64, 2..40)) {
            let x: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
            let (g, h) = squared_loss_grads(&ys);
            let cfg = TreeConfig { lambda: 0.0, ..TreeConfig::default() };
            let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for i in 0..ys.len() {
                let p = tree.predict(&[i as f64]);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }
        }

        /// Tree structure respects depth limits for random targets.
        #[test]
        fn prop_depth_bounded(ys in proptest::collection::vec(-10.0..10.0f64, 2..64),
                              depth in 1usize..5) {
            let x: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
            let (g, h) = squared_loss_grads(&ys);
            let cfg = TreeConfig { max_depth: depth, ..TreeConfig::default() };
            let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
            prop_assert!(tree.depth() <= depth);
        }
    }
}
