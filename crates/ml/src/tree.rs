//! CART-style regression trees fit to gradient/hessian statistics.
//!
//! The tree minimizes the second-order (Newton) objective used by
//! XGBoost-style boosting: each leaf's weight is `-G / (H + λ)` and a split's
//! gain is the reduction in `-G²/(H+λ)` across the partition. With gradients
//! `g_i = f_i - y_i` and unit hessians this reduces to ordinary
//! variance-reduction CART, so the same tree serves plain regression too.
//!
//! # Growth strategies
//!
//! Two interchangeable split finders sit behind [`RegressionTree::fit`],
//! selected by [`TreeConfig::growth`]:
//!
//! * [`TreeGrowth::Histogram`] (the default) — quantizes each feature into
//!   at most [`TreeConfig::max_bins`] bins once per fit (see
//!   [`BinnedMatrix`]), then finds splits by accumulating per-bin
//!   gradient/hessian sums in one linear pass per node and scanning bin
//!   boundaries. Split finding costs `O(n·d)` per level with sequential
//!   access over contiguous `u8` codes — and, with
//!   [`TreeConfig::hist_subtraction`] (the default), only the smaller
//!   child of each split is accumulated while the sibling's histogram is
//!   derived as `parent − child`, LightGBM-style, cutting per-level
//!   accumulation to `O(min(n_l, n_r) · d)`. When every feature has at
//!   most `max_bins` distinct values the result is **identical** to exact
//!   growth (same thresholds, bit for bit, with subtraction disabled; up
//!   to equal-gain tie-breaks with it); otherwise thresholds are
//!   restricted to quantile bin boundaries — the standard histogram
//!   tradeoff.
//! * [`TreeGrowth::Exact`] — the classic sort-based CART enumeration:
//!   every node re-sorts its samples per feature (`O(d · n log n)` per
//!   node) and considers every midpoint between adjacent distinct values.
//!   Kept for accuracy-sensitive comparisons and as the reference
//!   implementation the histogram path is property-tested against.

use nurd_linalg::MatrixView;

use crate::binned::BinnedMatrix;
use crate::MlError;

/// Split-finding strategy for tree construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TreeGrowth {
    /// Per-node sort-based exact enumeration (reference path).
    Exact,
    /// Binned histogram split finding (fast path, default).
    #[default]
    Histogram,
}

/// Hyperparameters for a single regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0). Must be ≥ 1.
    pub max_depth: usize,
    /// Minimum hessian mass per child (≈ sample count for unit hessians).
    pub min_child_weight: f64,
    /// L2 regularization on leaf weights (λ in the XGBoost objective).
    pub lambda: f64,
    /// Minimum gain required to keep a split (γ).
    pub min_split_gain: f64,
    /// Split-finding strategy.
    pub growth: TreeGrowth,
    /// Maximum bins per feature for histogram growth (clamped to
    /// `[2, 256]`; ignored by exact growth).
    pub max_bins: usize,
    /// LightGBM-style histogram subtraction (histogram growth only): at
    /// every split, accumulate only the **smaller** child's histograms and
    /// derive the sibling's as `parent − child`, halving (or better) the
    /// per-level accumulation work. Gradient/hessian cells of the derived
    /// sibling can differ from direct accumulation by float-rounding ulps
    /// (sample counts stay exact); disable to force direct accumulation
    /// for both children (the reference the subtraction path is
    /// property-tested against).
    pub hist_subtraction: bool,
    /// Threads used for the embarrassingly parallel per-feature passes of
    /// histogram growth (feature quantization in [`BinnedMatrix::build`]
    /// and per-node histogram fills): `1` (the default) is strictly
    /// sequential, `0` uses every core of the machine, `n > 1` uses up to
    /// `n` threads of the shared [`nurd_runtime::global`] pool. Features
    /// are processed independently into disjoint outputs, so the fitted
    /// model is **bit-for-bit identical** at every setting — this knob
    /// trades nothing but wall-clock time. Exact growth ignores it.
    pub n_threads: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 3,
            min_child_weight: 1.0,
            lambda: 1.0,
            min_split_gain: 1e-9,
            growth: TreeGrowth::Histogram,
            max_bins: BinnedMatrix::MAX_BINS,
            hist_subtraction: true,
            n_threads: 1,
        }
    }
}

impl TreeConfig {
    /// Resolves [`TreeConfig::n_threads`] against the shared pool:
    /// `None` means run sequentially, `Some((pool, tasks))` means fan the
    /// per-feature passes out as at most `tasks` chunks on `pool`. An
    /// explicit `n > 1` keeps its fan-out even on a smaller pool (the
    /// chunks just queue — output is identical either way), so the
    /// parallel code path stays testable on any machine.
    pub(crate) fn parallelism(&self) -> Option<(&'static nurd_runtime::ThreadPool, usize)> {
        match self.n_threads {
            1 => None,
            0 => {
                let pool = nurd_runtime::global();
                (pool.threads() > 1).then(|| (pool, pool.threads()))
            }
            n => Some((nurd_runtime::global(), n)),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        /// Samples with `x[feature] <= threshold` go left.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
///
/// # Example
///
/// ```
/// use nurd_ml::{RegressionTree, TreeConfig};
///
/// # fn main() -> Result<(), nurd_ml::MlError> {
/// let x = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
/// // Gradients of squared loss at prediction 0: g = -y.
/// let grads = vec![-1.0, -1.0, -9.0, -9.0];
/// let hess = vec![1.0; 4];
/// let tree = RegressionTree::fit(&x, &grads, &hess, &TreeConfig::default())?;
/// assert!(tree.predict(&[10.5]) > tree.predict(&[0.5]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    /// Histogram-growth acceleration cache, parallel to `nodes`: for a
    /// split node, the highest bin code routed left in the
    /// [`BinnedMatrix`] the tree was trained against (`u8::MAX` at
    /// leaves). Empty for exact-grown trees. Lets
    /// [`RegressionTree::predict_binned`] route training-matrix rows by
    /// comparing `u8` codes instead of dereferencing raw `f64` features.
    split_bins: Vec<u8>,
}

/// Structural equality: two trees are equal when their node arrays are —
/// the `split_bins` cache is derived data tied to one training matrix and
/// deliberately excluded, so an exact-grown tree can compare equal to the
/// identical histogram-grown tree (the equivalence the property tests
/// assert).
impl PartialEq for RegressionTree {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
    }
}

impl RegressionTree {
    /// Fits a tree to per-sample gradients and hessians.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] / [`MlError::DimensionMismatch`] on
    /// inconsistent inputs, [`MlError::InvalidConfig`] if `max_depth == 0`.
    pub fn fit(
        x: &[Vec<f64>],
        gradients: &[f64],
        hessians: &[f64],
        config: &TreeConfig,
    ) -> Result<Self, MlError> {
        Self::fit_view(MatrixView::Rows(x), gradients, hessians, config)
    }

    /// Fits a tree over any matrix layout (row-major, row slices, or a
    /// column-major `FeatureMatrix`) without copying the features.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RegressionTree::fit`].
    pub fn fit_view(
        x: MatrixView<'_>,
        gradients: &[f64],
        hessians: &[f64],
        config: &TreeConfig,
    ) -> Result<Self, MlError> {
        check_tree_inputs(x, gradients, hessians, config)?;
        let indices: Vec<usize> = (0..x.rows()).collect();
        match config.growth {
            TreeGrowth::Exact => Ok(Self::fit_exact_rows(
                x, gradients, hessians, indices, config,
            )),
            TreeGrowth::Histogram => {
                let binned = BinnedMatrix::build_for(x, config);
                Ok(Self::grow_binned(
                    &binned, gradients, hessians, indices, config,
                ))
            }
        }
    }

    /// Fits a tree over a subset (`rows`) of a pre-quantized matrix.
    ///
    /// This is the boosting hot path: [`crate::GradientBoosting`] builds
    /// the [`BinnedMatrix`] once per `fit` and every round trains on an
    /// index subset — no row materialization, no re-quantization.
    /// `gradients`/`hessians` are indexed by *matrix row id* (length
    /// `binned.rows()`).
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] when `rows` is empty,
    /// [`MlError::DimensionMismatch`] when gradient/hessian lengths do not
    /// match the matrix, [`MlError::InvalidConfig`] if `max_depth == 0`.
    pub fn fit_binned(
        binned: &BinnedMatrix,
        gradients: &[f64],
        hessians: &[f64],
        rows: &[usize],
        config: &TreeConfig,
    ) -> Result<Self, MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if gradients.len() != binned.rows() || hessians.len() != binned.rows() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} gradient/hessian entries", binned.rows()),
                found: format!("{}/{}", gradients.len(), hessians.len()),
            });
        }
        if config.max_depth == 0 {
            return Err(MlError::InvalidConfig("max_depth must be >= 1".into()));
        }
        Ok(Self::grow_binned(
            binned,
            gradients,
            hessians,
            rows.to_vec(),
            config,
        ))
    }

    /// Exact growth over an index subset; inputs already validated.
    pub(crate) fn fit_exact_rows(
        x: MatrixView<'_>,
        gradients: &[f64],
        hessians: &[f64],
        rows: Vec<usize>,
        config: &TreeConfig,
    ) -> Self {
        let mut builder = ExactBuilder {
            x,
            gradients,
            hessians,
            config,
            nodes: Vec::new(),
        };
        builder.build(rows, 0);
        RegressionTree {
            nodes: builder.nodes,
            split_bins: Vec::new(),
        }
    }

    fn grow_binned(
        binned: &BinnedMatrix,
        gradients: &[f64],
        hessians: &[f64],
        rows: Vec<usize>,
        config: &TreeConfig,
    ) -> Self {
        // One flat histogram buffer per live node: features laid out at
        // `offsets[f]`, so the whole node histogram is a single allocation
        // the subtraction pass can walk linearly.
        let mut offsets = Vec::with_capacity(binned.features() + 1);
        let mut total = 0usize;
        for f in 0..binned.features() {
            offsets.push(total);
            total += binned.feature_bins(f).n_bins();
        }
        offsets.push(total);
        let mut builder = HistogramBuilder {
            binned,
            gradients,
            hessians,
            config,
            par: config.parallelism(),
            nodes: Vec::new(),
            split_bins: Vec::new(),
            offsets,
            total_bins: total,
            pool: Vec::new(),
        };
        let mut root_hist = builder.acquire();
        builder.fill_hist(&rows, &mut root_hist);
        builder.build(rows, 0, root_hist);
        RegressionTree {
            nodes: builder.nodes,
            split_bins: builder.split_bins,
        }
    }

    /// The tree's output for one sample (a leaf weight; the caller applies
    /// base score and learning rate).
    ///
    /// # Panics
    ///
    /// Panics if `features` is narrower than a split feature index, which
    /// only happens when predicting with fewer features than training used.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// The tree's output for row `row` of a matrix view (no row copy).
    ///
    /// # Panics
    ///
    /// Panics if the view is narrower than a split feature index.
    #[must_use]
    pub fn predict_at(&self, x: MatrixView<'_>, row: usize) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if x.get(row, *feature) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// The tree's output for row `row` of the binned matrix it was trained
    /// against (or one that has since grown via
    /// [`BinnedMatrix::append_from`], which preserves the bin edges): the
    /// traversal compares `u8` bin codes instead of raw `f64` features,
    /// which is both branch-cheaper and cache-denser. This is the
    /// boosting-round score-update hot path.
    ///
    /// Routing is identical to [`RegressionTree::predict`] for every value
    /// quantized by the training edges (thresholds sit strictly between
    /// adjacent bins); rows appended later may differ from raw-feature
    /// routing only inside bins that were empty at this node during
    /// training — a tie-break zone where neither routing is more correct.
    ///
    /// # Panics
    ///
    /// Panics when the tree was not histogram-grown (no code cache), or if
    /// `row` is out of bounds for `binned`.
    #[must_use]
    pub fn predict_binned(&self, binned: &BinnedMatrix, row: usize) -> f64 {
        assert_eq!(
            self.split_bins.len(),
            self.nodes.len(),
            "predict_binned requires a histogram-grown tree"
        );
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    left,
                    right,
                    ..
                } => {
                    idx = if binned.codes(*feature)[row] <= self.split_bins[idx] {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Whether [`RegressionTree::predict_binned`] is available (the tree
    /// was histogram-grown and carries its bin-code cache).
    #[must_use]
    pub fn supports_binned_predict(&self) -> bool {
        self.split_bins.len() == self.nodes.len()
    }

    /// Node storage, index order — the flattening access path for
    /// [`crate::FlatForest`].
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The bin-code cache parallel to [`RegressionTree::nodes`] (empty for
    /// exact-grown trees).
    pub(crate) fn split_bins(&self) -> &[u8] {
        &self.split_bins
    }

    /// Number of nodes (splits + leaves).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Depth of the deepest leaf (root-only tree has depth 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        walk(&self.nodes, 0)
    }
}

/// Nodes serialize with a one-byte tag (`0` leaf, `1` split); the
/// `split_bins` cache rides along verbatim so a histogram-grown tree keeps
/// [`RegressionTree::predict_binned`] after a restore.
impl nurd_codec::Checkpointable for RegressionTree {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        enc.put_usize(self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf { weight } => {
                    enc.put_u8(0);
                    enc.put_f64(*weight);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    enc.put_u8(1);
                    enc.put_usize(*feature);
                    enc.put_f64(*threshold);
                    enc.put_usize(*left);
                    enc.put_usize(*right);
                }
            }
        }
        enc.put_bytes(&self.split_bins);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        let n = dec.take_len(9)?; // tag + at least an f64 per node
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(match dec.take_u8()? {
                0 => Node::Leaf {
                    weight: dec.take_f64()?,
                },
                1 => Node::Split {
                    feature: dec.take_usize()?,
                    threshold: dec.take_f64()?,
                    left: dec.take_usize()?,
                    right: dec.take_usize()?,
                },
                tag => {
                    return Err(nurd_codec::CodecError::InvalidTag {
                        what: "tree::Node",
                        tag,
                    })
                }
            });
        }
        let split_bins = dec.take_bytes()?.to_vec();
        Ok(RegressionTree { nodes, split_bins })
    }
}

fn check_tree_inputs(
    x: MatrixView<'_>,
    gradients: &[f64],
    hessians: &[f64],
    config: &TreeConfig,
) -> Result<(), MlError> {
    crate::error::check_view(x, gradients)?;
    if hessians.len() != gradients.len() {
        return Err(MlError::DimensionMismatch {
            expected: format!("{} hessians", gradients.len()),
            found: format!("{} hessians", hessians.len()),
        });
    }
    if config.max_depth == 0 {
        return Err(MlError::InvalidConfig("max_depth must be >= 1".into()));
    }
    Ok(())
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
    /// Highest bin code routed left (histogram growth only; `u8::MAX` for
    /// exact growth, where partitioning uses the threshold directly).
    left_bin: u8,
}

/// Shared leaf/recursion skeleton: both builders differ only in how they
/// find the best split and partition the node.
macro_rules! impl_build {
    ($builder:ident) => {
        impl $builder<'_> {
            /// Builds the subtree over `indices`; returns the node index.
            fn build(&mut self, indices: Vec<usize>, depth: usize) -> usize {
                let (g_sum, h_sum) = self.sums(&indices);
                let leaf_weight = -g_sum / (h_sum + self.config.lambda);

                if depth >= self.config.max_depth || indices.len() < 2 {
                    return self.push_leaf(leaf_weight);
                }
                let Some(split) = self.best_split(&indices, g_sum, h_sum) else {
                    return self.push_leaf(leaf_weight);
                };
                if split.gain <= self.config.min_split_gain {
                    return self.push_leaf(leaf_weight);
                }

                let (left_idx, right_idx) = self.partition(indices, &split);
                // Degenerate partitions cannot happen: thresholds are
                // midpoints of strictly distinct consecutive values.
                let placeholder = self.push_leaf(0.0);
                let left = self.build(left_idx, depth + 1);
                let right = self.build(right_idx, depth + 1);
                self.nodes[placeholder] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                placeholder
            }

            fn push_leaf(&mut self, weight: f64) -> usize {
                self.nodes.push(Node::Leaf { weight });
                self.nodes.len() - 1
            }

            fn sums(&self, indices: &[usize]) -> (f64, f64) {
                indices.iter().fold((0.0, 0.0), |(g, h), &i| {
                    (g + self.gradients[i], h + self.hessians[i])
                })
            }
        }
    };
}

/// The reference sort-based builder (`TreeGrowth::Exact`).
struct ExactBuilder<'a> {
    x: MatrixView<'a>,
    gradients: &'a [f64],
    hessians: &'a [f64],
    config: &'a TreeConfig,
    nodes: Vec<Node>,
}

impl_build!(ExactBuilder);

impl ExactBuilder<'_> {
    fn partition(&self, indices: Vec<usize>, split: &BestSplit) -> (Vec<usize>, Vec<usize>) {
        indices
            .into_iter()
            .partition(|&i| self.x.get(i, split.feature) <= split.threshold)
    }

    fn best_split(&self, indices: &[usize], g_sum: f64, h_sum: f64) -> Option<BestSplit> {
        let d = self.x.cols();
        let lambda = self.config.lambda;
        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let mut best: Option<BestSplit> = None;

        let mut order: Vec<usize> = indices.to_vec();
        for feature in 0..d {
            // NaN input must not panic the sort (a partial_cmp fallback
            // violates strict total order, which the stdlib sort detects
            // and aborts on). nan_last_cmp orders every NaN — positive or
            // negative — last, so NaNs are never split boundaries and
            // simply ride along in the right child.
            order.sort_by(|&a, &b| {
                crate::binned::nan_last_cmp(self.x.get(a, feature), self.x.get(b, feature))
            });
            let mut g_left = 0.0;
            let mut h_left = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                g_left += self.gradients[i];
                h_left += self.hessians[i];
                let v = self.x.get(i, feature);
                let v_next = self.x.get(order[w + 1], feature);
                if v_next.is_nan() {
                    // NaNs sort last: no further finite boundaries exist
                    // for this feature.
                    break;
                }
                if v == v_next {
                    continue;
                }
                let h_right = h_sum - h_left;
                if h_left < self.config.min_child_weight || h_right < self.config.min_child_weight {
                    continue;
                }
                let g_right = g_sum - g_left;
                let gain = 0.5
                    * (g_left * g_left / (h_left + lambda)
                        + g_right * g_right / (h_right + lambda)
                        - parent_score);
                if best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(BestSplit {
                        feature,
                        threshold: 0.5 * (v + v_next),
                        gain,
                        left_bin: u8::MAX,
                    });
                }
            }
        }
        best
    }
}

/// One histogram cell: gradient sum, hessian sum, sample count. Kept as a
/// single struct so the accumulation loop touches one cache line per
/// sample instead of three parallel arrays.
#[derive(Debug, Clone, Copy, Default)]
struct HistBin {
    g: f64,
    h: f64,
    n: u32,
}

/// The binned builder (`TreeGrowth::Histogram`).
///
/// Each node owns one flat histogram covering every feature (laid out at
/// `offsets[f]`). The root's histogram is accumulated directly; below it,
/// only the **smaller** child of each split is accumulated and the
/// sibling is derived by the LightGBM subtraction trick
/// `sibling = parent − child` (sample counts exactly, gradient/hessian
/// sums up to addition-reordering ulps), so each level costs
/// `O(min(n_l, n_r) · d)` accumulation instead of `O(n · d)`. Buffers are
/// recycled through a small pool: at most `depth + 1` histograms are ever
/// live.
struct HistogramBuilder<'a> {
    binned: &'a BinnedMatrix,
    gradients: &'a [f64],
    hessians: &'a [f64],
    config: &'a TreeConfig,
    /// Per-feature fill fan-out resolved from [`TreeConfig::n_threads`]
    /// (`None` = sequential fills).
    par: Option<(&'static nurd_runtime::ThreadPool, usize)>,
    nodes: Vec<Node>,
    /// Parallel to `nodes`: left-routed bin cap per split (`u8::MAX` at
    /// leaves); becomes [`RegressionTree::split_bins`].
    split_bins: Vec<u8>,
    /// Flat histogram layout: feature `f`'s bins live at
    /// `offsets[f]..offsets[f + 1]`.
    offsets: Vec<usize>,
    total_bins: usize,
    /// Recycled node-histogram buffers.
    pool: Vec<Vec<HistBin>>,
}

impl HistogramBuilder<'_> {
    fn acquire(&mut self) -> Vec<HistBin> {
        self.pool
            .pop()
            .unwrap_or_else(|| vec![HistBin::default(); self.total_bins])
    }

    fn release(&mut self, buf: Vec<HistBin>) {
        self.pool.push(buf);
    }

    /// Node size below which parallel fills are never worth the task
    /// overhead (a fill is one add per row per feature).
    const PAR_MIN_ROWS: usize = 4096;

    /// Accumulates the node histogram for every feature in one pass per
    /// feature over contiguous `u8` codes — the dominant per-node cost the
    /// subtraction trick halves. Features fill disjoint cell ranges, so
    /// the parallel fan-out (big nodes, `par` set) produces bit-identical
    /// histograms to the sequential loop.
    fn fill_hist(&self, indices: &[usize], hist: &mut [HistBin]) {
        hist.fill(HistBin::default());
        if let Some((pool, tasks)) = self.par {
            if indices.len() >= Self::PAR_MIN_ROWS && self.binned.features() >= 2 {
                self.fill_hist_parallel(pool, tasks, indices, hist);
                return;
            }
        }
        for f in 0..self.binned.features() {
            // Single-bin (constant / all-NaN) features can never split;
            // best_split skips them, so their statistics are never read —
            // don't pay a pass over the rows for them. Their cells stay
            // zero in every node, which keeps the subtraction pass
            // (parent − child over the whole buffer) consistent.
            if self.binned.feature_bins(f).n_bins() < 2 {
                continue;
            }
            self.fill_feature(f, indices, &mut hist[self.offsets[f]..self.offsets[f + 1]]);
        }
    }

    /// One feature's accumulation pass into its own cell range.
    fn fill_feature(&self, f: usize, indices: &[usize], cells: &mut [HistBin]) {
        let codes = self.binned.codes(f);
        for &i in indices {
            let cell = &mut cells[codes[i] as usize];
            cell.g += self.gradients[i];
            cell.h += self.hessians[i];
            cell.n += 1;
        }
    }

    /// Splits `hist` into per-feature slices and fans the fills out as at
    /// most `tasks` chunks on `pool`. Skips single-bin features exactly
    /// like the sequential loop (their already-zeroed cells are the
    /// contract the subtraction pass relies on).
    fn fill_hist_parallel(
        &self,
        pool: &nurd_runtime::ThreadPool,
        tasks: usize,
        indices: &[usize],
        hist: &mut [HistBin],
    ) {
        let mut per_feature: Vec<(usize, &mut [HistBin])> =
            Vec::with_capacity(self.binned.features());
        let mut rest = hist;
        for f in 0..self.binned.features() {
            let width = self.offsets[f + 1] - self.offsets[f];
            let (cells, tail) = rest.split_at_mut(width);
            rest = tail;
            if self.binned.feature_bins(f).n_bins() >= 2 {
                per_feature.push((f, cells));
            }
        }
        if per_feature.is_empty() {
            return;
        }
        let per = per_feature.len().div_ceil(tasks.min(per_feature.len()));
        pool.scope(|s| {
            let mut remaining = per_feature;
            while !remaining.is_empty() {
                let chunk: Vec<(usize, &mut [HistBin])> =
                    remaining.drain(..per.min(remaining.len())).collect();
                s.spawn(move || {
                    for (f, cells) in chunk {
                        self.fill_feature(f, indices, cells);
                    }
                });
            }
        });
    }

    /// Builds the subtree over `indices`, whose per-feature histograms
    /// have already been accumulated (or derived) into `hist`; returns the
    /// node index. Consumes `hist` back into the pool.
    fn build(&mut self, indices: Vec<usize>, depth: usize, hist: Vec<HistBin>) -> usize {
        // Node totals are summed in row order (not from histogram cells)
        // so leaf weights stay bit-identical to the exact builder's.
        let (g_sum, h_sum) = indices.iter().fold((0.0, 0.0), |(g, h), &i| {
            (g + self.gradients[i], h + self.hessians[i])
        });
        let leaf_weight = -g_sum / (h_sum + self.config.lambda);

        if depth >= self.config.max_depth || indices.len() < 2 {
            self.release(hist);
            return self.push_leaf(leaf_weight);
        }
        let Some(split) = self.best_split(&hist, g_sum, h_sum) else {
            self.release(hist);
            return self.push_leaf(leaf_weight);
        };
        if split.gain <= self.config.min_split_gain {
            self.release(hist);
            return self.push_leaf(leaf_weight);
        }

        let codes = self.binned.codes(split.feature);
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| codes[i] <= split.left_bin);

        // Accumulate the smaller child; derive the sibling from the parent
        // buffer (which the sibling then owns). With subtraction disabled,
        // both children are accumulated directly — the reference path.
        let small_is_left = left_idx.len() <= right_idx.len();
        let small = if small_is_left { &left_idx } else { &right_idx };
        let large = if small_is_left { &right_idx } else { &left_idx };
        let mut small_hist = self.acquire();
        self.fill_hist(small, &mut small_hist);
        let mut large_hist = hist;
        if self.config.hist_subtraction {
            for (cell, s) in large_hist.iter_mut().zip(&small_hist) {
                cell.g -= s.g;
                cell.h -= s.h;
                cell.n -= s.n;
            }
        } else {
            self.fill_hist(large, &mut large_hist);
        }
        let (left_hist, right_hist) = if small_is_left {
            (small_hist, large_hist)
        } else {
            (large_hist, small_hist)
        };

        let placeholder = self.push_leaf(0.0);
        let left = self.build(left_idx, depth + 1, left_hist);
        let right = self.build(right_idx, depth + 1, right_hist);
        self.nodes[placeholder] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
        };
        self.split_bins[placeholder] = split.left_bin;
        placeholder
    }

    fn push_leaf(&mut self, weight: f64) -> usize {
        self.nodes.push(Node::Leaf { weight });
        self.split_bins.push(u8::MAX);
        self.nodes.len() - 1
    }

    /// Scans every feature's bin boundaries in the precomputed node
    /// histogram. Unlike the pre-subtraction builder there is no
    /// accumulation here — `hist` already holds the node's statistics.
    fn best_split(&self, hist: &[HistBin], g_sum: f64, h_sum: f64) -> Option<BestSplit> {
        let lambda = self.config.lambda;
        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let mut best: Option<BestSplit> = None;

        for feature in 0..self.binned.features() {
            let bins = self.binned.feature_bins(feature);
            let n_bins = bins.n_bins();
            if n_bins < 2 {
                continue;
            }
            let cells = &hist[self.offsets[feature]..self.offsets[feature + 1]];

            // Scan boundaries between bins *present in this node*: the
            // candidate set (and, in the one-bin-per-value regime, the
            // thresholds) then matches the exact builder sample-for-sample.
            let mut g_left = 0.0;
            let mut h_left = 0.0;
            let mut last_present: Option<usize> = None;
            for (b, cell) in cells.iter().enumerate() {
                if cell.n == 0 {
                    continue;
                }
                if let Some(prev) = last_present {
                    let h_right = h_sum - h_left;
                    if h_left >= self.config.min_child_weight
                        && h_right >= self.config.min_child_weight
                    {
                        let g_right = g_sum - g_left;
                        let gain = 0.5
                            * (g_left * g_left / (h_left + lambda)
                                + g_right * g_right / (h_right + lambda)
                                - parent_score);
                        if best.as_ref().is_none_or(|cur| gain > cur.gain) {
                            best = Some(BestSplit {
                                feature,
                                threshold: 0.5 * (bins.max_of(prev) + bins.min_of(b)),
                                gain,
                                left_bin: prev as u8,
                            });
                        }
                    }
                }
                g_left += cell.g;
                h_left += cell.h;
                last_present = Some(b);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn squared_loss_grads(y: &[f64]) -> (Vec<f64>, Vec<f64>) {
        // Gradient of 1/2 (f - y)^2 at f = 0 is -y; hessian is 1.
        (y.iter().map(|v| -v).collect(), vec![1.0; y.len()])
    }

    #[test]
    fn perfectly_separable_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 10.0 }).collect();
        let (g, h) = squared_loss_grads(&y);
        let cfg = TreeConfig {
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
        assert!((tree.predict(&[2.0]) - 0.0).abs() < 1e-9);
        assert!((tree.predict(&[15.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 5];
        let (g, h) = squared_loss_grads(&y);
        let cfg = TreeConfig {
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert!((tree.predict(&[0.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let (g, h) = squared_loss_grads(&y);
        let cfg = TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
        assert!(tree.depth() <= 2);
        assert!(tree.leaf_count() <= 4);
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let x: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let y = vec![0.0, 0.0, 0.0, 100.0];
        let (g, h) = squared_loss_grads(&y);
        let cfg = TreeConfig {
            min_child_weight: 2.0,
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
        // The only useful split (3 vs 1) is blocked on the right child;
        // 2-2 split is allowed.
        for node in 0..tree.node_count() {
            if let Node::Split { threshold, .. } = tree.nodes[node] {
                assert!((threshold - 1.5).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multivariate_picks_informative_feature() {
        // Feature 1 is pure noise; feature 0 determines the target.
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i / 15) as f64, ((i * 7919) % 13) as f64])
            .collect();
        let y: Vec<f64> = (0..30).map(|i| if i < 15 { -5.0 } else { 5.0 }).collect();
        let (g, h) = squared_loss_grads(&y);
        let tree = RegressionTree::fit(&x, &g, &h, &TreeConfig::default()).unwrap();
        match &tree.nodes[0] {
            Node::Split { feature, .. } => assert_eq!(*feature, 0),
            Node::Leaf { .. } => panic!("expected a split at the root"),
        }
    }

    #[test]
    fn rejects_zero_depth() {
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let err = RegressionTree::fit(&[vec![1.0]], &[1.0], &[1.0], &cfg).unwrap_err();
        assert!(matches!(err, MlError::InvalidConfig(_)));
    }

    #[test]
    fn rejects_hessian_length_mismatch() {
        let err = RegressionTree::fit(
            &[vec![1.0], vec![2.0]],
            &[1.0, 2.0],
            &[1.0],
            &TreeConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, MlError::DimensionMismatch { .. }));
    }

    #[test]
    fn both_growth_modes_pass_reference_cases() {
        // The named tests above run under the default (histogram) growth;
        // spot-check the exact path stays equivalent on one of them.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 10.0 }).collect();
        let (g, h) = squared_loss_grads(&y);
        let exact = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeConfig {
                growth: TreeGrowth::Exact,
                lambda: 0.0,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        let hist = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeConfig {
                growth: TreeGrowth::Histogram,
                lambda: 0.0,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(exact, hist);
    }

    #[test]
    fn fit_binned_trains_on_row_subsets() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 10.0 }).collect();
        let (g, h) = squared_loss_grads(&y);
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), 256);
        // Train on the even rows only.
        let rows: Vec<usize> = (0..20).step_by(2).collect();
        let cfg = TreeConfig {
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit_binned(&binned, &g, &h, &rows, &cfg).unwrap();
        assert!((tree.predict(&[2.0]) - 0.0).abs() < 1e-9);
        assert!((tree.predict(&[16.0]) - 10.0).abs() < 1e-9);

        assert!(matches!(
            RegressionTree::fit_binned(&binned, &g, &h, &[], &cfg),
            Err(MlError::EmptyTrainingSet)
        ));
        assert!(matches!(
            RegressionTree::fit_binned(&binned, &g[..5], &h[..5], &rows, &cfg),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn nan_features_degrade_without_panicking_in_both_growth_modes() {
        // Large enough that the stdlib sort detects a non-total-order
        // comparator (the seed's partial_cmp fallback panicked here).
        // Cover both NaN signs: negative NaN (the x86-64 runtime default)
        // sorts first under plain total_cmp and needs the nan_last order.
        let neg_nan = f64::from_bits(0xFFF8_0000_0000_0000);
        let mut x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        x[7][0] = f64::NAN;
        x[11][0] = neg_nan;
        x[19][1] = neg_nan;
        let g: Vec<f64> = (0..30).map(|i| -(i as f64)).collect();
        let h = vec![1.0; 30];
        for growth in [TreeGrowth::Exact, TreeGrowth::Histogram] {
            let cfg = TreeConfig {
                growth,
                ..TreeConfig::default()
            };
            let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
            assert!(tree.predict(&[15.0, 0.0]).is_finite(), "{growth:?}");
            assert!(tree.predict(&x[7]).is_finite(), "{growth:?} on NaN row");
            // No split may carry a NaN threshold: every training row must
            // route deterministically.
            for node in 0..tree.node_count() {
                if let Node::Split { threshold, .. } = tree.nodes[node] {
                    assert!(threshold.is_finite(), "{growth:?} NaN threshold");
                }
            }
        }
    }

    #[test]
    fn predict_binned_matches_predict_on_training_rows() {
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 13) as f64, ((i * 7) % 11) as f64])
            .collect();
        let y: Vec<f64> = (0..60).map(|i| ((i * 3) % 8) as f64).collect();
        let (g, h) = squared_loss_grads(&y);
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), 256);
        let rows: Vec<usize> = (0..60).collect();
        let tree =
            RegressionTree::fit_binned(&binned, &g, &h, &rows, &TreeConfig::default()).unwrap();
        assert!(tree.supports_binned_predict());
        for (i, row) in x.iter().enumerate() {
            assert_eq!(tree.predict(row), tree.predict_binned(&binned, i));
        }
        // Rows appended with preserved edges stay routable.
        let mut grown = binned.clone();
        let mut more = x.clone();
        more.push(vec![6.0, 3.0]);
        grown.append_from(MatrixView::Rows(&more));
        assert_eq!(
            tree.predict(&[6.0, 3.0]),
            tree.predict_binned(&grown, more.len() - 1)
        );
    }

    #[test]
    fn exact_trees_do_not_support_binned_predict() {
        let x = vec![vec![0.0], vec![1.0]];
        let tree = RegressionTree::fit(
            &x,
            &[-1.0, 1.0],
            &[1.0, 1.0],
            &TreeConfig {
                growth: TreeGrowth::Exact,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        assert!(!tree.supports_binned_predict());
    }

    #[test]
    fn parallel_fills_grow_identical_trees() {
        // Clears both parallel gates (build cells and fill rows) so the
        // fan-out actually runs; the fitted tree must be structurally
        // identical to the sequential one — the n_threads knob may only
        // change wall-clock time, never the model.
        let n = 5000;
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    f64::from(i % 611) * 0.5,
                    f64::from((i * 31) % 257),
                    f64::from((i * 7) % 13),
                ]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 0.25 - r[1] * 0.1 + r[2]).collect();
        let (g, h) = squared_loss_grads(&y);
        let seq_cfg = TreeConfig {
            max_depth: 5,
            max_bins: 64,
            ..TreeConfig::default()
        };
        let par_cfg = TreeConfig {
            n_threads: 4,
            ..seq_cfg.clone()
        };
        let sequential = RegressionTree::fit(&x, &g, &h, &seq_cfg).unwrap();
        let parallel = RegressionTree::fit(&x, &g, &h, &par_cfg).unwrap();
        assert_eq!(sequential, parallel);
        // And with subtraction disabled (direct fills on both children).
        let direct_par = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeConfig {
                hist_subtraction: false,
                ..par_cfg
            },
        )
        .unwrap();
        let direct_seq = RegressionTree::fit(
            &x,
            &g,
            &h,
            &TreeConfig {
                hist_subtraction: false,
                ..seq_cfg
            },
        )
        .unwrap();
        assert_eq!(direct_seq, direct_par);
    }

    #[test]
    fn predict_at_matches_predict() {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, ((i * 7) % 5) as f64])
            .collect();
        let y: Vec<f64> = (0..30).map(|i| (i % 4) as f64).collect();
        let (g, h) = squared_loss_grads(&y);
        let tree = RegressionTree::fit(&x, &g, &h, &TreeConfig::default()).unwrap();
        let m = nurd_linalg::FeatureMatrix::from_rows(&x).unwrap();
        for (i, row) in x.iter().enumerate() {
            assert_eq!(tree.predict(row), tree.predict_at(MatrixView::Rows(&x), i));
            assert_eq!(tree.predict(row), tree.predict_at(m.view(), i));
        }
    }

    proptest! {
        /// Leaf predictions stay within the hull of the Newton-optimal
        /// per-sample weights (for unit hessians, within [-max|g|, max|g|]).
        #[test]
        fn prop_predictions_bounded_by_gradient_hull(
            ys in proptest::collection::vec(-100.0..100.0f64, 2..40)) {
            let x: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
            let (g, h) = squared_loss_grads(&ys);
            let cfg = TreeConfig { lambda: 0.0, ..TreeConfig::default() };
            let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for i in 0..ys.len() {
                let p = tree.predict(&[i as f64]);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }
        }

        /// Tree structure respects depth limits for random targets.
        #[test]
        fn prop_depth_bounded(ys in proptest::collection::vec(-10.0..10.0f64, 2..64),
                              depth in 1usize..5) {
            let x: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
            let (g, h) = squared_loss_grads(&ys);
            let cfg = TreeConfig { max_depth: depth, ..TreeConfig::default() };
            let tree = RegressionTree::fit(&x, &g, &h, &cfg).unwrap();
            prop_assert!(tree.depth() <= depth);
        }

        /// **Exact ≡ histogram**: whenever every feature has at most
        /// `max_bins` distinct values, the two growth strategies must
        /// produce *identical* trees — same structure, same features,
        /// bit-for-bit the same thresholds and leaf weights. Features are
        /// drawn from a small value pool to force that regime while still
        /// exercising ties, duplicates, and multi-feature interaction.
        ///
        /// Runs with `hist_subtraction: false`: direct accumulation is the
        /// reference whose per-bin sums match the exact builder's
        /// tie-breaking bit-for-bit. The subtraction path derives sibling
        /// histograms with addition-reordering ulps, which can flip the
        /// winner between two *equally good* splits (same partition via a
        /// different feature) — semantically equivalent trees that fail
        /// structural equality; `prop_subtraction_matches_direct` covers
        /// that path at prediction level.
        #[test]
        fn prop_histogram_equals_exact_when_bins_cover_values(
            pool_picks in proptest::collection::vec(
                proptest::collection::vec(0usize..12, 3), 4..48),
            ys in proptest::collection::vec(-50.0..50.0f64, 48),
            depth in 1usize..5) {
            // 12 possible values per feature << max_bins = 256.
            let values = [-3.0, -1.5, -0.75, 0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
            let x: Vec<Vec<f64>> = pool_picks
                .iter()
                .map(|picks| picks.iter().map(|&p| values[p]).collect())
                .collect();
            let n = x.len();
            let (g, h) = squared_loss_grads(&ys[..n]);
            let exact_cfg = TreeConfig {
                growth: TreeGrowth::Exact,
                max_depth: depth,
                ..TreeConfig::default()
            };
            let hist_cfg = TreeConfig {
                growth: TreeGrowth::Histogram,
                hist_subtraction: false,
                max_depth: depth,
                ..TreeConfig::default()
            };
            let exact = RegressionTree::fit(&x, &g, &h, &exact_cfg).unwrap();
            let hist = RegressionTree::fit(&x, &g, &h, &hist_cfg).unwrap();
            prop_assert_eq!(&exact, &hist);
        }

        /// **Histogram subtraction ≡ direct accumulation**: deriving the
        /// larger child as `parent − smaller` must train a model whose
        /// predictions match the direct-accumulation reference on every
        /// training row. Tolerance (not bitwise) because the derived
        /// gradient sums carry addition-reordering ulps that may pick a
        /// different-but-equal split when two candidates tie exactly.
        #[test]
        fn prop_subtraction_matches_direct(
            cols in proptest::collection::vec(
                proptest::collection::vec(-100.0..100.0f64, 3), 4..64),
            depth in 1usize..6) {
            let x: Vec<Vec<f64>> = cols;
            let ys: Vec<f64> = x.iter().map(|r| r[0] * 0.5 - r[1] + r[2] * r[2] * 0.01).collect();
            let (g, h) = squared_loss_grads(&ys);
            let direct_cfg = TreeConfig {
                hist_subtraction: false,
                max_depth: depth,
                max_bins: 16, // force real quantization, not one-bin-per-value
                ..TreeConfig::default()
            };
            let sub_cfg = TreeConfig {
                hist_subtraction: true,
                ..direct_cfg.clone()
            };
            let direct = RegressionTree::fit(&x, &g, &h, &direct_cfg).unwrap();
            let sub = RegressionTree::fit(&x, &g, &h, &sub_cfg).unwrap();
            let scale = ys.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for row in &x {
                let (a, b) = (direct.predict(row), sub.predict(row));
                prop_assert!(
                    (a - b).abs() <= 1e-9 * scale,
                    "direct {a} vs subtraction {b}"
                );
            }
        }
    }
}
