//! Brute-force k-nearest-neighbor queries.
//!
//! Training sets in the online protocol are at most a few thousand points in
//! ≤ 15 dimensions, where brute force beats tree indices in practice and is
//! trivially correct. Several outlier detectors (KNN, LOF, COF, ABOD, SOD,
//! LSCP) sit on top of this.

use crate::MlError;

/// A brute-force nearest-neighbor index over an owned point set.
///
/// # Example
///
/// ```
/// use nurd_ml::NearestNeighbors;
///
/// # fn main() -> Result<(), nurd_ml::MlError> {
/// let nn = NearestNeighbors::new(vec![vec![0.0], vec![1.0], vec![5.0]])?;
/// let hits = nn.query(&[0.9], 2);
/// assert_eq!(hits[0].0, 1); // nearest is the point at 1.0
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NearestNeighbors {
    points: Vec<Vec<f64>>,
}

impl NearestNeighbors {
    /// Builds an index over `points`.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] on empty input,
    /// [`MlError::DimensionMismatch`] on ragged rows.
    pub fn new(points: Vec<Vec<f64>>) -> Result<Self, MlError> {
        let dummy = vec![0.0; points.len()];
        crate::error::check_xy(&points, &dummy)?;
        Ok(NearestNeighbors { points })
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty (never true for a constructed index).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points.
    #[must_use]
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The `k` nearest indexed points to `query`, as `(index, distance)`
    /// sorted by ascending distance. Returns fewer than `k` entries when the
    /// index is smaller than `k`.
    #[must_use]
    pub fn query(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut dists: Vec<(usize, f64)> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| (i, nurd_linalg::euclidean_distance(query, p)))
            .collect();
        let k = k.min(dists.len());
        dists.select_nth_unstable_by(k.saturating_sub(1), |a, b| {
            a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)
        });
        dists.truncate(k);
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        dists
    }

    /// The `k` nearest neighbors of the indexed point `i`, excluding itself.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn neighbors_of(&self, i: usize, k: usize) -> Vec<(usize, f64)> {
        let hits = self.query(&self.points[i], k + 1);
        hits.into_iter().filter(|&(j, _)| j != i).take(k).collect()
    }

    /// For every indexed point, the distances to its `k` nearest neighbors
    /// (self excluded), sorted ascending. The backbone of KNN/LOF scores.
    #[must_use]
    pub fn all_knn_distances(&self, k: usize) -> Vec<Vec<(usize, f64)>> {
        (0..self.points.len())
            .map(|i| self.neighbors_of(i, k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn query_orders_by_distance() {
        let nn = NearestNeighbors::new(vec![vec![0.0], vec![2.0], vec![10.0], vec![3.0]]).unwrap();
        let hits = nn.query(&[2.4], 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits[1].0, 3);
        assert_eq!(hits[2].0, 0);
        assert!(hits[0].1 <= hits[1].1 && hits[1].1 <= hits[2].1);
    }

    #[test]
    fn neighbors_of_excludes_self() {
        let nn = NearestNeighbors::new(vec![vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let hits = nn.neighbors_of(1, 2);
        assert!(hits.iter().all(|&(j, _)| j != 1));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn k_larger_than_index_is_clamped() {
        let nn = NearestNeighbors::new(vec![vec![0.0], vec![1.0]]).unwrap();
        assert_eq!(nn.query(&[0.5], 10).len(), 2);
        assert_eq!(nn.neighbors_of(0, 10).len(), 1);
    }

    #[test]
    fn duplicate_points_are_zero_distance_neighbors() {
        let nn = NearestNeighbors::new(vec![vec![1.0], vec![1.0], vec![5.0]]).unwrap();
        let hits = nn.neighbors_of(0, 1);
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            NearestNeighbors::new(vec![]),
            Err(MlError::EmptyTrainingSet)
        ));
    }

    proptest! {
        /// query(k) returns a prefix of the fully sorted distance list.
        #[test]
        fn prop_query_matches_full_sort(points in proptest::collection::vec(
            proptest::collection::vec(-50.0..50.0f64, 2), 2..24),
            probe in proptest::collection::vec(-50.0..50.0f64, 2),
            k in 1usize..8) {
            let nn = NearestNeighbors::new(points.clone()).unwrap();
            let fast = nn.query(&probe, k);
            let mut slow: Vec<(usize, f64)> = points
                .iter()
                .enumerate()
                .map(|(i, p)| (i, nurd_linalg::euclidean_distance(&probe, p)))
                .collect();
            slow.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            for (f, s) in fast.iter().zip(slow.iter()) {
                prop_assert!((f.1 - s.1).abs() < 1e-12);
            }
        }
    }
}
