//! L2-regularized logistic regression fit by IRLS (Newton-Raphson).

use nurd_linalg::{Cholesky, Matrix, MatrixView};

use crate::MlError;

/// Hyperparameters for [`LogisticRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticConfig {
    /// L2 penalty strength on the weights (not the intercept).
    pub l2: f64,
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the max weight update.
    pub tol: f64,
    /// Reweight samples so both classes contribute equally (each sample of
    /// class `c` gets weight `n / (2 n_c)`). Essential for propensity
    /// estimation on heavily imbalanced finished-vs-running splits, where
    /// an unweighted fit depresses every probability toward the base rate.
    pub balanced: bool,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            // Unit L2 (the scikit-learn default of C = 1) in standardized
            // feature space. Meaningful regularization is essential here:
            // right after warmup only a handful of tasks have finished, and
            // a d-dimensional fit separates any ≤ d points perfectly,
            // saturating every probability without it.
            l2: 1.0,
            max_iter: 50,
            tol: 1e-8,
            balanced: false,
        }
    }
}

/// Binary logistic regression: `P(y = 1 | x) = σ(w·x + b)`.
///
/// This is the propensity-score estimator `g_t` of the paper (Eq. 2): the
/// conditional probability that a task belongs to the finished class given
/// its features — the paper follows the epidemiology literature (Cepeda et
/// al.) in using logistic regression for propensity scores.
///
/// Features are standardized internally, so callers can pass raw data.
///
/// # Example
///
/// ```
/// use nurd_ml::{LogisticConfig, LogisticRegression};
///
/// # fn main() -> Result<(), nurd_ml::MlError> {
/// let x = vec![vec![-2.0], vec![-1.0], vec![1.0], vec![2.0]];
/// let y = vec![0.0, 0.0, 1.0, 1.0];
/// let model = LogisticRegression::fit(&x, &y, &LogisticConfig::default())?;
/// assert!(model.predict_proba(&[1.5]) > 0.5);
/// assert!(model.predict_proba(&[-1.5]) < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    intercept: f64,
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
    iterations: usize,
}

impl LogisticRegression {
    /// Fits the model; labels must be in `{0, 1}`.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] / [`MlError::DimensionMismatch`] on bad
    /// shapes, [`MlError::InvalidConfig`] on labels outside `{0, 1}`,
    /// [`MlError::OptimizationFailed`] if the damped Newton system stays
    /// singular.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &LogisticConfig) -> Result<Self, MlError> {
        Self::fit_view(MatrixView::Rows(x), y, config)
    }

    /// Fits the model over any matrix layout without cloning caller rows
    /// (the standardized working copy is a single flat allocation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogisticRegression::fit`].
    pub fn fit_view(
        x: MatrixView<'_>,
        y: &[f64],
        config: &LogisticConfig,
    ) -> Result<Self, MlError> {
        Self::fit_view_warm(x, y, config, None)
    }

    /// As [`LogisticRegression::fit_view`], warm-starting IRLS from a
    /// previously fitted model when one is supplied.
    ///
    /// NURD refits its propensity model `g_t` at every checkpoint on a
    /// training set that differs from the previous checkpoint's by a
    /// handful of rows, so the previous optimum is an excellent Newton
    /// starting point. The seed's coefficients are remapped from *its*
    /// standardization (means/stds move as rows accumulate) into the new
    /// fit's before seeding, so the seeded objective starts at the old
    /// optimum evaluated on the new data. Because the penalized
    /// log-likelihood is strictly concave, warm and cold starts converge
    /// to the same optimum (within `tol`); warm starts just take fewer
    /// Newton iterations — see [`LogisticRegression::iterations`].
    ///
    /// The warm path is best-effort: a seed with a different feature
    /// count, non-finite remapped coefficients, or a seeded solve that
    /// fails outright falls back to the cold fit. `warm = None` is
    /// exactly [`LogisticRegression::fit_view`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogisticRegression::fit`] (after any cold
    /// fallback).
    pub fn fit_view_warm(
        x: MatrixView<'_>,
        y: &[f64],
        config: &LogisticConfig,
        warm: Option<&LogisticRegression>,
    ) -> Result<Self, MlError> {
        let d = crate::error::check_view(x, y)?;
        if y.iter().any(|&v| v != 0.0 && v != 1.0) {
            return Err(MlError::InvalidConfig("labels must be 0.0 or 1.0".into()));
        }

        let n = x.rows();
        // Standardize features so IRLS is well-conditioned. The working
        // copy is one contiguous row-major buffer (stride `d`), filled
        // column by column straight from the view.
        let mut xs = vec![0.0; n * d];
        let mut means = vec![0.0; d];
        let mut stds = vec![0.0; d];
        let mut column: Vec<f64> = Vec::with_capacity(n);
        for j in 0..d {
            x.gather_column(j, &mut column);
            let mean = column.iter().sum::<f64>() / n as f64;
            let var = column.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
            // Same floor convention as `nurd_linalg::standardize_columns`:
            // constant columns map to zero rather than NaN.
            let mut std = var.sqrt();
            if std < 1e-12 {
                std = 1.0;
            }
            means[j] = mean;
            stds[j] = std;
            for (i, &v) in column.iter().enumerate() {
                xs[i * d + j] = (v - mean) / std;
            }
        }
        // Per-sample weights: uniform, or inverse class frequency.
        let sample_weights: Vec<f64> = if config.balanced {
            let n_pos = y.iter().filter(|&&v| v == 1.0).count().max(1) as f64;
            let n_neg = (y.len() - n_pos as usize).max(1) as f64;
            let total = y.len() as f64;
            y.iter()
                .map(|&v| {
                    if v == 1.0 {
                        total / (2.0 * n_pos)
                    } else {
                        total / (2.0 * n_neg)
                    }
                })
                .collect()
        } else {
            vec![1.0; n]
        };

        // Augment with intercept column: index d is the bias. A warm seed
        // starts Newton at the previous optimum remapped into the current
        // standardization; a failed seeded solve falls back to cold.
        let cold_start = || vec![0.0; d + 1];
        let (beta, iterations) = match warm.and_then(|prev| remap_seed(prev, &means, &stds, d)) {
            Some(seed) => irls(&xs, d, y, &sample_weights, config, seed)
                .or_else(|_| irls(&xs, d, y, &sample_weights, config, cold_start()))?,
            None => irls(&xs, d, y, &sample_weights, config, cold_start())?,
        };

        Ok(LogisticRegression {
            weights: beta[..d].to_vec(),
            intercept: beta[d],
            feature_means: means,
            feature_stds: stds,
            iterations,
        })
    }
}

/// Translates a previously fitted model's coefficients into the
/// standardized space defined by `means`/`stds`, preserving the model's
/// raw-feature decision function exactly. Returns `None` when the seed is
/// unusable (feature-count mismatch or non-finite remap).
fn remap_seed(
    prev: &LogisticRegression,
    means: &[f64],
    stds: &[f64],
    d: usize,
) -> Option<Vec<f64>> {
    if prev.weights.len() != d {
        return None;
    }
    let mut beta = vec![0.0; d + 1];
    let mut intercept = prev.intercept;
    for j in 0..d {
        let raw_slope = prev.weights[j] / prev.feature_stds[j];
        beta[j] = raw_slope * stds[j];
        intercept += raw_slope * (means[j] - prev.feature_means[j]);
    }
    beta[d] = intercept;
    beta.iter().all(|v| v.is_finite()).then_some(beta)
}

/// Damped, line-searched IRLS (Newton-Raphson) on the penalized
/// log-likelihood, started from `beta`. Returns the solution and the
/// number of Newton iterations taken.
fn irls(
    xs: &[f64],
    d: usize,
    y: &[f64],
    sample_weights: &[f64],
    config: &LogisticConfig,
    beta: Vec<f64>,
) -> Result<(Vec<f64>, usize), MlError> {
    let n = y.len();
    let mut beta = beta;
    let mut iterations = 0;
    let mut objective = penalized_log_likelihood(xs, d, y, sample_weights, &beta, config.l2);
    for _iter in 0..config.max_iter {
        iterations += 1;
        // Gradient and Hessian of the penalized log-likelihood.
        let mut grad = vec![0.0; d + 1];
        let mut hess = Matrix::zeros(d + 1, d + 1);
        for i in 0..n {
            let row = &xs[i * d..(i + 1) * d];
            let z = beta[d] + nurd_linalg::dot(&beta[..d], row);
            let p = crate::sigmoid(z);
            let sw = sample_weights[i];
            let w = (sw * p * (1.0 - p)).max(1e-9);
            let resid = sw * (y[i] - p);
            for a in 0..d {
                grad[a] += resid * row[a];
                for b in a..d {
                    let v = hess.get(a, b) + w * row[a] * row[b];
                    hess.set(a, b, v);
                }
                let v = hess.get(a, d) + w * row[a];
                hess.set(a, d, v);
            }
            grad[d] += resid;
            let v = hess.get(d, d) + w;
            hess.set(d, d, v);
        }
        for a in 0..d {
            grad[a] -= config.l2 * beta[a];
            let v = hess.get(a, a) + config.l2;
            hess.set(a, a, v);
            for b in 0..a {
                hess.set(a, b, hess.get(b, a));
            }
        }
        for b in 0..d {
            hess.set(d, b, hess.get(b, d));
        }

        // Damped Cholesky solve: add ridge until positive definite.
        let mut damping = 0.0;
        let step = loop {
            let damped = if damping == 0.0 {
                hess.clone()
            } else {
                hess.add(&Matrix::identity(d + 1).scaled(damping))
                    .expect("shapes match")
            };
            match Cholesky::decompose(&damped) {
                Ok(chol) => {
                    break chol.solve(&grad).map_err(|e| {
                        MlError::OptimizationFailed(format!("newton solve failed: {e}"))
                    })?
                }
                Err(_) => {
                    damping = if damping == 0.0 { 1e-6 } else { damping * 10.0 };
                    if damping > 1e6 {
                        return Err(MlError::OptimizationFailed(
                            "hessian is singular beyond repair".into(),
                        ));
                    }
                }
            }
        };

        // Backtracking line search on the penalized log-likelihood:
        // a raw Newton step explodes once the sigmoid saturates under
        // (near-)perfect separation, so only accept ascent steps.
        let mut alpha = 1.0;
        let mut accepted = false;
        let mut max_update = 0.0f64;
        for _ in 0..30 {
            let candidate: Vec<f64> = beta.iter().zip(&step).map(|(b, s)| b + alpha * s).collect();
            let cand_obj =
                penalized_log_likelihood(xs, d, y, sample_weights, &candidate, config.l2);
            if cand_obj > objective {
                max_update = step.iter().fold(0.0, |m, s| m.max((alpha * s).abs()));
                beta = candidate;
                objective = cand_obj;
                accepted = true;
                break;
            }
            alpha *= 0.5;
        }
        if !accepted || max_update < config.tol {
            break; // converged (no ascent direction improves the objective)
        }
    }
    Ok((beta, iterations))
}

impl LogisticRegression {
    /// Probability `P(y = 1 | x)`.
    ///
    /// # Panics
    ///
    /// Panics if `features` has a different width than the training data.
    #[must_use]
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.weights.len(), "feature width mismatch");
        let mut z = self.intercept;
        for ((&f, &w), (&m, &s)) in features
            .iter()
            .zip(&self.weights)
            .zip(self.feature_means.iter().zip(&self.feature_stds))
        {
            z += w * (f - m) / s;
        }
        crate::sigmoid(z)
    }

    /// Probabilities for a batch of samples.
    #[must_use]
    pub fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_proba(x)).collect()
    }

    /// Probabilities for every row of a matrix view (no row copies).
    #[must_use]
    pub fn predict_proba_view(&self, xs: MatrixView<'_>) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_proba_view_into(xs, &mut out);
        out
    }

    /// As [`LogisticRegression::predict_proba_view`], but filling a
    /// caller-owned buffer (cleared and refilled) — the serving hot path's
    /// allocation-free variant.
    pub fn predict_proba_view_into(&self, xs: MatrixView<'_>, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..xs.rows()).map(|i| {
            let mut z = self.intercept;
            for (c, (&w, (&m, &s))) in self
                .weights
                .iter()
                .zip(self.feature_means.iter().zip(&self.feature_stds))
                .enumerate()
            {
                z += w * (xs.get(i, c) - m) / s;
            }
            crate::sigmoid(z)
        }));
    }

    /// Learned weights in standardized feature space.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept in standardized feature space.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Newton iterations the fit took — the quantity warm starts shrink
    /// (see [`LogisticRegression::fit_view_warm`]).
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// Weighted penalized Bernoulli log-likelihood
/// `Σ wᵢ [y·z − ln(1 + eᶻ)] − ½λ‖w‖²` (intercept unpenalized), evaluated
/// with the stable `ln(1+eᶻ)` form. `xs` is row-major with stride `d`.
fn penalized_log_likelihood(
    xs: &[f64],
    d: usize,
    y: &[f64],
    sample_weights: &[f64],
    beta: &[f64],
    l2: f64,
) -> f64 {
    debug_assert_eq!(beta.len(), d + 1);
    let mut ll = 0.0;
    for ((row, &yi), &sw) in xs.chunks_exact(d).zip(y).zip(sample_weights) {
        let z = beta[d] + nurd_linalg::dot(&beta[..d], row);
        // ln(1 + e^z) = max(z, 0) + ln(1 + e^{-|z|})
        let log1pexp = z.max(0.0) + (-z.abs()).exp().ln_1p();
        ll += sw * (yi * z - log1pexp);
    }
    ll - 0.5 * l2 * nurd_linalg::dot(&beta[..d], &beta[..d])
}

impl nurd_codec::Checkpointable for LogisticRegression {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        self.weights.encode(enc);
        enc.put_f64(self.intercept);
        self.feature_means.encode(enc);
        self.feature_stds.encode(enc);
        enc.put_usize(self.iterations);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(LogisticRegression {
            weights: nurd_codec::Checkpointable::decode(dec)?,
            intercept: dec.take_f64()?,
            feature_means: nurd_codec::Checkpointable::decode(dec)?,
            feature_stds: nurd_codec::Checkpointable::decode(dec)?,
            iterations: dec.take_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn separable_data_orders_probabilities() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let m = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
        assert!(m.predict_proba(&[0.0]) < 0.1);
        assert!(m.predict_proba(&[19.0]) > 0.9);
    }

    #[test]
    fn recovers_known_coefficients_approximately() {
        // Generate from a known logistic model and check sign/ordering.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i % 20) as f64 / 10.0 - 1.0;
            let b = ((i / 20) % 10) as f64 / 5.0 - 1.0;
            let p = crate::sigmoid(3.0 * a - 2.0 * b);
            x.push(vec![a, b]);
            y.push(if p > 0.5 { 1.0 } else { 0.0 });
        }
        let m = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
        assert!(m.weights()[0] > 0.0, "weight on a should be positive");
        assert!(m.weights()[1] < 0.0, "weight on b should be negative");
    }

    #[test]
    fn balanced_coin_gives_half() {
        let x = vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let m = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
        assert!((m.predict_proba(&[1.0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn single_class_saturates_safely() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1.0, 1.0, 1.0];
        let m = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
        assert!(m.predict_proba(&[2.0]) > 0.9);
    }

    #[test]
    fn rejects_non_binary_labels() {
        let x = vec![vec![1.0]];
        assert!(matches!(
            LogisticRegression::fit(&x, &[0.5], &LogisticConfig::default()),
            Err(MlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            LogisticRegression::fit(&[], &[], &LogisticConfig::default()),
            Err(MlError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn constant_feature_does_not_crash() {
        let x = vec![
            vec![5.0, 0.0],
            vec![5.0, 1.0],
            vec![5.0, 2.0],
            vec![5.0, 3.0],
        ];
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let m = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
        assert!(m.predict_proba(&[5.0, 3.0]) > m.predict_proba(&[5.0, 0.0]));
    }

    /// Synthetic propensity-style data: label = finished-looking features.
    fn drifting_set(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                vec![
                    ((i * 29) % 23) as f64 / 23.0 + 0.2 * t,
                    ((i * 11) % 17) as f64 / 17.0,
                ]
            })
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| f64::from(2.0 * r[0] - r[1] > 0.55))
            .collect();
        (x, y)
    }

    #[test]
    fn warm_start_matches_cold_optimum_in_fewer_iterations() {
        let (x, y) = drifting_set(240);
        let cfg = LogisticConfig::default();
        // Checkpoint 1: fit the first 200 rows cold.
        let prev = LogisticRegression::fit(&x[..200], &y[..200], &cfg).unwrap();
        // Checkpoint 2: 40 new rows arrive; refit cold and warm.
        let cold = LogisticRegression::fit(&x, &y, &cfg).unwrap();
        let warm =
            LogisticRegression::fit_view_warm(MatrixView::Rows(&x), &y, &cfg, Some(&prev)).unwrap();
        // Strictly concave objective: both converge to the same optimum.
        for row in &x {
            assert!(
                (cold.predict_proba(row) - warm.predict_proba(row)).abs() < 1e-5,
                "warm and cold optima diverged"
            );
        }
        // The warm start must not take more Newton iterations than cold
        // (on near-identical data it converges almost immediately).
        assert!(
            warm.iterations() <= cold.iterations(),
            "warm {} vs cold {} iterations",
            warm.iterations(),
            cold.iterations()
        );
        assert!(
            cold.iterations() >= 2,
            "fixture too easy to measure savings"
        );
    }

    #[test]
    fn warm_seed_remap_preserves_decision_function() {
        // Seeding across a pure shift/scale of the data distribution:
        // the remapped seed must reproduce the previous model's raw-space
        // probabilities exactly at iteration zero — verified indirectly
        // by fitting with max_iter = 0-equivalent (tol huge) and checking
        // probabilities match the seed model.
        let (x, y) = drifting_set(200);
        let cfg = LogisticConfig::default();
        let prev = LogisticRegression::fit(&x[..150], &y[..150], &cfg).unwrap();
        let frozen_cfg = LogisticConfig {
            max_iter: 0,
            ..cfg.clone()
        };
        let seeded =
            LogisticRegression::fit_view_warm(MatrixView::Rows(&x), &y, &frozen_cfg, Some(&prev))
                .unwrap();
        for row in &x {
            assert!(
                (seeded.predict_proba(row) - prev.predict_proba(row)).abs() < 1e-9,
                "remapped seed changed the decision function"
            );
        }
    }

    #[test]
    fn incompatible_seed_falls_back_to_cold() {
        let (x, y) = drifting_set(120);
        let cfg = LogisticConfig::default();
        // Seed trained on a different feature width.
        let narrow: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0]]).collect();
        let seed = LogisticRegression::fit(&narrow, &y, &cfg).unwrap();
        let warm =
            LogisticRegression::fit_view_warm(MatrixView::Rows(&x), &y, &cfg, Some(&seed)).unwrap();
        let cold = LogisticRegression::fit(&x, &y, &cfg).unwrap();
        assert_eq!(warm.iterations(), cold.iterations());
        for row in &x {
            assert_eq!(warm.predict_proba(row), cold.predict_proba(row));
        }
    }

    proptest! {
        /// Output is always a probability.
        #[test]
        fn prop_output_in_unit_interval(
            labels in proptest::collection::vec(0u8..2, 4..32),
            probe in -100.0..100.0f64) {
            let x: Vec<Vec<f64>> = (0..labels.len()).map(|i| vec![i as f64]).collect();
            let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
            let m = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
            let p = m.predict_proba(&[probe]);
            prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }

        /// Predictions are monotone in a single feature whose weight is
        /// positive (separable increasing labels).
        #[test]
        fn prop_monotone_when_separable(n in 6usize..24) {
            let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
            let y: Vec<f64> = (0..n).map(|i| if i < n / 2 { 0.0 } else { 1.0 }).collect();
            let m = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
            let mut prev = m.predict_proba(&[0.0]);
            for i in 1..n {
                let p = m.predict_proba(&[i as f64]);
                prop_assert!(p >= prev - 1e-9);
                prev = p;
            }
        }
    }
}
