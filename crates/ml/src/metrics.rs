//! Small metric helpers shared across crates.

/// Numerically stable logistic sigmoid `1 / (1 + e^{-z})`.
#[must_use]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Mean squared error between aligned slices.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
#[must_use]
pub fn mean_squared_error(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty inputs");
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64
}

/// Mean absolute error between aligned slices.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
#[must_use]
pub fn mean_absolute_error(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty inputs");
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Fraction of exactly matching labels.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
#[must_use]
pub fn accuracy(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty inputs");
    let hits = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
    hits as f64 / truth.len() as f64
}

/// Binary F1 score for `{0, 1}` labels (positive class = `1`); `0.0` when
/// there are no predicted or true positives.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn f1_score(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fne = 0.0;
    for (&t, &p) in truth.iter().zip(pred) {
        match (t == 1.0, p == 1.0) {
            (true, true) => tp += 1.0,
            (false, true) => fp += 1.0,
            (true, false) => fne += 1.0,
            (false, false) => {}
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fne);
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sigmoid_midpoint_and_limits() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(-800.0) >= 0.0); // no underflow panic
        assert!(sigmoid(800.0) <= 1.0);
    }

    #[test]
    fn mse_mae_fixture() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 3.0, 1.0];
        assert!((mean_squared_error(&t, &p) - 5.0 / 3.0).abs() < 1e-12);
        assert!((mean_absolute_error(&t, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_fixture() {
        assert_eq!(accuracy(&[1.0, 0.0, 1.0], &[1.0, 1.0, 1.0]), 2.0 / 3.0);
    }

    #[test]
    fn f1_perfect_and_degenerate() {
        assert_eq!(f1_score(&[1.0, 0.0], &[1.0, 0.0]), 1.0);
        assert_eq!(f1_score(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert_eq!(f1_score(&[1.0, 1.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn f1_known_value() {
        // tp=1, fp=1, fn=1 → precision=recall=0.5 → F1=0.5.
        let truth = [1.0, 1.0, 0.0, 0.0];
        let pred = [1.0, 0.0, 1.0, 0.0];
        assert!((f1_score(&truth, &pred) - 0.5).abs() < 1e-12);
    }

    proptest! {
        /// Sigmoid is monotone and bounded.
        #[test]
        fn prop_sigmoid_monotone(a in -50.0..50.0f64, b in -50.0..50.0f64) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(sigmoid(lo) <= sigmoid(hi));
            prop_assert!((0.0..=1.0).contains(&sigmoid(a)));
        }

        /// F1 is within [0, 1].
        #[test]
        fn prop_f1_bounded(labels in proptest::collection::vec(0u8..2, 1..32),
                           preds in proptest::collection::vec(0u8..2, 1..32)) {
            let n = labels.len().min(preds.len());
            let t: Vec<f64> = labels[..n].iter().map(|&v| v as f64).collect();
            let p: Vec<f64> = preds[..n].iter().map(|&v| v as f64).collect();
            let f1 = f1_score(&t, &p);
            prop_assert!((0.0..=1.0).contains(&f1));
        }
    }
}
