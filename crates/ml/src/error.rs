use std::error::Error;
use std::fmt;

/// Errors produced when fitting or applying models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Sample and label counts (or feature widths) disagree.
    DimensionMismatch {
        /// What the model expected.
        expected: String,
        /// What it was given.
        found: String,
    },
    /// A hyperparameter was out of its valid range.
    InvalidConfig(String),
    /// Optimization failed to make progress (e.g. singular Hessian that
    /// ridge damping could not repair).
    OptimizationFailed(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "training set is empty"),
            MlError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MlError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MlError::OptimizationFailed(msg) => write!(f, "optimization failed: {msg}"),
        }
    }
}

impl Error for MlError {}

/// Validates that a matrix view and `y` describe a consistent, non-empty
/// training set and returns the feature dimensionality.
pub(crate) fn check_view(x: nurd_linalg::MatrixView<'_>, y: &[f64]) -> Result<usize, MlError> {
    x.validated_dims(y.len()).map_err(|e| match e {
        nurd_linalg::LinalgError::Empty => MlError::EmptyTrainingSet,
        nurd_linalg::LinalgError::ShapeMismatch { expected, found } => {
            MlError::DimensionMismatch { expected, found }
        }
        other => MlError::InvalidConfig(other.to_string()),
    })
}

/// Validates that `x` and `y` describe a consistent, non-empty training set
/// and returns the feature dimensionality.
pub(crate) fn check_xy(x: &[Vec<f64>], y: &[f64]) -> Result<usize, MlError> {
    let first = x.first().ok_or(MlError::EmptyTrainingSet)?;
    if x.len() != y.len() {
        return Err(MlError::DimensionMismatch {
            expected: format!("{} labels", x.len()),
            found: format!("{} labels", y.len()),
        });
    }
    let d = first.len();
    if d == 0 {
        return Err(MlError::DimensionMismatch {
            expected: "at least one feature".into(),
            found: "zero-width rows".into(),
        });
    }
    for row in x {
        if row.len() != d {
            return Err(MlError::DimensionMismatch {
                expected: format!("rows of width {d}"),
                found: format!("row of width {}", row.len()),
            });
        }
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_xy_accepts_consistent_input() {
        let x = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(check_xy(&x, &[0.0, 1.0]).unwrap(), 2);
    }

    #[test]
    fn check_xy_rejects_empty() {
        assert_eq!(check_xy(&[], &[]), Err(MlError::EmptyTrainingSet));
    }

    #[test]
    fn check_xy_rejects_label_mismatch() {
        let x = vec![vec![1.0]];
        assert!(matches!(
            check_xy(&x, &[1.0, 2.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn check_xy_rejects_ragged_rows() {
        let x = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(matches!(
            check_xy(&x, &[1.0, 2.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn display_messages_lowercase() {
        assert!(MlError::EmptyTrainingSet
            .to_string()
            .starts_with("training"));
    }
}
