//! Gradient-boosted trees with Newton (second-order) updates.
//!
//! # The per-checkpoint refit hot path
//!
//! NURD refits this booster at every checkpoint of every job, so `fit` is
//! the single hottest code path in the repository. The implementation is
//! built around that fact:
//!
//! * the training matrix is accepted as a zero-copy [`MatrixView`]
//!   (row-major slices or a column-major
//!   [`nurd_linalg::FeatureMatrix`]) — rows are never cloned;
//! * under the default [`TreeGrowth::Histogram`](crate::TreeGrowth)
//!   growth, features are quantized into a [`BinnedMatrix`] **once per
//!   fit** and every round trains on it via
//!   [`RegressionTree::fit_binned`];
//! * per-round score updates replay the freshly fit tree over `u8` bin
//!   codes ([`RegressionTree::predict_binned`]) — raw `f64` features are
//!   never touched inside a histogram-mode fit;
//! * row subsampling selects *indices* into the shared binned matrix; the
//!   `subsample == 1.0` case short-circuits to a precomputed identity
//!   index list;
//! * across checkpoints, [`GradientBoosting::warm_start`] boosts a few
//!   new rounds from the previous ensemble over a binned matrix grown in
//!   place by [`BinnedMatrix::append_from`], instead of refitting from
//!   scratch ([`GradientBoosting::fit_binned`] covers the cold half of
//!   that path).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nurd_linalg::MatrixView;

use crate::binned::BinnedMatrix;
use crate::tree::{RegressionTree, TreeConfig, TreeGrowth};
use crate::MlError;

/// A twice-differentiable training loss for [`GradientBoosting`].
///
/// Implementors supply the gradient and hessian of the per-sample loss with
/// respect to the raw model score `f`. The trait is deliberately *not*
/// sealed: `nurd-survival` implements a Tobit loss on top of it to build
/// Grabit exactly as Sigrist & Hirnschall describe.
pub trait Loss {
    /// `(∂ℓ/∂f, ∂²ℓ/∂f²)` evaluated at raw score `f` for target `y`.
    ///
    /// Hessians must be non-negative; the booster floors them at `1e-12`.
    fn gradient_hessian(&self, y: f64, f: f64) -> (f64, f64);

    /// Initial raw score `f₀` minimizing the loss over the training targets
    /// (e.g. the mean for squared loss, the log-odds for logistic loss).
    fn base_score(&self, ys: &[f64]) -> f64;
}

/// Squared-error loss `½(f − y)²` for regression.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredLoss;

impl Loss for SquaredLoss {
    fn gradient_hessian(&self, y: f64, f: f64) -> (f64, f64) {
        (f - y, 1.0)
    }

    fn base_score(&self, ys: &[f64]) -> f64 {
        nurd_linalg::mean(ys)
    }
}

/// Logistic loss for binary classification; targets must be in `{0, 1}` and
/// the raw score is a logit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogisticLoss;

impl Loss for LogisticLoss {
    fn gradient_hessian(&self, y: f64, f: f64) -> (f64, f64) {
        let p = crate::sigmoid(f);
        (p - y, (p * (1.0 - p)).max(1e-12))
    }

    fn base_score(&self, ys: &[f64]) -> f64 {
        let p = nurd_linalg::mean(ys).clamp(1e-6, 1.0 - 1e-6);
        (p / (1.0 - p)).ln()
    }
}

/// Hyperparameters for [`GradientBoosting`].
#[derive(Debug, Clone, PartialEq)]
pub struct GbtConfig {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's output.
    pub learning_rate: f64,
    /// Per-tree structural parameters.
    pub tree: TreeConfig,
    /// Row subsampling fraction per round (`(0, 1]`).
    pub subsample: f64,
    /// RNG seed for row subsampling.
    pub seed: u64,
}

impl Default for GbtConfig {
    fn default() -> Self {
        GbtConfig {
            n_rounds: 60,
            learning_rate: 0.15,
            tree: TreeConfig::default(),
            subsample: 1.0,
            seed: 17,
        }
    }
}

/// Newton-boosted tree ensemble over an arbitrary [`Loss`].
///
/// This is the workhorse model of the reproduction: with [`SquaredLoss`] it
/// is the paper's GBTR baseline and NURD's latency head `h_t`; with
/// [`LogisticLoss`] it is a boosted classifier (XGBOD's supervised head);
/// `nurd-survival` plugs in a Tobit loss to obtain Grabit.
///
/// # Example
///
/// ```
/// use nurd_ml::{GbtConfig, GradientBoosting, LogisticLoss};
///
/// # fn main() -> Result<(), nurd_ml::MlError> {
/// let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
/// let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
/// let clf = GradientBoosting::fit(&x, &y, LogisticLoss, &GbtConfig::default())?;
/// assert!(clf.predict_proba(&[0.9]) > clf.predict_proba(&[0.1]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GradientBoosting<L: Loss> {
    loss: L,
    base_score: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
}

impl<L: Loss> GradientBoosting<L> {
    /// Fits the ensemble.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] / [`MlError::DimensionMismatch`] on bad
    /// input, [`MlError::InvalidConfig`] on out-of-range hyperparameters.
    pub fn fit(x: &[Vec<f64>], y: &[f64], loss: L, config: &GbtConfig) -> Result<Self, MlError> {
        Self::fit_view(MatrixView::Rows(x), y, loss, config)
    }

    /// Fits the ensemble over any matrix layout without copying rows: pass
    /// `MatrixView::RowSlices` for zero-copy checkpoint features or a
    /// column-major [`nurd_linalg::FeatureMatrix`] scratch buffer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBoosting::fit`].
    pub fn fit_view(
        x: MatrixView<'_>,
        y: &[f64],
        loss: L,
        config: &GbtConfig,
    ) -> Result<Self, MlError> {
        crate::error::check_view(x, y)?;
        check_gbt_config(config)?;

        // Quantize once; every boosting round (and every node of every
        // tree) trains against this shared binned matrix.
        let binned = match config.tree.growth {
            TreeGrowth::Histogram if config.n_rounds > 0 => {
                Some(BinnedMatrix::build_for(x, &config.tree))
            }
            _ => None,
        };

        let base_score = loss.base_score(y);
        let mut scores = vec![base_score; x.rows()];
        let mut trees = Vec::with_capacity(config.n_rounds);
        boost_rounds(
            binned.as_ref(),
            Some(x),
            y,
            &loss,
            config,
            config.n_rounds,
            config.learning_rate,
            config.seed,
            &mut scores,
            &mut trees,
        )?;

        Ok(GradientBoosting {
            loss,
            base_score,
            learning_rate: config.learning_rate,
            trees,
        })
    }

    /// Fits the ensemble over a pre-quantized [`BinnedMatrix`] (histogram
    /// growth implied; `config.tree.growth` is ignored). This is the
    /// warm-refit hot path: across consecutive checkpoints the caller
    /// keeps one binned matrix alive, grows it in place with
    /// [`BinnedMatrix::append_from`], and skips re-quantization entirely.
    ///
    /// # Errors
    ///
    /// [`MlError::DimensionMismatch`] when `y` does not match the matrix
    /// rows, [`MlError::InvalidConfig`] on out-of-range hyperparameters.
    pub fn fit_binned(
        binned: &BinnedMatrix,
        y: &[f64],
        loss: L,
        config: &GbtConfig,
    ) -> Result<Self, MlError> {
        Self::fit_binned_cached(binned, y, loss, config, &mut Vec::new())
    }

    /// As [`GradientBoosting::fit_binned`], but additionally leaves the
    /// fitted ensemble's raw per-row scores in `scores` (cleared and
    /// refilled), so a later [`GradientBoosting::warm_start_cached`] can
    /// continue boosting without replaying the whole ensemble.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBoosting::fit_binned`].
    pub fn fit_binned_cached(
        binned: &BinnedMatrix,
        y: &[f64],
        loss: L,
        config: &GbtConfig,
        scores: &mut Vec<f64>,
    ) -> Result<Self, MlError> {
        if binned.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        if y.len() != binned.rows() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} targets", binned.rows()),
                found: format!("{} targets", y.len()),
            });
        }
        check_gbt_config(config)?;
        let base_score = loss.base_score(y);
        scores.clear();
        scores.resize(binned.rows(), base_score);
        let mut trees = Vec::with_capacity(config.n_rounds);
        boost_rounds(
            Some(binned),
            None,
            y,
            &loss,
            config,
            config.n_rounds,
            config.learning_rate,
            config.seed,
            scores,
            &mut trees,
        )?;
        Ok(GradientBoosting {
            loss,
            base_score,
            learning_rate: config.learning_rate,
            trees,
        })
    }

    /// Boosts `extra_rounds` **new** trees on top of `prev` instead of
    /// refitting from scratch — the warm-start refit path. The previous
    /// ensemble's base score, learning rate, and trees are kept; new trees
    /// correct its residuals against the (typically grown) training set in
    /// `binned`/`y`.
    ///
    /// `binned` must carry the same bin edges the previous ensemble was
    /// trained against (the invariant [`BinnedMatrix::append_from`]
    /// preserves and a full rebuild breaks): previous trees are replayed
    /// over `u8` codes to reconstruct the ensemble's scores, and stale
    /// edges would silently mis-route rows. `config` supplies the new
    /// trees' structural parameters and subsampling; the learning rate is
    /// inherited from `prev` so old and new trees stay on one scale.
    ///
    /// Warm-starting with `extra_rounds == 0` returns a clone of `prev`.
    ///
    /// # Errors
    ///
    /// [`MlError::DimensionMismatch`] on a `y`/matrix row mismatch,
    /// [`MlError::InvalidConfig`] on bad hyperparameters or when `prev`
    /// contains exact-grown trees (no bin-code cache to replay).
    pub fn warm_start(
        prev: &Self,
        binned: &BinnedMatrix,
        y: &[f64],
        extra_rounds: usize,
        config: &GbtConfig,
    ) -> Result<Self, MlError>
    where
        L: Clone,
    {
        Self::warm_start_cached(prev, binned, y, extra_rounds, config, &mut Vec::new())
    }

    /// As [`GradientBoosting::warm_start`], with an externally cached raw
    /// score vector: on entry `scores[i]` must hold `prev`'s raw score for
    /// row `i` over however many leading rows the caller has cached (a
    /// vector left behind by a previous `warm_start_cached` /
    /// [`GradientBoosting::fit_binned_cached`] on the same binning, or
    /// empty); only the uncached suffix — typically the handful of rows
    /// appended since the last checkpoint — is reconstructed by replaying
    /// `prev` over bin codes. On success `scores` holds the *new*
    /// ensemble's raw scores for every row, ready for the next call.
    ///
    /// This turns the per-checkpoint replay cost from
    /// `O(ensemble × all rows)` into `O(ensemble × appended rows)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBoosting::warm_start`], plus
    /// [`MlError::DimensionMismatch`] when `scores` is longer than the
    /// matrix has rows (a stale cache from a different binning).
    pub fn warm_start_cached(
        prev: &Self,
        binned: &BinnedMatrix,
        y: &[f64],
        extra_rounds: usize,
        config: &GbtConfig,
        scores: &mut Vec<f64>,
    ) -> Result<Self, MlError>
    where
        L: Clone,
    {
        if binned.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        if y.len() != binned.rows() {
            return Err(MlError::DimensionMismatch {
                expected: format!("{} targets", binned.rows()),
                found: format!("{} targets", y.len()),
            });
        }
        if scores.len() > binned.rows() {
            return Err(MlError::DimensionMismatch {
                expected: format!("at most {} cached scores", binned.rows()),
                found: format!("{} cached scores", scores.len()),
            });
        }
        check_gbt_config(config)?;
        if prev.trees.iter().any(|t| !t.supports_binned_predict()) {
            return Err(MlError::InvalidConfig(
                "warm_start requires a histogram-grown previous ensemble".into(),
            ));
        }

        // Replay the previous ensemble over bin codes — u8 compares, no
        // f64 feature loads — for the rows the cache does not cover. The
        // flat batch kernel accumulates tree-by-tree in ensemble order,
        // bit-identical to the historical per-row `predict_binned` sum.
        let cached = scores.len();
        if cached < binned.rows() {
            prev.flatten()
                .predict_binned_extend(binned, cached..binned.rows(), scores);
        }

        let mut trees = prev.trees.clone();
        trees.reserve(extra_rounds);
        // Decorrelate warm-round subsampling from the cold fit's stream
        // (and from earlier warm stages) while staying deterministic.
        let seed = config
            .seed
            .wrapping_add((trees.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        boost_rounds(
            Some(binned),
            None,
            y,
            &prev.loss,
            config,
            extra_rounds,
            prev.learning_rate,
            seed,
            scores,
            &mut trees,
        )?;
        Ok(GradientBoosting {
            loss: prev.loss.clone(),
            base_score: prev.base_score,
            learning_rate: prev.learning_rate,
            trees,
        })
    }

    /// Raw additive score `f(x)` (the latency for squared loss, a logit for
    /// logistic loss).
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        let tree_sum: f64 = self.trees.iter().map(|t| t.predict(features)).sum();
        self.base_score + self.learning_rate * tree_sum
    }

    /// Raw scores for a batch of samples.
    #[must_use]
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Raw scores for every row of a matrix view (no row copies).
    #[must_use]
    pub fn predict_view(&self, xs: MatrixView<'_>) -> Vec<f64> {
        (0..xs.rows())
            .map(|i| {
                let tree_sum: f64 = self.trees.iter().map(|t| t.predict_at(xs, i)).sum();
                self.base_score + self.learning_rate * tree_sum
            })
            .collect()
    }

    /// Probability `σ(f(x))`; meaningful when the loss trains a logit
    /// (e.g. [`LogisticLoss`]).
    #[must_use]
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        crate::sigmoid(self.predict(features))
    }

    /// Number of fitted trees.
    #[must_use]
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// The loss the ensemble was trained with.
    #[must_use]
    pub fn loss(&self) -> &L {
        &self.loss
    }

    /// The constant initial score `f₀`.
    #[must_use]
    pub fn base_score(&self) -> f64 {
        self.base_score
    }

    /// The shrinkage each tree's output is scaled by.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Flattens the ensemble into the structure-of-arrays inference layout
    /// ([`crate::FlatForest`]) — bit-identical predictions, cache-friendly
    /// batch traversal. Rebuild after every refit / warm start; the flat
    /// copy does not track later changes to `self`.
    #[must_use]
    pub fn flatten(&self) -> crate::FlatForest {
        crate::FlatForest::from_trees(self.trees(), self.base_score, self.learning_rate)
    }

    /// Tree storage, ensemble order (the order every prediction sum folds
    /// them in).
    pub(crate) fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }
}

fn check_gbt_config(config: &GbtConfig) -> Result<(), MlError> {
    if !(config.subsample > 0.0 && config.subsample <= 1.0) {
        return Err(MlError::InvalidConfig(format!(
            "subsample must be in (0,1], got {}",
            config.subsample
        )));
    }
    if config.learning_rate <= 0.0 {
        return Err(MlError::InvalidConfig(format!(
            "learning_rate must be positive, got {}",
            config.learning_rate
        )));
    }
    if config.tree.max_depth == 0 {
        return Err(MlError::InvalidConfig("max_depth must be >= 1".into()));
    }
    Ok(())
}

/// The boosting round loop shared by cold fits and warm starts: appends
/// `rounds` trees to `trees`, keeping `scores` (raw per-row ensemble
/// scores) in sync. Histogram mode (`binned` present) never touches raw
/// features — per-round score updates traverse trees over `u8` bin codes
/// via [`RegressionTree::predict_binned`]; exact mode reads `x`.
#[allow(clippy::too_many_arguments)]
fn boost_rounds<L: Loss>(
    binned: Option<&BinnedMatrix>,
    x: Option<MatrixView<'_>>,
    y: &[f64],
    loss: &L,
    config: &GbtConfig,
    rounds: usize,
    learning_rate: f64,
    seed: u64,
    scores: &mut [f64],
    trees: &mut Vec<RegressionTree>,
) -> Result<(), MlError> {
    let n = scores.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all_rows: Vec<usize> = (0..n).collect();
    let sample_size = ((config.subsample * n as f64).round() as usize).clamp(1, n);

    let mut grads = vec![0.0; n];
    let mut hess = vec![0.0; n];
    // One flat single-tree scratch recycled across rounds: the per-round
    // score update walks the freshly fit tree over all rows through the
    // structure-of-arrays kernel instead of re-walking the pointer tree
    // per row (`scores[i] += lr · leaf(i)` either way, bit-for-bit).
    let mut flat = crate::FlatForest::new(0.0, 1.0);
    for _round in 0..rounds {
        // Subsampling selects indices into the shared matrix — rows
        // are never materialized. With subsample == 1.0 the identity
        // index list is reused untouched round over round.
        let rows: &[usize] = if sample_size < n {
            all_rows.shuffle(&mut rng);
            &all_rows[..sample_size]
        } else {
            &all_rows
        };
        for &i in rows {
            let (g, h) = loss.gradient_hessian(y[i], scores[i]);
            grads[i] = g;
            hess[i] = h.max(1e-12);
        }
        let tree = match binned {
            Some(binned) => RegressionTree::fit_binned(binned, &grads, &hess, rows, &config.tree)?,
            None => {
                let x = x.expect("exact growth requires a raw matrix view");
                RegressionTree::fit_exact_rows(x, &grads, &hess, rows.to_vec(), &config.tree)
            }
        };
        flat.clear();
        flat.push_tree(&tree);
        match binned {
            Some(binned) => flat.accumulate_binned(binned, learning_rate, scores),
            None => {
                let x = x.expect("exact growth requires a raw matrix view");
                flat.accumulate_view(x, learning_rate, scores);
            }
        }
        trees.push(tree);
    }
    Ok(())
}

/// Only ensembles over stateless (`Default`) losses are checkpointable —
/// which covers every loss in this workspace; the loss itself carries no
/// fitted state, so only `base_score`, `learning_rate`, and the trees
/// travel.
impl<L: Loss + Default> nurd_codec::Checkpointable for GradientBoosting<L> {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        enc.put_f64(self.base_score);
        enc.put_f64(self.learning_rate);
        self.trees.encode(enc);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(GradientBoosting {
            loss: L::default(),
            base_score: dec.take_f64()?,
            learning_rate: dec.take_f64()?,
            trees: nurd_codec::Checkpointable::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regression_learns_linear_function() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let model = GradientBoosting::fit(&x, &y, SquaredLoss, &GbtConfig::default()).unwrap();
        let mse = crate::mean_squared_error(&y, &model.predict_batch(&x));
        assert!(mse < 0.1, "train mse {mse} too high");
    }

    #[test]
    fn regression_learns_nonlinear_interaction() {
        // y = x0 * x1: linear models can't fit this; trees can.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                x.push(vec![i as f64, j as f64]);
                y.push((i * j) as f64);
            }
        }
        let cfg = GbtConfig {
            n_rounds: 150,
            tree: TreeConfig {
                max_depth: 4,
                ..TreeConfig::default()
            },
            ..GbtConfig::default()
        };
        let model = GradientBoosting::fit(&x, &y, SquaredLoss, &cfg).unwrap();
        let mse = crate::mean_squared_error(&y, &model.predict_batch(&x));
        let var = nurd_linalg::variance(&y);
        assert!(mse < 0.05 * var, "mse {mse} vs variance {var}");
    }

    #[test]
    fn histogram_mode_matches_exact_mode_on_nonlinear_interaction() {
        // Regression guard for the histogram-growth accuracy tradeoff: on
        // the nonlinear-interaction fixture, histogram-mode train MSE must
        // stay within 10% of exact-mode.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                x.push(vec![i as f64, j as f64]);
                y.push((i * j) as f64);
            }
        }
        let cfg_for = |growth| GbtConfig {
            n_rounds: 150,
            tree: TreeConfig {
                max_depth: 4,
                growth,
                ..TreeConfig::default()
            },
            ..GbtConfig::default()
        };
        let exact =
            GradientBoosting::fit(&x, &y, SquaredLoss, &cfg_for(TreeGrowth::Exact)).unwrap();
        let hist =
            GradientBoosting::fit(&x, &y, SquaredLoss, &cfg_for(TreeGrowth::Histogram)).unwrap();
        let mse_exact = crate::mean_squared_error(&y, &exact.predict_batch(&x));
        let mse_hist = crate::mean_squared_error(&y, &hist.predict_batch(&x));
        assert!(
            mse_hist <= mse_exact * 1.10 + 1e-12,
            "histogram mse {mse_hist} vs exact mse {mse_exact}"
        );
    }

    #[test]
    fn subsample_one_never_shuffles_and_matches_explicit_rounding() {
        // subsample == 1.0 must short-circuit to the identity index list;
        // a fractional subsample that rounds to n must behave identically.
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| (i % 4) as f64).collect();
        let full = GradientBoosting::fit(&x, &y, SquaredLoss, &GbtConfig::default()).unwrap();
        let rounded = GradientBoosting::fit(
            &x,
            &y,
            SquaredLoss,
            &GbtConfig {
                subsample: 0.999,
                ..GbtConfig::default()
            },
        )
        .unwrap();
        for row in &x {
            assert_eq!(full.predict(row), rounded.predict(row));
        }
    }

    #[test]
    fn fit_view_layouts_agree() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 / 4.0, ((i * 13) % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0 - r[1]).collect();
        let by_rows = GradientBoosting::fit(&x, &y, SquaredLoss, &GbtConfig::default()).unwrap();
        let slices: Vec<&[f64]> = x.iter().map(Vec::as_slice).collect();
        let by_slices = GradientBoosting::fit_view(
            MatrixView::RowSlices(&slices),
            &y,
            SquaredLoss,
            &GbtConfig::default(),
        )
        .unwrap();
        let m = nurd_linalg::FeatureMatrix::from_rows(&x).unwrap();
        let by_columns =
            GradientBoosting::fit_view(m.view(), &y, SquaredLoss, &GbtConfig::default()).unwrap();
        let p_rows = by_rows.predict_batch(&x);
        assert_eq!(p_rows, by_slices.predict_batch(&x));
        assert_eq!(p_rows, by_columns.predict_batch(&x));
        assert_eq!(p_rows, by_columns.predict_view(m.view()));
    }

    /// Growing synthetic checkpoint data: `y = 3·x0 − x1` with a mild
    /// distribution drift in later rows.
    fn growing_set(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                vec![
                    ((i * 31) % 53) as f64 / 53.0 + 0.3 * t,
                    ((i * 17) % 29) as f64 / 29.0,
                ]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] - r[1]).collect();
        (x, y)
    }

    #[test]
    fn fit_binned_matches_fit_view_bit_for_bit() {
        let (x, y) = growing_set(80);
        let cfg = GbtConfig::default();
        let by_view = GradientBoosting::fit(&x, &y, SquaredLoss, &cfg).unwrap();
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let by_binned = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        assert_eq!(by_view.predict_batch(&x), by_binned.predict_batch(&x));
    }

    #[test]
    fn warm_start_zero_rounds_is_identity() {
        let (x, y) = growing_set(60);
        let cfg = GbtConfig::default();
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let prev = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        let same = GradientBoosting::warm_start(&prev, &binned, &y, 0, &cfg).unwrap();
        assert_eq!(same.tree_count(), prev.tree_count());
        assert_eq!(prev.predict_batch(&x), same.predict_batch(&x));
    }

    #[test]
    fn warm_start_recovers_cold_accuracy_on_grown_data() {
        // Fit on the first 150 rows, grow to 200, warm-start a few rounds:
        // MSE on the full set must land within a few percent of a cold
        // refit — the claim the warm-refit subsystem rests on.
        let (x, y) = growing_set(200);
        let cfg = GbtConfig::default();
        let mut binned = BinnedMatrix::build(MatrixView::Rows(&x[..150]), cfg.tree.max_bins);
        let prev = GradientBoosting::fit_binned(&binned, &y[..150], SquaredLoss, &cfg).unwrap();
        let drift = binned.append_from(MatrixView::Rows(&x));
        assert!(drift < 0.2, "mild drift expected, got {drift}");

        let warm = GradientBoosting::warm_start(&prev, &binned, &y, 10, &cfg).unwrap();
        let cold = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        let mse_warm = crate::mean_squared_error(&y, &warm.predict_batch(&x));
        let mse_cold = crate::mean_squared_error(&y, &cold.predict_batch(&x));
        let var = nurd_linalg::variance(&y);
        assert!(
            mse_warm <= mse_cold + 0.01 * var,
            "warm {mse_warm} vs cold {mse_cold} (var {var})"
        );
        assert_eq!(warm.tree_count(), prev.tree_count() + 10);
    }

    #[test]
    fn warm_start_cached_matches_uncached_replay() {
        let (x, y) = growing_set(160);
        let cfg = GbtConfig::default();
        let mut binned = BinnedMatrix::build(MatrixView::Rows(&x[..120]), cfg.tree.max_bins);
        let mut cache = Vec::new();
        let prev =
            GradientBoosting::fit_binned_cached(&binned, &y[..120], SquaredLoss, &cfg, &mut cache)
                .unwrap();
        assert_eq!(cache.len(), 120);
        binned.append_from(MatrixView::Rows(&x));

        let uncached = GradientBoosting::warm_start(&prev, &binned, &y, 6, &cfg).unwrap();
        let cached =
            GradientBoosting::warm_start_cached(&prev, &binned, &y, 6, &cfg, &mut cache).unwrap();
        assert_eq!(cache.len(), 160, "cache covers every row after the call");
        // The cache holds the boosting trajectory's running scores, which
        // differ from a from-scratch ensemble replay only by float
        // addition reordering — fitted models must agree to tight
        // tolerance.
        let scale = y.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for row in &x {
            assert!(
                (uncached.predict(row) - cached.predict(row)).abs() <= 1e-9 * scale,
                "cached vs uncached warm start diverged"
            );
        }
        // The left-behind cache is the new model's raw score per row.
        for (i, s) in cache.iter().enumerate() {
            let replay: f64 = cached.base_score
                + cached.learning_rate
                    * cached
                        .trees
                        .iter()
                        .map(|t| t.predict_binned(&binned, i))
                        .sum::<f64>();
            assert!((s - replay).abs() <= 1e-9 * scale.max(1.0));
        }
        // A cache longer than the matrix is a stale-cache bug: rejected.
        let mut stale = vec![0.0; 200];
        assert!(matches!(
            GradientBoosting::warm_start_cached(&prev, &binned, &y, 2, &cfg, &mut stale),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn warm_start_is_deterministic() {
        let (x, y) = growing_set(90);
        let cfg = GbtConfig {
            subsample: 0.7,
            ..GbtConfig::default()
        };
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let prev = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        let a = GradientBoosting::warm_start(&prev, &binned, &y, 5, &cfg).unwrap();
        let b = GradientBoosting::warm_start(&prev, &binned, &y, 5, &cfg).unwrap();
        assert_eq!(a.predict_batch(&x), b.predict_batch(&x));
    }

    #[test]
    fn warm_start_rejects_exact_grown_ensemble() {
        let (x, y) = growing_set(40);
        let exact_cfg = GbtConfig {
            tree: TreeConfig {
                growth: TreeGrowth::Exact,
                ..TreeConfig::default()
            },
            ..GbtConfig::default()
        };
        let prev = GradientBoosting::fit(&x, &y, SquaredLoss, &exact_cfg).unwrap();
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), 256);
        assert!(matches!(
            GradientBoosting::warm_start(&prev, &binned, &y, 4, &GbtConfig::default()),
            Err(MlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn binned_fit_paths_reject_empty_matrix() {
        // An empty binned matrix is constructible; the fit entry points
        // must error, not panic, as their docs promise.
        let empty_rows: Vec<Vec<f64>> = Vec::new();
        let empty = BinnedMatrix::build(MatrixView::Rows(&empty_rows), 256);
        assert!(matches!(
            GradientBoosting::fit_binned(&empty, &[], SquaredLoss, &GbtConfig::default()),
            Err(MlError::EmptyTrainingSet)
        ));
        let (x, y) = growing_set(20);
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), 256);
        let prev =
            GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &GbtConfig::default()).unwrap();
        assert!(matches!(
            GradientBoosting::warm_start(&prev, &empty, &[], 4, &GbtConfig::default()),
            Err(MlError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn warm_start_rejects_target_length_mismatch() {
        let (x, y) = growing_set(40);
        let cfg = GbtConfig::default();
        let binned = BinnedMatrix::build(MatrixView::Rows(&x), cfg.tree.max_bins);
        let prev = GradientBoosting::fit_binned(&binned, &y, SquaredLoss, &cfg).unwrap();
        assert!(matches!(
            GradientBoosting::warm_start(&prev, &binned, &y[..20], 4, &cfg),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn classifier_separates_halves() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 1.0 }).collect();
        let clf = GradientBoosting::fit(&x, &y, LogisticLoss, &GbtConfig::default()).unwrap();
        assert!(clf.predict_proba(&[5.0]) < 0.2);
        assert!(clf.predict_proba(&[35.0]) > 0.8);
    }

    #[test]
    fn base_score_is_mean_for_squared_loss() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![2.0, 4.0];
        let model = GradientBoosting::fit(
            &x,
            &y,
            SquaredLoss,
            &GbtConfig {
                n_rounds: 0,
                ..GbtConfig::default()
            },
        )
        .unwrap();
        assert_eq!(model.tree_count(), 0);
        assert!((model.predict(&[0.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn subsampling_is_deterministic_under_seed() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        let cfg = GbtConfig {
            subsample: 0.6,
            seed: 99,
            ..GbtConfig::default()
        };
        let m1 = GradientBoosting::fit(&x, &y, SquaredLoss, &cfg).unwrap();
        let m2 = GradientBoosting::fit(&x, &y, SquaredLoss, &cfg).unwrap();
        for row in &x {
            assert_eq!(m1.predict(row), m2.predict(row));
        }
    }

    #[test]
    fn rejects_bad_subsample() {
        let cfg = GbtConfig {
            subsample: 0.0,
            ..GbtConfig::default()
        };
        assert!(matches!(
            GradientBoosting::fit(&[vec![1.0]], &[1.0], SquaredLoss, &cfg),
            Err(MlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            GradientBoosting::fit(&[], &[], SquaredLoss, &GbtConfig::default()),
            Err(MlError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn logistic_loss_gradient_signs() {
        let loss = LogisticLoss;
        // Predicting logit 0 (p=0.5) with target 1 → negative gradient.
        let (g1, h1) = loss.gradient_hessian(1.0, 0.0);
        assert!(g1 < 0.0 && h1 > 0.0);
        let (g0, _) = loss.gradient_hessian(0.0, 0.0);
        assert!(g0 > 0.0);
    }

    proptest! {
        /// Squared-loss predictions stay within the target hull (each tree
        /// moves scores toward targets; shrinkage keeps them inside).
        #[test]
        fn prop_regression_predictions_bounded(
            ys in proptest::collection::vec(-50.0..50.0f64, 3..30)) {
            let x: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
            let model =
                GradientBoosting::fit(&x, &ys, SquaredLoss, &GbtConfig::default()).unwrap();
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for row in &x {
                let p = model.predict(row);
                prop_assert!(p >= lo - 1e-6 && p <= hi + 1e-6);
            }
        }

        /// Classifier probabilities are valid probabilities.
        #[test]
        fn prop_proba_in_unit_interval(
            labels in proptest::collection::vec(0u8..2, 4..24)) {
            let x: Vec<Vec<f64>> = (0..labels.len()).map(|i| vec![i as f64]).collect();
            let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
            let clf =
                GradientBoosting::fit(&x, &y, LogisticLoss, &GbtConfig::default()).unwrap();
            for row in &x {
                let p = clf.predict_proba(row);
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
