//! Feature quantization for histogram-based tree growth.
//!
//! An XGBoost/LightGBM-style booster does not need raw `f64` features at
//! split-finding time: it quantizes each feature column into at most
//! [`BinnedMatrix::MAX_BINS`] bins *once per fit*, then every tree node
//! accumulates per-bin gradient/hessian statistics in a single linear pass
//! and scans bin boundaries for the best split. That replaces the exact
//! builder's per-node, per-feature `O(n log n)` re-sort with an `O(n)`
//! sweep over contiguous `u8` codes.
//!
//! Two properties of this implementation matter for correctness tests:
//!
//! * When a feature has **at most `max_bins` distinct values**, every
//!   distinct value gets its own bin and the recorded per-bin min/max
//!   collapse to that value — so candidate thresholds (midpoints between
//!   adjacent *present* values) are bit-for-bit the thresholds the exact
//!   builder proposes, and the two growth modes produce identical trees.
//! * Otherwise bins are (approximately) equal-mass quantile buckets of the
//!   training distribution, the standard accuracy/speed tradeoff.

use nurd_linalg::MatrixView;

/// Total order over `f64` with *every* NaN — positive or negative — at the
/// end. `f64::total_cmp` alone is not enough: negative NaN (the default
/// runtime NaN on x86-64, e.g. `0.0/0.0`) sorts *before* every number
/// under IEEE total ordering, which would break the "NaNs last" invariant
/// both tree builders rely on.
#[inline]
pub(crate) fn nan_last_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.is_nan().cmp(&b.is_nan()).then_with(|| a.total_cmp(&b))
}

/// Per-feature quantization: cut points plus per-bin value ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBins {
    /// Upper-boundary cut points between bins, length `n_bins - 1`; a value
    /// `v` lands in the first bin `b` with `v <= cuts[b]` (last bin
    /// otherwise).
    cuts: Vec<f64>,
    /// Smallest training value assigned to each bin.
    bin_min: Vec<f64>,
    /// Largest training value assigned to each bin.
    bin_max: Vec<f64>,
}

impl FeatureBins {
    /// Number of bins for this feature.
    #[must_use]
    pub fn n_bins(&self) -> usize {
        self.bin_min.len()
    }

    /// The bin code for a raw value (binary search over the cut points).
    ///
    /// NaN maps to the *last* bin so that training-time partitioning
    /// (`code <= left_bin` → left) and prediction-time routing
    /// (`NaN <= threshold` is false → right) agree: a NaN row always
    /// rides the right child in both phases, matching exact growth.
    #[inline]
    #[must_use]
    pub fn code_of(&self, value: f64) -> u8 {
        if value.is_nan() {
            return self.cuts.len() as u8;
        }
        // partition_point returns the count of cuts strictly below value,
        // i.e. the index of the first bin whose upper bound admits it.
        let idx = self.cuts.partition_point(|&cut| cut < value);
        debug_assert!(idx <= u8::MAX as usize);
        idx as u8
    }

    /// Smallest training value in bin `b`.
    #[inline]
    #[must_use]
    pub fn min_of(&self, b: usize) -> f64 {
        self.bin_min[b]
    }

    /// Largest training value in bin `b`.
    #[inline]
    #[must_use]
    pub fn max_of(&self, b: usize) -> f64 {
        self.bin_max[b]
    }
}

/// A quantized training matrix: per-feature bins plus column-major `u8`
/// codes, built once per `fit` and shared by every boosting round.
///
/// # Incremental rebinning across checkpoints
///
/// NURD's online loop rebuilds its training matrix at every checkpoint,
/// but consecutive checkpoints share almost all of their rows (finished
/// tasks stay finished and their features are frozen). [`BinnedMatrix::append_from`]
/// exploits that: it re-quantizes **only the appended rows** against the
/// existing bin edges — skipping the per-feature sort that dominates
/// [`BinnedMatrix::build`] — and returns a drift statistic so the caller
/// can fall back to a full rebin when the feature distribution has moved
/// past a tolerance. Reusing the edges also keeps bin codes comparable
/// across checkpoints, which is what lets a warm-started booster keep
/// predicting through `u8` codes (see
/// [`crate::RegressionTree::predict_binned`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedMatrix {
    /// Column-major codes: `codes[f * n_rows + i]` is row `i`'s bin for
    /// feature `f`.
    codes: Vec<u8>,
    n_rows: usize,
    n_features: usize,
    features: Vec<FeatureBins>,
    /// Current per-bin row counts for each feature (NaNs count toward the
    /// last bin, mirroring [`FeatureBins::code_of`]); kept up to date by
    /// [`BinnedMatrix::append_from`].
    counts: Vec<Vec<u32>>,
    /// Per-feature empirical CDF at each bin's upper boundary as of the
    /// last **full** build — the reference the drift check compares
    /// against. `build_cdf[f][b]` is the fraction of rows with code ≤ `b`.
    build_cdf: Vec<Vec<f64>>,
    /// Set when an appended row carried a value a single-bin (constant or
    /// all-NaN) feature cannot represent; forces the drift statistic to
    /// `1.0` because the CDF comparison is blind to this case.
    stale_constant: bool,
}

impl BinnedMatrix {
    /// Hard upper limit on bins per feature (codes are `u8`).
    pub const MAX_BINS: usize = 256;

    /// Minimum matrix size (`rows × features`) before
    /// [`BinnedMatrix::build_with_pool`] fans feature quantization out to
    /// the pool; below this, task overhead beats the sort savings.
    const PAR_MIN_CELLS: usize = 8192;

    /// Quantizes `x` into at most `max_bins` bins per feature.
    ///
    /// `max_bins` is clamped to `[2, 256]`. The view must be non-ragged
    /// and non-empty (callers validate via [`MatrixView::validated_dims`]).
    #[must_use]
    pub fn build(x: MatrixView<'_>, max_bins: usize) -> Self {
        let n = x.rows();
        let d = x.cols();
        let max_bins = max_bins.clamp(2, Self::MAX_BINS);
        let mut codes = vec![0u8; n * d];
        let mut features = Vec::with_capacity(d);
        let mut counts = Vec::with_capacity(d);
        let mut build_cdf = Vec::with_capacity(d);
        let mut column: Vec<f64> = Vec::with_capacity(n);
        let mut sorted: Vec<f64> = Vec::with_capacity(n);

        for f in 0..d {
            let (bins, bin_counts, cdf) = quantize_column(
                x,
                f,
                max_bins,
                &mut codes[f * n..(f + 1) * n],
                &mut column,
                &mut sorted,
            );
            build_cdf.push(cdf);
            counts.push(bin_counts);
            features.push(bins);
        }

        BinnedMatrix {
            codes,
            n_rows: n,
            n_features: d,
            features,
            counts,
            build_cdf,
            stale_constant: false,
        }
    }

    /// As [`BinnedMatrix::build`], with the per-feature quantization
    /// passes (column gather, sort, bin planning, coding) fanned out as at
    /// most `tasks` chunks on `pool`. Every feature is processed
    /// independently into its own code column, so the result is
    /// **bit-for-bit identical** to the sequential build at any task
    /// count; small matrices (under the internal `PAR_MIN_CELLS` floor of 8192
    /// cells) and `par = None` fall back to the sequential path. This is
    /// the knob behind [`crate::TreeConfig::n_threads`] — prefer
    /// [`BinnedMatrix::build_for`] unless you manage pools yourself.
    #[must_use]
    pub fn build_with_pool(
        x: MatrixView<'_>,
        max_bins: usize,
        par: Option<(&nurd_runtime::ThreadPool, usize)>,
    ) -> Self {
        let n = x.rows();
        let d = x.cols();
        let par = par.filter(|&(_, tasks)| {
            tasks > 1 && d >= 2 && n.saturating_mul(d) >= Self::PAR_MIN_CELLS
        });
        let Some((pool, max_tasks)) = par else {
            return Self::build(x, max_bins);
        };

        let max_bins = max_bins.clamp(2, Self::MAX_BINS);
        let mut codes = vec![0u8; n * d];
        let mut outs: Vec<Option<ColumnPlan>> = (0..d).map(|_| None).collect();
        let per = d.div_ceil(max_tasks.min(d));
        pool.scope(|s| {
            for (ci, (code_chunk, out_chunk)) in codes
                .chunks_mut(per * n)
                .zip(outs.chunks_mut(per))
                .enumerate()
            {
                let f0 = ci * per;
                s.spawn(move || {
                    let mut column: Vec<f64> = Vec::with_capacity(n);
                    let mut sorted: Vec<f64> = Vec::with_capacity(n);
                    for (j, (col_codes, slot)) in code_chunk
                        .chunks_mut(n)
                        .zip(out_chunk.iter_mut())
                        .enumerate()
                    {
                        *slot = Some(quantize_column(
                            x,
                            f0 + j,
                            max_bins,
                            col_codes,
                            &mut column,
                            &mut sorted,
                        ));
                    }
                });
            }
        });

        let mut features = Vec::with_capacity(d);
        let mut counts = Vec::with_capacity(d);
        let mut build_cdf = Vec::with_capacity(d);
        for out in outs {
            let (bins, bin_counts, cdf) = out.expect("every feature chunk quantized");
            features.push(bins);
            counts.push(bin_counts);
            build_cdf.push(cdf);
        }
        BinnedMatrix {
            codes,
            n_rows: n,
            n_features: d,
            features,
            counts,
            build_cdf,
            stale_constant: false,
        }
    }

    /// Builds the quantization honoring `config`'s
    /// [`n_threads`](crate::TreeConfig::n_threads) knob (sequential at the
    /// default of 1; chunks on the shared [`nurd_runtime::global`] pool
    /// otherwise). Identical output at every setting.
    #[must_use]
    pub fn build_for(x: MatrixView<'_>, config: &crate::TreeConfig) -> Self {
        Self::build_with_pool(x, config.max_bins, config.parallelism())
    }

    /// Incrementally absorbs the rows appended to `x` since this matrix was
    /// last built or appended to: rows `self.rows()..x.rows()` are
    /// quantized against the **existing** bin edges (the prefix is assumed
    /// unchanged — the caller owns that invariant) and the per-bin counts
    /// are updated. No sorting, no re-planning: cost is one binary search
    /// per appended value.
    ///
    /// Returns the **drift** of the updated code distribution: the largest
    /// absolute difference, over all features and bin boundaries, between
    /// the current empirical CDF and the CDF recorded at the last full
    /// build (a Kolmogorov–Smirnov distance against the quantile sketch
    /// the bins encode). `0.0` means the old edges still cut the data at
    /// the same quantiles; a value above the caller's tolerance means the
    /// equal-mass property has degraded and a full [`BinnedMatrix::build`]
    /// is warranted. A feature that was constant (or all-NaN) at build
    /// time and has since seen a different value reports a drift of `1.0`,
    /// because its single inert bin can never expose the new variation.
    ///
    /// The appended codes are valid either way — edges are never mutated
    /// here — so callers may keep the matrix even past their drift
    /// tolerance; they only forgo split quality, not correctness.
    ///
    /// # Panics
    ///
    /// Panics when `x` has fewer rows than this matrix or a different
    /// feature count.
    pub fn append_from(&mut self, x: MatrixView<'_>) -> f64 {
        let old = self.n_rows;
        let new = x.rows();
        assert!(new >= old, "append_from: view lost rows ({new} < {old})");
        assert_eq!(x.cols(), self.n_features, "append_from: feature mismatch");
        if new > old {
            // Grow the column-major code store in place: shift each
            // feature's code column to its new stride, back to front.
            self.codes.resize(new * self.n_features, 0);
            for f in (1..self.n_features).rev() {
                self.codes.copy_within(f * old..(f + 1) * old, f * new);
            }
            self.n_rows = new;
            for f in 0..self.n_features {
                let bins = &self.features[f];
                let counts = &mut self.counts[f];
                // Single-bin feature: every value collapses to code 0, so
                // record here — while the raw values are still visible —
                // whether the constant stopped holding.
                let constant = if bins.n_bins() == 1 {
                    Some(bins.min_of(0))
                } else {
                    None
                };
                for i in old..new {
                    let v = x.get(i, f);
                    let code = bins.code_of(v);
                    self.codes[f * new + i] = code;
                    counts[code as usize] += 1;
                    if let Some(c) = constant {
                        // A NaN arrival is never staleness: NaN rides the
                        // last bin under these edges exactly as a rebuild
                        // would arrange (plan_feature excludes NaNs from
                        // planning), even when the build column was
                        // NaN-free. A non-NaN arrival is staleness unless
                        // it equals the finite build constant (`c` is NaN
                        // for an all-NaN build column, so any real value
                        // trips it there).
                        if !v.is_nan() && v != c {
                            self.stale_constant = true;
                        }
                    }
                }
            }
        }
        self.drift()
    }

    /// The drift statistic of the current counts against the last full
    /// build (see [`BinnedMatrix::append_from`]); `0.0` right after a
    /// build.
    #[must_use]
    pub fn drift(&self) -> f64 {
        if self.stale_constant {
            return 1.0;
        }
        let n = self.n_rows as f64;
        let mut worst: f64 = 0.0;
        for (f, counts) in self.counts.iter().enumerate() {
            let mut cum = 0u64;
            for (b, &c) in counts.iter().take(counts.len() - 1).enumerate() {
                cum += u64::from(c);
                let now = cum as f64 / n;
                let was = self.build_cdf[f][b];
                worst = worst.max((now - was).abs());
            }
        }
        worst
    }

    /// Number of rows (samples).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    #[must_use]
    pub fn features(&self) -> usize {
        self.n_features
    }

    /// The quantization of feature `f`.
    #[must_use]
    pub fn feature_bins(&self, f: usize) -> &FeatureBins {
        &self.features[f]
    }

    /// The contiguous code column for feature `f` (one `u8` per row).
    #[inline]
    #[must_use]
    pub fn codes(&self, f: usize) -> &[u8] {
        &self.codes[f * self.n_rows..(f + 1) * self.n_rows]
    }

    /// Largest bin count across features (histogram scratch sizing).
    #[must_use]
    pub fn max_bin_count(&self) -> usize {
        self.features
            .iter()
            .map(FeatureBins::n_bins)
            .max()
            .unwrap_or(0)
    }
}

/// One quantized column's outputs: planned bins, per-bin counts, CDF.
type ColumnPlan = (FeatureBins, Vec<u32>, Vec<f64>);

/// Quantizes one feature column: gather, NaN-last sort, bin planning,
/// coding. Writes the column's codes into `col_codes` (length = rows) and
/// returns the planned bins with their counts and build-time CDF.
/// `column`/`sorted` are caller scratch (cleared and refilled) so the
/// sequential build reuses one allocation across features.
///
/// A NaN-tolerant total order keeps the pass panic-free (matching the
/// exact builder): NaNs sort last, are excluded from bin planning, and
/// `code_of` routes them to the last bin so they ride the right child in
/// training and prediction alike. An all-NaN column collapses to a single
/// inert, never-splittable bin.
fn quantize_column(
    x: MatrixView<'_>,
    f: usize,
    max_bins: usize,
    col_codes: &mut [u8],
    column: &mut Vec<f64>,
    sorted: &mut Vec<f64>,
) -> ColumnPlan {
    x.gather_column(f, column);
    sorted.clear();
    sorted.extend_from_slice(column);
    sorted.sort_by(|a, b| nan_last_cmp(*a, *b));
    let finite_end = sorted.partition_point(|v| !v.is_nan());
    let bins = if finite_end == 0 {
        FeatureBins {
            cuts: Vec::new(),
            bin_min: vec![f64::NAN],
            bin_max: vec![f64::NAN],
        }
    } else {
        plan_feature(&sorted[..finite_end], max_bins)
    };
    let mut bin_counts = vec![0u32; bins.n_bins()];
    for (slot, &v) in col_codes.iter_mut().zip(column.iter()) {
        *slot = bins.code_of(v);
        bin_counts[*slot as usize] += 1;
    }
    let cdf = cdf_of(&bin_counts, col_codes.len());
    (bins, bin_counts, cdf)
}

/// Cumulative distribution over bins from per-bin counts.
fn cdf_of(counts: &[u32], n: usize) -> Vec<f64> {
    let mut cum = 0u64;
    counts
        .iter()
        .map(|&c| {
            cum += u64::from(c);
            cum as f64 / n as f64
        })
        .collect()
}

/// Plans the bins for one feature from its sorted training values.
fn plan_feature(sorted: &[f64], max_bins: usize) -> FeatureBins {
    debug_assert!(!sorted.is_empty());
    let mut distinct: Vec<f64> = Vec::new();
    for &v in sorted {
        if distinct.last() != Some(&v) {
            distinct.push(v);
        }
    }

    if distinct.len() <= max_bins {
        // One bin per distinct value: histogram growth is then *exact* —
        // cut points are midpoints between adjacent distinct values, the
        // same candidate thresholds the exact builder enumerates.
        let cuts: Vec<f64> = distinct.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
        return FeatureBins {
            cuts,
            bin_min: distinct.clone(),
            bin_max: distinct,
        };
    }

    // Equal-mass quantile cuts over the training distribution. A cut is
    // only placed at a quantile index where the adjacent sorted values
    // *differ* — its midpoint then lies strictly inside a gap between
    // distinct data values, so heavy ties can neither duplicate cuts nor
    // produce empty bins (every inter-cut interval contains a data value).
    let n = sorted.len();
    let mut cuts: Vec<f64> = Vec::with_capacity(max_bins - 1);
    for b in 1..max_bins {
        let idx = (b * n) / max_bins;
        if idx == 0 || sorted[idx - 1] == sorted[idx] {
            continue;
        }
        let cut = 0.5 * (sorted[idx - 1] + sorted[idx]);
        if cuts.last().is_none_or(|&last| cut > last) {
            cuts.push(cut);
        }
    }

    let n_bins = cuts.len() + 1;
    let mut bin_min = vec![f64::INFINITY; n_bins];
    let mut bin_max = vec![f64::NEG_INFINITY; n_bins];
    let probe = FeatureBins {
        cuts,
        bin_min: Vec::new(),
        bin_max: Vec::new(),
    };
    for &v in sorted {
        let b = probe.code_of(v) as usize;
        bin_min[b] = bin_min[b].min(v);
        bin_max[b] = bin_max[b].max(v);
    }
    FeatureBins {
        cuts: probe.cuts,
        bin_min,
        bin_max,
    }
}

impl nurd_codec::Checkpointable for FeatureBins {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        self.cuts.encode(enc);
        self.bin_min.encode(enc);
        self.bin_max.encode(enc);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(FeatureBins {
            cuts: nurd_codec::Checkpointable::decode(dec)?,
            bin_min: nurd_codec::Checkpointable::decode(dec)?,
            bin_max: nurd_codec::Checkpointable::decode(dec)?,
        })
    }
}

/// Every field travels — including the per-bin `counts` and the
/// full-build CDF reference — so the drift statistic computed after a
/// restore is identical to one computed by an uninterrupted process.
impl nurd_codec::Checkpointable for BinnedMatrix {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        enc.put_bytes(&self.codes);
        enc.put_usize(self.n_rows);
        enc.put_usize(self.n_features);
        self.features.encode(enc);
        self.counts.encode(enc);
        self.build_cdf.encode(enc);
        enc.put_bool(self.stale_constant);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        let codes = dec.take_bytes()?.to_vec();
        let n_rows = dec.take_usize()?;
        let n_features = dec.take_usize()?;
        if n_rows.checked_mul(n_features) != Some(codes.len()) {
            return Err(nurd_codec::CodecError::LengthOverrun {
                declared: codes.len() as u64,
                remaining: dec.remaining(),
            });
        }
        Ok(BinnedMatrix {
            codes,
            n_rows,
            n_features,
            features: nurd_codec::Checkpointable::decode(dec)?,
            counts: nurd_codec::Checkpointable::decode(dec)?,
            build_cdf: nurd_codec::Checkpointable::decode(dec)?,
            stale_constant: dec.take_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(rows: &[Vec<f64>]) -> MatrixView<'_> {
        MatrixView::Rows(rows)
    }

    #[test]
    fn small_distinct_sets_get_one_bin_per_value() {
        let rows: Vec<Vec<f64>> = vec![vec![3.0], vec![1.0], vec![2.0], vec![1.0], vec![3.0]];
        let binned = BinnedMatrix::build(view(&rows), 256);
        let bins = binned.feature_bins(0);
        assert_eq!(bins.n_bins(), 3);
        assert_eq!(binned.codes(0), &[2, 0, 1, 0, 2]);
        assert_eq!(bins.min_of(1), 2.0);
        assert_eq!(bins.max_of(1), 2.0);
    }

    #[test]
    fn cut_points_are_midpoints_in_exact_regime() {
        let rows: Vec<Vec<f64>> = vec![vec![0.0], vec![10.0], vec![1.0]];
        let binned = BinnedMatrix::build(view(&rows), 256);
        let bins = binned.feature_bins(0);
        assert_eq!(bins.cuts, vec![0.5, 5.5]);
    }

    #[test]
    fn many_distinct_values_collapse_to_max_bins() {
        let rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![f64::from(i)]).collect();
        let binned = BinnedMatrix::build(view(&rows), 64);
        let bins = binned.feature_bins(0);
        assert!(bins.n_bins() <= 64);
        assert!(bins.n_bins() >= 60, "quantile cuts should not collapse");
        // Codes are monotone in the value.
        let codes = binned.codes(0);
        for i in 1..1000 {
            assert!(codes[i] >= codes[i - 1]);
        }
        // Roughly equal mass per bin.
        let mut counts = vec![0usize; bins.n_bins()];
        for &c in codes {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "no empty bins");
        let max = counts.iter().max().unwrap();
        assert!(*max <= 2 * (1000 / bins.n_bins()), "max bin {max}");
    }

    #[test]
    fn heavy_ties_do_not_produce_degenerate_bins() {
        // 90% zeros, a few distinct positives — the quantile cuts all land
        // on zero and must be deduplicated.
        let mut rows: Vec<Vec<f64>> = vec![vec![0.0]; 900];
        for i in 0..300 {
            rows.push(vec![1.0 + f64::from(i)]);
        }
        let binned = BinnedMatrix::build(view(&rows), 16);
        let bins = binned.feature_bins(0);
        assert!(bins.n_bins() >= 2);
        let mut counts = vec![0usize; bins.n_bins()];
        for &c in binned.codes(0) {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "no empty bins: {counts:?}");
    }

    #[test]
    fn constant_feature_yields_single_bin() {
        let rows: Vec<Vec<f64>> = vec![vec![7.0]; 10];
        let binned = BinnedMatrix::build(view(&rows), 256);
        assert_eq!(binned.feature_bins(0).n_bins(), 1);
        assert!(binned.codes(0).iter().all(|&c| c == 0));
    }

    #[test]
    fn nan_features_do_not_panic_and_route_to_last_bin() {
        // NaN tolerance must match the exact builder: degraded model,
        // never a panic. NaNs are excluded from planning and coded into
        // the last bin, so they ride the right child of every split in
        // training and prediction alike.
        // Negative NaN (the default runtime NaN on x86-64, e.g. 0.0/0.0)
        // sorts *first* under f64::total_cmp — the planner must still
        // treat it as NaN-last.
        let neg_nan = f64::from_bits(0xFFF8_0000_0000_0000);
        assert!(neg_nan.is_nan() && neg_nan.is_sign_negative());
        let rows: Vec<Vec<f64>> = vec![
            vec![1.0, f64::NAN],
            vec![neg_nan, f64::NAN],
            vec![3.0, neg_nan],
            vec![2.0, f64::NAN],
        ];
        let binned = BinnedMatrix::build(view(&rows), 256);
        let bins0 = binned.feature_bins(0);
        assert_eq!(bins0.n_bins(), 3);
        assert_eq!(binned.codes(0), &[0, 2, 2, 1]);
        // No NaN leaked into the planning: cuts and bin stats are finite.
        assert!((0..bins0.n_bins()).all(|b| bins0.min_of(b).is_finite()));
        assert!((0..bins0.n_bins()).all(|b| bins0.max_of(b).is_finite()));
        // All-NaN column collapses to one inert bin.
        assert_eq!(binned.feature_bins(1).n_bins(), 1);
        assert!(binned.codes(1).iter().all(|&c| c == 0));
    }

    #[test]
    fn append_from_matches_full_build_codes_when_stationary() {
        // Same-distribution growth: appended codes must equal what a full
        // rebuild would assign (same edges survive), and drift stays low.
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![f64::from(i % 97), f64::from((i * 13) % 31)])
            .collect();
        let mut incremental = BinnedMatrix::build(view(&rows[..300]), 32);
        let drift = incremental.append_from(view(&rows));
        assert!(drift < 0.05, "stationary drift {drift}");
        assert_eq!(incremental.rows(), 400);

        // Edges were kept, so codes for appended rows follow the *old*
        // quantization; verify against coding rows by hand.
        let old_edges = BinnedMatrix::build(view(&rows[..300]), 32);
        for f in 0..2 {
            let bins = old_edges.feature_bins(f);
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(incremental.codes(f)[i], bins.code_of(row[f]));
            }
        }
    }

    #[test]
    fn append_from_zero_rows_is_identity() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i)]).collect();
        let mut binned = BinnedMatrix::build(view(&rows), 16);
        let before = binned.clone();
        let drift = binned.append_from(view(&rows));
        assert_eq!(binned, before);
        assert!(drift < 1e-12);
    }

    #[test]
    fn drift_detects_distribution_shift() {
        // Build on values in [0, 100); append a flood of values far above
        // — the old quantile edges pile everything into the last bin.
        let mut rows: Vec<Vec<f64>> = (0..200).map(|i| vec![f64::from(i % 100)]).collect();
        let mut binned = BinnedMatrix::build(view(&rows), 16);
        for i in 0..200 {
            rows.push(vec![1000.0 + f64::from(i)]);
        }
        let drift = binned.append_from(view(&rows));
        assert!(drift > 0.3, "shift must register, got {drift}");
        // A fresh build resets the reference.
        let rebuilt = BinnedMatrix::build(view(&rows), 16);
        assert!(rebuilt.drift() < 1e-12);
    }

    #[test]
    fn constant_feature_turning_variable_reports_full_drift() {
        let mut rows: Vec<Vec<f64>> = vec![vec![7.0, 1.0]; 30];
        for (i, row) in rows.iter_mut().enumerate() {
            row[1] = i as f64; // keep feature 1 multi-bin
        }
        let mut binned = BinnedMatrix::build(view(&rows), 16);
        assert_eq!(binned.feature_bins(0).n_bins(), 1);
        rows.push(vec![9.0, 3.0]);
        let drift = binned.append_from(view(&rows));
        assert_eq!(drift, 1.0, "constant bin cannot represent 9.0");
    }

    #[test]
    fn nan_appends_to_constant_features_are_not_drift() {
        // A single-bin feature stays single-bin under a rebuild even when
        // NaNs arrive (NaNs are excluded from bin planning), so appended
        // NaNs must not trip the staleness flag — for a NaN-free constant
        // build column and for one that already mixed NaNs in.
        let mut rows: Vec<Vec<f64>> = (0..20).map(|i| vec![7.0, f64::from(i)]).collect();
        rows[3][0] = f64::NAN;
        let mut binned = BinnedMatrix::build(view(&rows), 16);
        assert_eq!(binned.feature_bins(0).n_bins(), 1);
        rows.push(vec![f64::NAN, 5.0]);
        rows.push(vec![7.0, 9.0]);
        let drift = binned.append_from(view(&rows));
        assert!(drift < 0.2, "NaN append misread as staleness: {drift}");
        // A genuinely new finite value still registers.
        rows.push(vec![8.0, 4.0]);
        assert_eq!(binned.append_from(view(&rows)), 1.0);
        // All-NaN build column: a real value is new information.
        let nan_rows: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::NAN, f64::from(i)]).collect();
        let mut all_nan = BinnedMatrix::build(view(&nan_rows), 16);
        let mut grown = nan_rows.clone();
        grown.push(vec![1.0, 3.0]);
        assert_eq!(all_nan.append_from(view(&grown)), 1.0);
    }

    #[test]
    fn incremental_append_accumulates_drift_across_calls() {
        let mut rows: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i)]).collect();
        let mut binned = BinnedMatrix::build(view(&rows), 8);
        let mut last = 0.0;
        for step in 0..4 {
            for i in 0..50 {
                rows.push(vec![200.0 + f64::from(step * 50 + i)]);
            }
            last = binned.append_from(view(&rows));
        }
        assert!(last > 0.4, "monotone out-of-range growth, drift {last}");
        assert_eq!(binned.rows(), 300);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        // Big enough to clear PAR_MIN_CELLS; includes ties, NaNs, and a
        // constant column so every planner branch runs under the fan-out.
        let rows: Vec<Vec<f64>> = (0..1200)
            .map(|i| {
                vec![
                    f64::from(i % 97),
                    f64::from((i * 13) % 7),
                    7.0,
                    if i % 50 == 3 {
                        f64::NAN
                    } else {
                        f64::from(i) * 0.25
                    },
                ]
            })
            .collect();
        let sequential = BinnedMatrix::build(view(&rows), 32);
        let pool = nurd_runtime::ThreadPool::new(4);
        for tasks in [2, 3, 8] {
            let parallel = BinnedMatrix::build_with_pool(view(&rows), 32, Some((&pool, tasks)));
            assert_eq!(parallel, sequential, "tasks = {tasks}");
        }
        // Degenerate fan-outs fall back to the sequential path.
        assert_eq!(
            BinnedMatrix::build_with_pool(view(&rows), 32, Some((&pool, 1))),
            sequential
        );
        assert_eq!(
            BinnedMatrix::build_with_pool(view(&rows), 32, None),
            sequential
        );
    }

    #[test]
    fn build_for_honors_tree_config_knob() {
        let rows: Vec<Vec<f64>> = (0..900)
            .map(|i| (0..10).map(|j| f64::from((i * (j + 3)) % 101)).collect())
            .collect();
        let cfg_seq = crate::TreeConfig::default();
        let cfg_par = crate::TreeConfig {
            n_threads: 4,
            ..crate::TreeConfig::default()
        };
        assert_eq!(
            BinnedMatrix::build_for(view(&rows), &cfg_seq),
            BinnedMatrix::build_for(view(&rows), &cfg_par)
        );
    }

    #[test]
    fn codes_agree_across_layouts() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![f64::from(i % 7), f64::from((i * 13) % 5)])
            .collect();
        let m = nurd_linalg::FeatureMatrix::from_rows(&rows).unwrap();
        let a = BinnedMatrix::build(MatrixView::Rows(&rows), 256);
        let b = BinnedMatrix::build(m.view(), 256);
        assert_eq!(a, b);
    }
}
