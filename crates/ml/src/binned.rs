//! Feature quantization for histogram-based tree growth.
//!
//! An XGBoost/LightGBM-style booster does not need raw `f64` features at
//! split-finding time: it quantizes each feature column into at most
//! [`BinnedMatrix::MAX_BINS`] bins *once per fit*, then every tree node
//! accumulates per-bin gradient/hessian statistics in a single linear pass
//! and scans bin boundaries for the best split. That replaces the exact
//! builder's per-node, per-feature `O(n log n)` re-sort with an `O(n)`
//! sweep over contiguous `u8` codes.
//!
//! Two properties of this implementation matter for correctness tests:
//!
//! * When a feature has **at most `max_bins` distinct values**, every
//!   distinct value gets its own bin and the recorded per-bin min/max
//!   collapse to that value — so candidate thresholds (midpoints between
//!   adjacent *present* values) are bit-for-bit the thresholds the exact
//!   builder proposes, and the two growth modes produce identical trees.
//! * Otherwise bins are (approximately) equal-mass quantile buckets of the
//!   training distribution, the standard accuracy/speed tradeoff.

use nurd_linalg::MatrixView;

/// Total order over `f64` with *every* NaN — positive or negative — at the
/// end. `f64::total_cmp` alone is not enough: negative NaN (the default
/// runtime NaN on x86-64, e.g. `0.0/0.0`) sorts *before* every number
/// under IEEE total ordering, which would break the "NaNs last" invariant
/// both tree builders rely on.
#[inline]
pub(crate) fn nan_last_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.is_nan().cmp(&b.is_nan()).then_with(|| a.total_cmp(&b))
}

/// Per-feature quantization: cut points plus per-bin value ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBins {
    /// Upper-boundary cut points between bins, length `n_bins - 1`; a value
    /// `v` lands in the first bin `b` with `v <= cuts[b]` (last bin
    /// otherwise).
    cuts: Vec<f64>,
    /// Smallest training value assigned to each bin.
    bin_min: Vec<f64>,
    /// Largest training value assigned to each bin.
    bin_max: Vec<f64>,
}

impl FeatureBins {
    /// Number of bins for this feature.
    #[must_use]
    pub fn n_bins(&self) -> usize {
        self.bin_min.len()
    }

    /// The bin code for a raw value (binary search over the cut points).
    ///
    /// NaN maps to the *last* bin so that training-time partitioning
    /// (`code <= left_bin` → left) and prediction-time routing
    /// (`NaN <= threshold` is false → right) agree: a NaN row always
    /// rides the right child in both phases, matching exact growth.
    #[inline]
    #[must_use]
    pub fn code_of(&self, value: f64) -> u8 {
        if value.is_nan() {
            return self.cuts.len() as u8;
        }
        // partition_point returns the count of cuts strictly below value,
        // i.e. the index of the first bin whose upper bound admits it.
        let idx = self.cuts.partition_point(|&cut| cut < value);
        debug_assert!(idx <= u8::MAX as usize);
        idx as u8
    }

    /// Smallest training value in bin `b`.
    #[inline]
    #[must_use]
    pub fn min_of(&self, b: usize) -> f64 {
        self.bin_min[b]
    }

    /// Largest training value in bin `b`.
    #[inline]
    #[must_use]
    pub fn max_of(&self, b: usize) -> f64 {
        self.bin_max[b]
    }
}

/// A quantized training matrix: per-feature bins plus column-major `u8`
/// codes, built once per `fit` and shared by every boosting round.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedMatrix {
    /// Column-major codes: `codes[f * n_rows + i]` is row `i`'s bin for
    /// feature `f`.
    codes: Vec<u8>,
    n_rows: usize,
    n_features: usize,
    features: Vec<FeatureBins>,
}

impl BinnedMatrix {
    /// Hard upper limit on bins per feature (codes are `u8`).
    pub const MAX_BINS: usize = 256;

    /// Quantizes `x` into at most `max_bins` bins per feature.
    ///
    /// `max_bins` is clamped to `[2, 256]`. The view must be non-ragged
    /// and non-empty (callers validate via [`MatrixView::validated_dims`]).
    #[must_use]
    pub fn build(x: MatrixView<'_>, max_bins: usize) -> Self {
        let n = x.rows();
        let d = x.cols();
        let max_bins = max_bins.clamp(2, Self::MAX_BINS);
        let mut codes = vec![0u8; n * d];
        let mut features = Vec::with_capacity(d);
        let mut column: Vec<f64> = Vec::with_capacity(n);
        let mut sorted: Vec<f64> = Vec::with_capacity(n);

        for f in 0..d {
            x.gather_column(f, &mut column);
            sorted.clear();
            sorted.extend_from_slice(&column);
            // A NaN-tolerant total order keeps the pass panic-free
            // (matching the exact builder): NaNs sort last, are excluded
            // from bin planning, and `code_of` routes them to the last bin
            // so they ride the right child in training and prediction alike.
            sorted.sort_by(|a, b| nan_last_cmp(*a, *b));
            let finite_end = sorted.partition_point(|v| !v.is_nan());
            let bins = if finite_end == 0 {
                // All-NaN column: a single inert bin, never splittable.
                FeatureBins {
                    cuts: Vec::new(),
                    bin_min: vec![f64::NAN],
                    bin_max: vec![f64::NAN],
                }
            } else {
                plan_feature(&sorted[..finite_end], max_bins)
            };
            let col_codes = &mut codes[f * n..(f + 1) * n];
            for (slot, &v) in col_codes.iter_mut().zip(&column) {
                *slot = bins.code_of(v);
            }
            features.push(bins);
        }

        BinnedMatrix {
            codes,
            n_rows: n,
            n_features: d,
            features,
        }
    }

    /// Number of rows (samples).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    #[must_use]
    pub fn features(&self) -> usize {
        self.n_features
    }

    /// The quantization of feature `f`.
    #[must_use]
    pub fn feature_bins(&self, f: usize) -> &FeatureBins {
        &self.features[f]
    }

    /// The contiguous code column for feature `f` (one `u8` per row).
    #[inline]
    #[must_use]
    pub fn codes(&self, f: usize) -> &[u8] {
        &self.codes[f * self.n_rows..(f + 1) * self.n_rows]
    }

    /// Largest bin count across features (histogram scratch sizing).
    #[must_use]
    pub fn max_bin_count(&self) -> usize {
        self.features
            .iter()
            .map(FeatureBins::n_bins)
            .max()
            .unwrap_or(0)
    }
}

/// Plans the bins for one feature from its sorted training values.
fn plan_feature(sorted: &[f64], max_bins: usize) -> FeatureBins {
    debug_assert!(!sorted.is_empty());
    let mut distinct: Vec<f64> = Vec::new();
    for &v in sorted {
        if distinct.last() != Some(&v) {
            distinct.push(v);
        }
    }

    if distinct.len() <= max_bins {
        // One bin per distinct value: histogram growth is then *exact* —
        // cut points are midpoints between adjacent distinct values, the
        // same candidate thresholds the exact builder enumerates.
        let cuts: Vec<f64> = distinct.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
        return FeatureBins {
            cuts,
            bin_min: distinct.clone(),
            bin_max: distinct,
        };
    }

    // Equal-mass quantile cuts over the training distribution. A cut is
    // only placed at a quantile index where the adjacent sorted values
    // *differ* — its midpoint then lies strictly inside a gap between
    // distinct data values, so heavy ties can neither duplicate cuts nor
    // produce empty bins (every inter-cut interval contains a data value).
    let n = sorted.len();
    let mut cuts: Vec<f64> = Vec::with_capacity(max_bins - 1);
    for b in 1..max_bins {
        let idx = (b * n) / max_bins;
        if idx == 0 || sorted[idx - 1] == sorted[idx] {
            continue;
        }
        let cut = 0.5 * (sorted[idx - 1] + sorted[idx]);
        if cuts.last().is_none_or(|&last| cut > last) {
            cuts.push(cut);
        }
    }

    let n_bins = cuts.len() + 1;
    let mut bin_min = vec![f64::INFINITY; n_bins];
    let mut bin_max = vec![f64::NEG_INFINITY; n_bins];
    let probe = FeatureBins {
        cuts,
        bin_min: Vec::new(),
        bin_max: Vec::new(),
    };
    for &v in sorted {
        let b = probe.code_of(v) as usize;
        bin_min[b] = bin_min[b].min(v);
        bin_max[b] = bin_max[b].max(v);
    }
    FeatureBins {
        cuts: probe.cuts,
        bin_min,
        bin_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(rows: &[Vec<f64>]) -> MatrixView<'_> {
        MatrixView::Rows(rows)
    }

    #[test]
    fn small_distinct_sets_get_one_bin_per_value() {
        let rows: Vec<Vec<f64>> = vec![vec![3.0], vec![1.0], vec![2.0], vec![1.0], vec![3.0]];
        let binned = BinnedMatrix::build(view(&rows), 256);
        let bins = binned.feature_bins(0);
        assert_eq!(bins.n_bins(), 3);
        assert_eq!(binned.codes(0), &[2, 0, 1, 0, 2]);
        assert_eq!(bins.min_of(1), 2.0);
        assert_eq!(bins.max_of(1), 2.0);
    }

    #[test]
    fn cut_points_are_midpoints_in_exact_regime() {
        let rows: Vec<Vec<f64>> = vec![vec![0.0], vec![10.0], vec![1.0]];
        let binned = BinnedMatrix::build(view(&rows), 256);
        let bins = binned.feature_bins(0);
        assert_eq!(bins.cuts, vec![0.5, 5.5]);
    }

    #[test]
    fn many_distinct_values_collapse_to_max_bins() {
        let rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![f64::from(i)]).collect();
        let binned = BinnedMatrix::build(view(&rows), 64);
        let bins = binned.feature_bins(0);
        assert!(bins.n_bins() <= 64);
        assert!(bins.n_bins() >= 60, "quantile cuts should not collapse");
        // Codes are monotone in the value.
        let codes = binned.codes(0);
        for i in 1..1000 {
            assert!(codes[i] >= codes[i - 1]);
        }
        // Roughly equal mass per bin.
        let mut counts = vec![0usize; bins.n_bins()];
        for &c in codes {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "no empty bins");
        let max = counts.iter().max().unwrap();
        assert!(*max <= 2 * (1000 / bins.n_bins()), "max bin {max}");
    }

    #[test]
    fn heavy_ties_do_not_produce_degenerate_bins() {
        // 90% zeros, a few distinct positives — the quantile cuts all land
        // on zero and must be deduplicated.
        let mut rows: Vec<Vec<f64>> = vec![vec![0.0]; 900];
        for i in 0..300 {
            rows.push(vec![1.0 + f64::from(i)]);
        }
        let binned = BinnedMatrix::build(view(&rows), 16);
        let bins = binned.feature_bins(0);
        assert!(bins.n_bins() >= 2);
        let mut counts = vec![0usize; bins.n_bins()];
        for &c in binned.codes(0) {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "no empty bins: {counts:?}");
    }

    #[test]
    fn constant_feature_yields_single_bin() {
        let rows: Vec<Vec<f64>> = vec![vec![7.0]; 10];
        let binned = BinnedMatrix::build(view(&rows), 256);
        assert_eq!(binned.feature_bins(0).n_bins(), 1);
        assert!(binned.codes(0).iter().all(|&c| c == 0));
    }

    #[test]
    fn nan_features_do_not_panic_and_route_to_last_bin() {
        // NaN tolerance must match the exact builder: degraded model,
        // never a panic. NaNs are excluded from planning and coded into
        // the last bin, so they ride the right child of every split in
        // training and prediction alike.
        // Negative NaN (the default runtime NaN on x86-64, e.g. 0.0/0.0)
        // sorts *first* under f64::total_cmp — the planner must still
        // treat it as NaN-last.
        let neg_nan = f64::from_bits(0xFFF8_0000_0000_0000);
        assert!(neg_nan.is_nan() && neg_nan.is_sign_negative());
        let rows: Vec<Vec<f64>> = vec![
            vec![1.0, f64::NAN],
            vec![neg_nan, f64::NAN],
            vec![3.0, neg_nan],
            vec![2.0, f64::NAN],
        ];
        let binned = BinnedMatrix::build(view(&rows), 256);
        let bins0 = binned.feature_bins(0);
        assert_eq!(bins0.n_bins(), 3);
        assert_eq!(binned.codes(0), &[0, 2, 2, 1]);
        // No NaN leaked into the planning: cuts and bin stats are finite.
        assert!((0..bins0.n_bins()).all(|b| bins0.min_of(b).is_finite()));
        assert!((0..bins0.n_bins()).all(|b| bins0.max_of(b).is_finite()));
        // All-NaN column collapses to one inert bin.
        assert_eq!(binned.feature_bins(1).n_bins(), 1);
        assert!(binned.codes(1).iter().all(|&c| c == 0));
    }

    #[test]
    fn codes_agree_across_layouts() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![f64::from(i % 7), f64::from((i * 13) % 5)])
            .collect();
        let m = nurd_linalg::FeatureMatrix::from_rows(&rows).unwrap();
        let a = BinnedMatrix::build(MatrixView::Rows(&rows), 256);
        let b = BinnedMatrix::build(m.view(), 256);
        assert_eq!(a, b);
    }
}
