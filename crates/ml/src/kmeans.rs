//! Lloyd's k-means with k-means++ initialization.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::MlError;

/// Hyperparameters for [`KMeans`].
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on total centroid movement.
    pub tol: f64,
    /// RNG seed for k-means++ seeding.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iter: 100,
            tol: 1e-6,
            seed: 23,
        }
    }
}

/// Fitted k-means clustering (substrate for the CBLOF detector).
///
/// # Example
///
/// ```
/// use nurd_ml::{KMeans, KMeansConfig};
///
/// # fn main() -> Result<(), nurd_ml::MlError> {
/// let x = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let km = KMeans::fit(&x, &KMeansConfig { k: 2, ..Default::default() })?;
/// assert_eq!(km.assign(&[0.05]), km.assign(&[0.0]));
/// assert_ne!(km.assign(&[0.05]), km.assign(&[10.05]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    labels: Vec<usize>,
    cluster_sizes: Vec<usize>,
}

impl KMeans {
    /// Clusters the samples.
    ///
    /// If `k` exceeds the number of samples it is truncated to it.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] on empty input,
    /// [`MlError::InvalidConfig`] if `k == 0`,
    /// [`MlError::DimensionMismatch`] on ragged rows.
    pub fn fit(x: &[Vec<f64>], config: &KMeansConfig) -> Result<Self, MlError> {
        let dummy_y = vec![0.0; x.len()];
        crate::error::check_xy(x, &dummy_y)?;
        if config.k == 0 {
            return Err(MlError::InvalidConfig("k must be >= 1".into()));
        }
        let n = x.len();
        let k = config.k.min(n);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(x[rng.gen_range(0..n)].clone());
        let mut d2: Vec<f64> = x
            .iter()
            .map(|p| nurd_linalg::squared_distance(p, &centroids[0]))
            .collect();
        while centroids.len() < k {
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                // All points coincide with existing centroids; pick any.
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = n - 1;
                for (i, &w) in d2.iter().enumerate() {
                    if target < w {
                        chosen = i;
                        break;
                    }
                    target -= w;
                }
                chosen
            };
            centroids.push(x[next].clone());
            for (i, p) in x.iter().enumerate() {
                let nd = nurd_linalg::squared_distance(p, centroids.last().expect("nonempty"));
                if nd < d2[i] {
                    d2[i] = nd;
                }
            }
        }

        // Lloyd iterations.
        let d = x[0].len();
        let mut labels = vec![0usize; n];
        for _ in 0..config.max_iter {
            for (i, p) in x.iter().enumerate() {
                labels[i] = nearest(p, &centroids).0;
            }
            let mut sums = vec![vec![0.0; d]; k];
            let mut counts = vec![0usize; k];
            for (i, p) in x.iter().enumerate() {
                counts[labels[i]] += 1;
                nurd_linalg::add_scaled(&mut sums[labels[i]], 1.0, p);
            }
            let mut movement = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    continue; // keep the old centroid for an emptied cluster
                }
                nurd_linalg::scale(&mut sums[c], 1.0 / counts[c] as f64);
                movement += nurd_linalg::euclidean_distance(&sums[c], &centroids[c]);
                centroids[c] = std::mem::take(&mut sums[c]);
            }
            if movement < config.tol {
                break;
            }
        }
        for (i, p) in x.iter().enumerate() {
            labels[i] = nearest(p, &centroids).0;
        }
        let mut cluster_sizes = vec![0usize; k];
        for &l in &labels {
            cluster_sizes[l] += 1;
        }
        Ok(KMeans {
            centroids,
            labels,
            cluster_sizes,
        })
    }

    /// Cluster centroids.
    #[must_use]
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Training-sample cluster assignments, aligned with the input order.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of training samples per cluster.
    #[must_use]
    pub fn cluster_sizes(&self) -> &[usize] {
        &self.cluster_sizes
    }

    /// Index of the nearest centroid to `point`.
    #[must_use]
    pub fn assign(&self, point: &[f64]) -> usize {
        nearest(point, &self.centroids).0
    }

    /// Distance from `point` to its nearest centroid.
    #[must_use]
    pub fn distance_to_nearest(&self, point: &[f64]) -> f64 {
        nearest(point, &self.centroids).1
    }
}

fn nearest(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let dist = nurd_linalg::euclidean_distance(point, centroid);
        if dist < best.1 {
            best = (c, dist);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut x = Vec::new();
        for i in 0..10 {
            x.push(vec![i as f64 * 0.01, 0.0]);
            x.push(vec![5.0 + i as f64 * 0.01, 5.0]);
        }
        x
    }

    #[test]
    fn recovers_two_blobs() {
        let x = two_blobs();
        let km = KMeans::fit(
            &x,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let l0 = km.assign(&[0.0, 0.0]);
        let l1 = km.assign(&[5.0, 5.0]);
        assert_ne!(l0, l1);
        assert_eq!(km.cluster_sizes().iter().sum::<usize>(), x.len());
        assert_eq!(km.cluster_sizes()[l0], 10);
        assert_eq!(km.cluster_sizes()[l1], 10);
    }

    #[test]
    fn k_truncated_to_sample_count() {
        let x = vec![vec![0.0], vec![1.0]];
        let km = KMeans::fit(
            &x,
            &KMeansConfig {
                k: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(km.centroids().len(), 2);
    }

    #[test]
    fn identical_points_single_cluster_behaviour() {
        let x = vec![vec![3.0, 3.0]; 6];
        let km = KMeans::fit(
            &x,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(km.distance_to_nearest(&[3.0, 3.0]) < 1e-12);
    }

    #[test]
    fn rejects_k_zero() {
        let x = vec![vec![1.0]];
        assert!(matches!(
            KMeans::fit(
                &x,
                &KMeansConfig {
                    k: 0,
                    ..Default::default()
                }
            ),
            Err(MlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(
            KMeans::fit(&[], &KMeansConfig::default()),
            Err(MlError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn deterministic_under_seed() {
        let x = two_blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 5,
            ..Default::default()
        };
        let a = KMeans::fit(&x, &cfg).unwrap();
        let b = KMeans::fit(&x, &cfg).unwrap();
        assert_eq!(a.labels(), b.labels());
    }

    proptest! {
        /// Every sample is assigned to its nearest centroid (Lloyd's
        /// invariant at convergence of the final assignment pass).
        #[test]
        fn prop_assignments_are_nearest(points in proptest::collection::vec(
            proptest::collection::vec(-10.0..10.0f64, 2), 3..24), k in 1usize..4) {
            let km = KMeans::fit(&points, &KMeansConfig { k, ..Default::default() }).unwrap();
            for (i, p) in points.iter().enumerate() {
                let assigned = km.labels()[i];
                let d_assigned = nurd_linalg::euclidean_distance(p, &km.centroids()[assigned]);
                for c in km.centroids() {
                    prop_assert!(d_assigned <= nurd_linalg::euclidean_distance(p, c) + 1e-9);
                }
            }
        }

        /// Cluster sizes partition the sample count.
        #[test]
        fn prop_sizes_partition(points in proptest::collection::vec(
            proptest::collection::vec(-5.0..5.0f64, 2), 2..20), k in 1usize..5) {
            let km = KMeans::fit(&points, &KMeansConfig { k, ..Default::default() }).unwrap();
            prop_assert_eq!(km.cluster_sizes().iter().sum::<usize>(), points.len());
        }
    }
}
