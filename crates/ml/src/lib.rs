//! From-scratch ML primitives for the NURD reproduction.
//!
//! The paper's method stack is built on a small number of classic learners:
//!
//! * [`GradientBoosting`] — Newton-boosted regression trees (XGBoost-style)
//!   with a pluggable [`Loss`]; NURD's latency predictor `h_t`, the GBTR
//!   baseline, XGBOD's supervised head and Grabit (via a Tobit loss defined
//!   in `nurd-survival`) all reuse it.
//! * [`LogisticRegression`] — IRLS-fit; NURD's propensity-score model `g_t`
//!   and the PU-EN non-traditional classifier.
//! * [`LinearSvm`] — Pegasos-trained linear SVM; Wrangler and PU-BG.
//! * [`KMeans`], [`NearestNeighbors`] — substrates for the outlier detectors.
//!
//! # Exact vs. histogram tree growth
//!
//! Because NURD refits the booster at *every checkpoint of every job*,
//! tree construction dominates end-to-end replay cost. The tree builder
//! therefore ships two growth strategies behind one API
//! ([`TreeConfig::growth`]):
//!
//! * **Histogram** (default): each feature is quantized into at most
//!   [`TreeConfig::max_bins`] ≤ 256 bins once per fit ([`BinnedMatrix`]);
//!   nodes accumulate per-bin gradient/hessian statistics in one linear
//!   pass over contiguous `u8` codes and scan bin boundaries for the
//!   split. `O(n·d)` split finding per level; measured ~4× faster
//!   GBT fits at n = 300 and growing with n. When every feature has at
//!   most `max_bins` distinct values the trees are *identical* to exact
//!   growth (property-tested); beyond that, thresholds are restricted to
//!   quantile bin boundaries — for a single shallow tree on small data
//!   the one-off quantization cost can outweigh the per-node savings, but
//!   boosting amortizes it across all rounds.
//! * **Exact**: the classic per-node, per-feature re-sort enumerating
//!   every midpoint between adjacent distinct values
//!   (`O(d · n log n)` per node). Pin `TreeGrowth::Exact` in
//!   accuracy-sensitive comparisons or to reproduce pre-histogram
//!   behaviour bit-for-bit.
//!
//! Training data flows in through `nurd_linalg::MatrixView`, so checkpoint
//! row slices train zero-copy; see `GradientBoosting::fit_view` and
//! `RegressionTree::fit_binned` for the hot-path entry points.
//!
//! # Warm-start primitives
//!
//! Three additions let `nurd-core` refit *incrementally* across
//! checkpoints instead of from scratch (its `WarmRefitState` is the
//! orchestrator; these are the mechanisms):
//!
//! * [`BinnedMatrix::append_from`] grows a quantized matrix in place —
//!   only appended rows are re-coded against the existing bin edges, and
//!   a Kolmogorov–Smirnov drift statistic reports when those edges have
//!   gone stale;
//! * [`GradientBoosting::warm_start`] boosts a few new rounds onto a
//!   previous ensemble over such a grown matrix
//!   ([`GradientBoosting::fit_binned`] is the matching cold entry);
//! * [`RegressionTree::predict_binned`] replays trees over contiguous
//!   `u8` bin codes — raw `f64` features are never touched in a
//!   histogram-mode fit. Histogram construction itself uses LightGBM-style
//!   sibling subtraction (see [`TreeConfig::hist_subtraction`]).
//!
//! # The flat inference layout
//!
//! Fitted ensembles flatten into [`FlatForest`] — a structure-of-arrays
//! node layout with self-looping leaves walked a fixed number of steps per
//! row, **bit-identical** to the pointer-tree paths (property-tested).
//! Every boosting round's score update and every warm-start replay run
//! through its batch kernels, and `nurd-core` scores whole barriers with
//! one [`FlatForest::predict_binned_batch`]-style pass per model.
//!
//! # Example
//!
//! ```
//! use nurd_ml::{GbtConfig, GradientBoosting, SquaredLoss};
//!
//! # fn main() -> Result<(), nurd_ml::MlError> {
//! let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
//! let y = vec![0.0, 1.0, 2.0, 3.0];
//! let model = GradientBoosting::fit(&x, &y, SquaredLoss, &GbtConfig::default())?;
//! let pred = model.predict(&[1.5]);
//! assert!((pred - 1.5).abs() < 1.0);
//! # Ok(())
//! # }
//! ```

mod binned;
mod error;
mod flat;
mod gbt;
mod kmeans;
mod logistic;
mod metrics;
mod neighbors;
mod scaler;
mod svm;
mod tree;

pub use binned::{BinnedMatrix, FeatureBins};
pub use error::MlError;
pub use flat::{FlatForest, DEFAULT_LANES, SUPPORTED_LANES};
pub use gbt::{GbtConfig, GradientBoosting, LogisticLoss, Loss, SquaredLoss};
pub use kmeans::{KMeans, KMeansConfig};
pub use logistic::{LogisticConfig, LogisticRegression};
pub use metrics::{accuracy, f1_score, mean_absolute_error, mean_squared_error, sigmoid};
pub use neighbors::NearestNeighbors;
pub use scaler::StandardScaler;
pub use svm::{LinearSvm, SvmConfig};
pub use tree::{RegressionTree, TreeConfig, TreeGrowth};
