//! From-scratch ML primitives for the NURD reproduction.
//!
//! The paper's method stack is built on a small number of classic learners:
//!
//! * [`GradientBoosting`] — Newton-boosted regression trees (XGBoost-style)
//!   with a pluggable [`Loss`]; NURD's latency predictor `h_t`, the GBTR
//!   baseline, XGBOD's supervised head and Grabit (via a Tobit loss defined
//!   in `nurd-survival`) all reuse it.
//! * [`LogisticRegression`] — IRLS-fit; NURD's propensity-score model `g_t`
//!   and the PU-EN non-traditional classifier.
//! * [`LinearSvm`] — Pegasos-trained linear SVM; Wrangler and PU-BG.
//! * [`KMeans`], [`NearestNeighbors`] — substrates for the outlier detectors.
//!
//! # Example
//!
//! ```
//! use nurd_ml::{GbtConfig, GradientBoosting, SquaredLoss};
//!
//! # fn main() -> Result<(), nurd_ml::MlError> {
//! let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
//! let y = vec![0.0, 1.0, 2.0, 3.0];
//! let model = GradientBoosting::fit(&x, &y, SquaredLoss, &GbtConfig::default())?;
//! let pred = model.predict(&[1.5]);
//! assert!((pred - 1.5).abs() < 1.0);
//! # Ok(())
//! # }
//! ```

mod error;
mod gbt;
mod kmeans;
mod logistic;
mod metrics;
mod neighbors;
mod scaler;
mod svm;
mod tree;

pub use error::MlError;
pub use gbt::{GbtConfig, GradientBoosting, LogisticLoss, Loss, SquaredLoss};
pub use kmeans::{KMeans, KMeansConfig};
pub use logistic::{LogisticConfig, LogisticRegression};
pub use metrics::{accuracy, f1_score, mean_absolute_error, mean_squared_error, sigmoid};
pub use neighbors::NearestNeighbors;
pub use scaler::StandardScaler;
pub use svm::{LinearSvm, SvmConfig};
pub use tree::{RegressionTree, TreeConfig};
