//! Reusable feature standardization.

use nurd_linalg::LinalgError;

use crate::MlError;

/// Zero-mean / unit-variance feature scaler with a fit/transform API.
///
/// # Example
///
/// ```
/// use nurd_ml::StandardScaler;
///
/// # fn main() -> Result<(), nurd_ml::MlError> {
/// let scaler = StandardScaler::fit(&[vec![0.0], vec![10.0]])?;
/// let z = scaler.transform_row(&[5.0]);
/// assert!(z[0].abs() < 1e-12); // 5.0 is the mean
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Learns per-column means and standard deviations.
    ///
    /// Constant columns get `std = 1` so they map to zero.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] on empty input,
    /// [`MlError::DimensionMismatch`] on ragged rows.
    pub fn fit(x: &[Vec<f64>]) -> Result<Self, MlError> {
        let mut copy = x.to_vec();
        let params = nurd_linalg::standardize_columns(&mut copy).map_err(|e| match e {
            LinalgError::Empty => MlError::EmptyTrainingSet,
            other => MlError::DimensionMismatch {
                expected: "rectangular sample matrix".into(),
                found: other.to_string(),
            },
        })?;
        Ok(StandardScaler {
            means: params.means,
            stds: params.stds,
        })
    }

    /// Standardizes one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` has a different width than the fitted data.
    #[must_use]
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "feature width mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Standardizes a batch of rows.
    #[must_use]
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Per-column means.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations (floored for constant columns).
    #[must_use]
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_zero_mean() {
        let x = vec![vec![1.0, -10.0], vec![3.0, 10.0]];
        let scaler = StandardScaler::fit(&x).unwrap();
        let t = scaler.transform(&x);
        for j in 0..2 {
            let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let x = vec![vec![7.0], vec![7.0]];
        let scaler = StandardScaler::fit(&x).unwrap();
        assert_eq!(scaler.transform_row(&[7.0]), vec![0.0]);
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            StandardScaler::fit(&[]),
            Err(MlError::EmptyTrainingSet)
        ));
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn transform_checks_width() {
        let scaler = StandardScaler::fit(&[vec![1.0], vec![2.0]]).unwrap();
        let _ = scaler.transform_row(&[1.0, 2.0]);
    }
}
