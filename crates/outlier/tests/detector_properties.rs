//! Property tests across the full detector suite: on arbitrary
//! well-formed data, every detector must return finite scores of the right
//! length, behave deterministically, and respect basic ranking sanity.

use proptest::prelude::*;

use nurd_outlier::{
    Abod, Cblof, Cof, Hbos, IsolationForest, Knn, Lof, Lscp, Mcd, OcSvm, OutlierDetector,
    PcaDetector, Sod, Sos,
};

fn detectors() -> Vec<Box<dyn OutlierDetector>> {
    vec![
        Box::new(Abod::default()),
        Box::new(Cblof::default()),
        Box::new(Hbos::default()),
        Box::new(IsolationForest::default()),
        Box::new(Knn::default()),
        Box::new(Lof::default()),
        Box::new(Cof::default()),
        Box::new(Mcd::default()),
        Box::new(OcSvm::default()),
        Box::new(PcaDetector::default()),
        Box::new(Sos::default()),
        Box::new(Lscp::default()),
        Box::new(Sod::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Finite, length-aligned scores on arbitrary rectangular data.
    #[test]
    fn prop_scores_finite_and_aligned(rows in proptest::collection::vec(
        proptest::collection::vec(-100.0..100.0f64, 3), 12..40)) {
        for det in detectors() {
            // Degenerate random data may legitimately be rejected
            // (e.g. MCD on near-singular scatter) — but only with a
            // proper error, never a panic.
            if let Ok(scores) = det.score_all(&rows) {
                prop_assert_eq!(scores.len(), rows.len(), "{}", det.name());
                prop_assert!(
                    scores.iter().all(|s| s.is_finite()),
                    "{} produced non-finite scores", det.name()
                );
            }
        }
    }

    /// Determinism: scoring twice gives identical results.
    #[test]
    fn prop_detectors_deterministic(rows in proptest::collection::vec(
        proptest::collection::vec(-50.0..50.0f64, 2), 10..24)) {
        for det in detectors() {
            let a = det.score_all(&rows);
            let b = det.score_all(&rows);
            match (a, b) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "{} nondeterministic", det.name()),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "{} flip-flopped Ok/Err", det.name()),
            }
        }
    }

    /// Translation invariance of ranking for distance-based detectors:
    /// shifting all points by a constant must keep the top-scoring index.
    #[test]
    fn prop_translation_preserves_top_outlier(shift in -1e3..1e3f64) {
        let mut rows: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1])
            .collect();
        rows.push(vec![9.0, 9.0]);
        let shifted: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.iter().map(|v| v + shift).collect())
            .collect();
        for det in [
            Box::new(Knn::default()) as Box<dyn OutlierDetector>,
            Box::new(Lof::default()),
            Box::new(Hbos::default()),
        ] {
            let top = |scores: &[f64]| -> usize {
                scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            };
            let base = det.score_all(&rows).unwrap();
            let moved = det.score_all(&shifted).unwrap();
            prop_assert_eq!(top(&base), top(&moved), "{} not shift-stable", det.name());
        }
    }
}
