//! Cluster-based local outlier factor (He, Xu & Deng, 2003).

use nurd_ml::{KMeans, KMeansConfig, MlError, StandardScaler};

use crate::OutlierDetector;

/// CBLOF: cluster the data, split clusters into "large" and "small" by the
/// α/β rule, and score each point by its distance to the nearest *large*
/// cluster centroid (unweighted variant, PyOD's default).
#[derive(Debug, Clone, PartialEq)]
pub struct Cblof {
    /// Number of k-means clusters.
    pub clusters: usize,
    /// Fraction of points that must live in large clusters (α).
    pub alpha: f64,
    /// Minimum size ratio between consecutive large/small clusters (β).
    pub beta: f64,
    /// RNG seed for k-means.
    pub seed: u64,
}

impl Default for Cblof {
    fn default() -> Self {
        Cblof {
            clusters: 8,
            alpha: 0.9,
            beta: 5.0,
            seed: 99,
        }
    }
}

impl OutlierDetector for Cblof {
    fn name(&self) -> &'static str {
        "CBLOF"
    }

    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let km = KMeans::fit(
            &xs,
            &KMeansConfig {
                k: self.clusters,
                seed: self.seed,
                ..KMeansConfig::default()
            },
        )?;

        // Order clusters by size (descending) and find the large/small
        // boundary per the CBLOF paper.
        let sizes = km.cluster_sizes();
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]));
        let n = xs.len() as f64;
        let mut large = vec![false; sizes.len()];
        let mut cumulative = 0usize;
        let mut boundary = order.len();
        for (rank, &c) in order.iter().enumerate() {
            cumulative += sizes[c];
            let alpha_hit = cumulative as f64 >= self.alpha * n;
            let beta_hit = rank + 1 < order.len()
                && sizes[order[rank + 1]] > 0
                && sizes[c] as f64 / sizes[order[rank + 1]] as f64 >= self.beta;
            if alpha_hit || beta_hit {
                boundary = rank + 1;
                break;
            }
        }
        for &c in order.iter().take(boundary) {
            large[c] = true;
        }
        // Degenerate safeguard: at least the biggest cluster is large.
        if !large.iter().any(|&l| l) {
            large[order[0]] = true;
        }

        Ok(xs
            .iter()
            .map(|p| {
                km.centroids()
                    .iter()
                    .enumerate()
                    .filter(|&(c, _)| large[c])
                    .map(|(_, centroid)| nurd_linalg::euclidean_distance(p, centroid))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cluster_members_score_high() {
        // One big blob, one tiny far-away blob.
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 8) as f64 * 0.05, (i / 8) as f64 * 0.05])
            .collect();
        rows.push(vec![10.0, 10.0]);
        rows.push(vec![10.1, 10.0]);
        let scores = Cblof {
            clusters: 3,
            ..Cblof::default()
        }
        .score_all(&rows)
        .unwrap();
        let inlier_max = scores[..60]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(scores[60] > inlier_max);
        assert!(scores[61] > inlier_max);
    }

    #[test]
    fn big_cluster_members_score_near_zero() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 5) as f64 * 0.01]).collect();
        let scores = Cblof::default().score_all(&rows).unwrap();
        assert!(scores.iter().all(|&s| s < 1.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let a = Cblof::default().score_all(&rows).unwrap();
        let b = Cblof::default().score_all(&rows).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_empty() {
        assert!(Cblof::default().score_all(&[]).is_err());
    }
}
