//! XGBOD (Zhao & Hryniewicki, 2018): supervised detection on top of
//! unsupervised representations.

use nurd_ml::{GbtConfig, GradientBoosting, LogisticLoss, MlError};

use crate::{Hbos, IsolationForest, Knn, Lof, OutlierDetector};

/// XGBOD: augments the raw features with the score columns of a battery of
/// unsupervised detectors, then trains a boosted-tree classifier on the
/// augmented representation.
///
/// XGBOD is the one *semi-supervised* member of the paper's outlier suite:
/// it needs labels. The online protocol has no straggler labels, so the
/// baseline adapter feeds it finished-vs-running proxy labels (see
/// `DESIGN.md` §3).
#[derive(Debug, Clone)]
pub struct Xgbod {
    /// Boosted-tree head configuration.
    pub gbt: GbtConfig,
}

impl Default for Xgbod {
    fn default() -> Self {
        Xgbod {
            gbt: GbtConfig {
                n_rounds: 40,
                ..GbtConfig::default()
            },
        }
    }
}

/// A fitted XGBOD model.
#[derive(Debug, Clone)]
pub struct FittedXgbod {
    classifier: GradientBoosting<LogisticLoss>,
    battery: Battery,
}

#[derive(Debug, Clone)]
struct Battery;

impl Battery {
    /// Unsupervised score columns for a sample set. The battery mirrors
    /// XGBOD's "transformed outlier representation": distance, density,
    /// histogram and isolation views.
    fn augment(x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, MlError> {
        let columns: Vec<Vec<f64>> = vec![
            Knn { k: 3 }.score_all(x)?,
            Knn { k: 7 }.score_all(x)?,
            Lof { k: 10 }.score_all(x)?,
            Hbos::default().score_all(x)?,
            IsolationForest {
                trees: 50,
                ..IsolationForest::default()
            }
            .score_all(x)?,
        ];
        Ok(x.iter()
            .enumerate()
            .map(|(i, row)| {
                let mut augmented = row.clone();
                augmented.extend(
                    columns
                        .iter()
                        .map(|c| if c[i].is_finite() { c[i] } else { 0.0 }),
                );
                augmented
            })
            .collect())
    }
}

impl Xgbod {
    /// Fits on a labeled sample set (`labels` in `{0, 1}`, 1 = outlier).
    ///
    /// # Errors
    ///
    /// Propagates shape and configuration errors from the battery and the
    /// boosted-tree head.
    pub fn fit(&self, x: &[Vec<f64>], labels: &[f64]) -> Result<FittedXgbod, MlError> {
        let augmented = Battery::augment(x)?;
        let classifier = GradientBoosting::fit(&augmented, labels, LogisticLoss, &self.gbt)?;
        Ok(FittedXgbod {
            classifier,
            battery: Battery,
        })
    }
}

impl FittedXgbod {
    /// Outlier probabilities for a (possibly different) sample set. The
    /// unsupervised battery is re-run transductively on the new set, as the
    /// online protocol refits per checkpoint anyway.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the battery.
    pub fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let _ = &self.battery;
        let augmented = Battery::augment(x)?;
        Ok(augmented
            .iter()
            .map(|row| self.classifier.predict_proba(row))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled_blob() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1])
            .collect();
        let mut y = vec![0.0; 60];
        for i in 0..6 {
            x.push(vec![5.0 + i as f64 * 0.05, 5.0]);
            y.push(1.0);
        }
        (x, y)
    }

    #[test]
    fn learns_labeled_outliers() {
        let (x, y) = labeled_blob();
        let model = Xgbod::default().fit(&x, &y).unwrap();
        let scores = model.score_all(&x).unwrap();
        let mean_out: f64 = scores[60..].iter().sum::<f64>() / 6.0;
        let mean_in: f64 = scores[..60].iter().sum::<f64>() / 60.0;
        assert!(
            mean_out > mean_in + 0.2,
            "outlier mean {mean_out} vs inlier mean {mean_in}"
        );
    }

    #[test]
    fn scores_are_probabilities() {
        let (x, y) = labeled_blob();
        let model = Xgbod::default().fit(&x, &y).unwrap();
        let scores = model.score_all(&x).unwrap();
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn rejects_mismatched_labels() {
        let (x, _) = labeled_blob();
        assert!(Xgbod::default().fit(&x, &[1.0]).is_err());
    }
}
