//! Locally selective combination in parallel outlier ensembles (Zhao et
//! al., 2019).

use nurd_ml::{MlError, NearestNeighbors, StandardScaler};

use crate::lof::Lof;
use crate::OutlierDetector;

/// LSCP over a LOF ensemble: for each test point, build a local region via
/// kNN, form a pseudo ground truth (the ensemble-maximum score on the
/// region), and emit the score of the base detector whose regional scores
/// correlate best with that pseudo target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lscp {
    /// Neighborhood sizes of the LOF base detectors.
    pub detector_ks: Vec<usize>,
    /// Local region size.
    pub region_size: usize,
}

impl Default for Lscp {
    fn default() -> Self {
        Lscp {
            detector_ks: vec![5, 10, 15, 20],
            region_size: 30,
        }
    }
}

/// Pearson correlation; `0.0` when either side is constant.
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Z-score normalization of a score vector (LSCP normalizes base detector
/// outputs before combining).
fn zscore(scores: &[f64]) -> Vec<f64> {
    let n = scores.len() as f64;
    let mean = scores.iter().sum::<f64>() / n;
    let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    let std = var.sqrt().max(1e-12);
    scores.iter().map(|s| (s - mean) / std).collect()
}

impl OutlierDetector for Lscp {
    fn name(&self) -> &'static str {
        "LSCP"
    }

    /// # Errors
    ///
    /// [`MlError::InvalidConfig`] when the detector pool is empty, plus the
    /// usual shape errors.
    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        if self.detector_ks.is_empty() {
            return Err(MlError::InvalidConfig(
                "LSCP needs at least one base detector".into(),
            ));
        }
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let n = xs.len();

        // Base detector scores, z-normalized.
        let base_scores: Vec<Vec<f64>> = self
            .detector_ks
            .iter()
            .map(|&k| Lof { k }.score_all(x).map(|s| zscore(&s)))
            .collect::<Result<_, _>>()?;

        // Pseudo ground truth: ensemble maximum per point.
        let pseudo: Vec<f64> = (0..n)
            .map(|i| {
                base_scores
                    .iter()
                    .map(|s| s[i])
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();

        let nn = NearestNeighbors::new(xs)?;
        let region = self.region_size.min(n.saturating_sub(1)).max(1);

        Ok((0..n)
            .map(|i| {
                let hits = nn.neighbors_of(i, region);
                let local: Vec<usize> = hits.into_iter().map(|(j, _)| j).collect();
                if local.is_empty() {
                    return pseudo[i];
                }
                let target: Vec<f64> = local.iter().map(|&j| pseudo[j]).collect();
                let mut best = (0usize, f64::NEG_INFINITY);
                for (det, scores) in base_scores.iter().enumerate() {
                    let regional: Vec<f64> = local.iter().map(|&j| scores[j]).collect();
                    let corr = pearson(&regional, &target);
                    if corr > best.1 {
                        best = (det, corr);
                    }
                }
                base_scores[best.0][i]
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_planted_outlier() {
        let mut rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1])
            .collect();
        rows.push(vec![4.0, 4.0]);
        let scores = Lscp::default().score_all(&rows).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 40);
    }

    #[test]
    fn pearson_known_values() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn zscore_normalizes() {
        let z = zscore(&[1.0, 2.0, 3.0, 4.0]);
        let mean: f64 = z.iter().sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_pool() {
        let empty = Lscp {
            detector_ks: vec![],
            region_size: 10,
        };
        assert!(matches!(
            empty.score_all(&[vec![1.0]]),
            Err(MlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(Lscp::default().score_all(&[]).is_err());
    }
}
