//! Isolation forest (Liu, Ting & Zhou, 2008).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use nurd_ml::MlError;

use crate::OutlierDetector;

/// Isolation forest: random axis-parallel splits isolate outliers in fewer
/// steps. Score = `2^(-E[path length] / c(n))` (∈ (0, 1]; > 0.5 is
/// anomalous).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationForest {
    /// Number of isolation trees.
    pub trees: usize,
    /// Subsample size per tree (ψ in the paper; 256 is the canonical value).
    pub subsample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IsolationForest {
    fn default() -> Self {
        IsolationForest {
            trees: 100,
            subsample: 256,
            seed: 1337,
        }
    }
}

#[derive(Debug)]
enum Node {
    Leaf {
        size: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn build(rng: &mut StdRng, x: &[Vec<f64>], indices: Vec<usize>, max_depth: usize) -> Tree {
        let mut nodes = Vec::new();
        Self::grow(rng, x, indices, 0, max_depth, &mut nodes);
        Tree { nodes }
    }

    fn grow(
        rng: &mut StdRng,
        x: &[Vec<f64>],
        indices: Vec<usize>,
        depth: usize,
        max_depth: usize,
        nodes: &mut Vec<Node>,
    ) -> usize {
        if depth >= max_depth || indices.len() <= 1 {
            nodes.push(Node::Leaf {
                size: indices.len(),
            });
            return nodes.len() - 1;
        }
        let d = x[0].len();
        // Pick a feature with spread; give up after a few tries (all-equal
        // subsample).
        for _ in 0..4 * d {
            let feature = rng.gen_range(0..d);
            let lo = indices
                .iter()
                .map(|&i| x[i][feature])
                .fold(f64::INFINITY, f64::min);
            let hi = indices
                .iter()
                .map(|&i| x[i][feature])
                .fold(f64::NEG_INFINITY, f64::max);
            if hi - lo < 1e-12 {
                continue;
            }
            let threshold = rng.gen_range(lo..hi);
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| x[i][feature] < threshold);
            if left_idx.is_empty() || right_idx.is_empty() {
                continue;
            }
            let placeholder = nodes.len();
            nodes.push(Node::Leaf { size: 0 });
            let left = Self::grow(rng, x, left_idx, depth + 1, max_depth, nodes);
            let right = Self::grow(rng, x, right_idx, depth + 1, max_depth, nodes);
            nodes[placeholder] = Node::Split {
                feature,
                threshold,
                left,
                right,
            };
            return placeholder;
        }
        nodes.push(Node::Leaf {
            size: indices.len(),
        });
        nodes.len() - 1
    }

    /// Path length of `point`, with the standard `c(size)` correction at
    /// unexpanded leaves.
    fn path_length(&self, point: &[f64]) -> f64 {
        let mut idx = 0;
        let mut depth = 0.0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { size } => {
                    return depth + average_path_length(*size);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    depth += 1.0;
                    idx = if point[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// `c(n)`: average path length of an unsuccessful BST search — the
/// normalizer from the isolation-forest paper.
fn average_path_length(n: usize) -> f64 {
    match n {
        0 | 1 => 0.0,
        2 => 1.0,
        _ => {
            let nf = n as f64;
            // Harmonic number approximation H(n-1) ≈ ln(n-1) + γ.
            2.0 * ((nf - 1.0).ln() + 0.577_215_664_901_532_9) - 2.0 * (nf - 1.0) / nf
        }
    }
}

impl OutlierDetector for IsolationForest {
    fn name(&self) -> &'static str {
        "IFOREST"
    }

    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let first = x.first().ok_or(MlError::EmptyTrainingSet)?;
        let d = first.len();
        if x.iter().any(|r| r.len() != d) {
            return Err(MlError::DimensionMismatch {
                expected: format!("rows of width {d}"),
                found: "ragged rows".into(),
            });
        }
        let n = x.len();
        let psi = self.subsample.clamp(2, n.max(2));
        let max_depth = (psi as f64).log2().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut all: Vec<usize> = (0..n).collect();

        let trees: Vec<Tree> = (0..self.trees.max(1))
            .map(|_| {
                all.shuffle(&mut rng);
                let sample = all[..psi.min(n)].to_vec();
                Tree::build(&mut rng, x, sample, max_depth.max(1))
            })
            .collect();

        let c = average_path_length(psi);
        Ok(x.iter()
            .map(|point| {
                let mean_path: f64 =
                    trees.iter().map(|t| t.path_length(point)).sum::<f64>() / trees.len() as f64;
                2.0f64.powf(-mean_path / c.max(1e-12))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlier_scores_above_half() {
        let mut rows: Vec<Vec<f64>> = (0..128)
            .map(|i| vec![(i % 16) as f64 * 0.1, (i / 16) as f64 * 0.1])
            .collect();
        rows.push(vec![50.0, -50.0]);
        let scores = IsolationForest::default().score_all(&rows).unwrap();
        assert!(scores[128] > 0.5, "outlier score {}", scores[128]);
        let mean_inlier: f64 = scores[..128].iter().sum::<f64>() / 128.0;
        assert!(scores[128] > mean_inlier + 0.1);
    }

    #[test]
    fn scores_lie_in_unit_interval() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let scores = IsolationForest::default().score_all(&rows).unwrap();
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn deterministic_under_seed() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let a = IsolationForest::default().score_all(&rows).unwrap();
        let b = IsolationForest::default().score_all(&rows).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn constant_data_gives_uniform_scores() {
        let rows = vec![vec![2.0, 2.0]; 32];
        let scores = IsolationForest::default().score_all(&rows).unwrap();
        let first = scores[0];
        assert!(scores.iter().all(|&s| (s - first).abs() < 1e-12));
    }

    #[test]
    fn average_path_length_known_values() {
        assert_eq!(average_path_length(0), 0.0);
        assert_eq!(average_path_length(1), 0.0);
        assert_eq!(average_path_length(2), 1.0);
        // c(256) ≈ 10.24 (from the paper).
        assert!((average_path_length(256) - 10.24).abs() < 0.1);
    }

    #[test]
    fn rejects_empty() {
        assert!(IsolationForest::default().score_all(&[]).is_err());
    }
}
