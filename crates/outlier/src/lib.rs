//! The fourteen outlier-detection baselines of the NURD paper (§6,
//! "Comparisons"), implemented from their original papers.
//!
//! The paper evaluates ABOD, CBLOF, HBOS, IFOREST, KNN, LOF, MCD, OCSVM,
//! PCA, SOS, LSCP, COF, SOD and XGBOD (via PyOD) as unsupervised baselines
//! for online straggler prediction. All detectors here implement
//! [`OutlierDetector`]: they score a full sample set transductively (the
//! online protocol fits on all currently visible tasks and reads off the
//! scores of the running ones). Higher score = more anomalous.
//!
//! XGBOD is semi-supervised (it trains a boosted classifier on unsupervised
//! score features) and exposes its own [`Xgbod`] API taking labels.
//!
//! # Example
//!
//! ```
//! use nurd_outlier::{Knn, OutlierDetector};
//!
//! # fn main() -> Result<(), nurd_ml::MlError> {
//! let mut rows: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 5) as f64, 0.0]).collect();
//! rows.push(vec![100.0, 100.0]); // planted outlier
//! let scores = Knn::default().score_all(&rows)?;
//! let max_idx = (0..rows.len()).max_by(|&a, &b| {
//!     scores[a].partial_cmp(&scores[b]).unwrap()
//! }).unwrap();
//! assert_eq!(max_idx, 30);
//! # Ok(())
//! # }
//! ```

mod abod;
mod cblof;
mod hbos;
mod iforest;
mod knn;
mod lof;
mod lscp;
mod mcd;
mod ocsvm;
mod pca;
mod sod;
mod sos;
mod xgbod;

pub use abod::Abod;
pub use cblof::Cblof;
pub use hbos::Hbos;
pub use iforest::IsolationForest;
pub use knn::Knn;
pub use lof::{Cof, Lof};
pub use lscp::Lscp;
pub use mcd::Mcd;
pub use ocsvm::OcSvm;
pub use pca::PcaDetector;
pub use sod::Sod;
pub use sos::Sos;
pub use xgbod::Xgbod;

use nurd_ml::MlError;

/// A transductive outlier detector: fits on a sample set and scores every
/// row of it. Higher scores are more anomalous.
///
/// This trait is object-safe; the method registry in `nurd-baselines` holds
/// detectors as `Box<dyn OutlierDetector>`.
pub trait OutlierDetector {
    /// The detector's name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Scores every row of `x` (aligned with the input order).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] / [`MlError::DimensionMismatch`]
    /// on degenerate input; individual detectors may reject more (documented
    /// on their `score_all`).
    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError>;
}

/// Selects the decision threshold for a contamination rate: the
/// `(1 - contamination)` quantile of the training scores, PyOD-style.
///
/// # Panics
///
/// Panics if `scores` is empty or `contamination` is outside `(0, 1)`.
#[must_use]
pub fn contamination_threshold(scores: &[f64], contamination: f64) -> f64 {
    assert!(!scores.is_empty(), "no scores to threshold");
    assert!(
        contamination > 0.0 && contamination < 1.0,
        "contamination must be in (0, 1)"
    );
    let mut sorted = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
    let idx = ((1.0 - contamination) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contamination_threshold_picks_quantile() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let t = contamination_threshold(&scores, 0.1);
        assert!((t - 89.0).abs() < 1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "no scores")]
    fn contamination_threshold_rejects_empty() {
        let _ = contamination_threshold(&[], 0.1);
    }

    #[test]
    fn all_detectors_are_object_safe_and_named() {
        let detectors: Vec<Box<dyn OutlierDetector>> = vec![
            Box::new(Abod::default()),
            Box::new(Cblof::default()),
            Box::new(Hbos::default()),
            Box::new(IsolationForest::default()),
            Box::new(Knn::default()),
            Box::new(Lof::default()),
            Box::new(Cof::default()),
            Box::new(Mcd::default()),
            Box::new(OcSvm::default()),
            Box::new(PcaDetector::default()),
            Box::new(Sos::default()),
            Box::new(Lscp::default()),
            Box::new(Sod::default()),
        ];
        let names: Vec<&str> = detectors.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "ABOD", "CBLOF", "HBOS", "IFOREST", "KNN", "LOF", "COF", "MCD", "OCSVM", "PCA",
                "SOS", "LSCP", "SOD"
            ]
        );
    }

    /// Every detector must rank a gross planted outlier above the median
    /// inlier — the minimum bar for the straggler experiments.
    #[test]
    fn every_detector_flags_a_gross_outlier() {
        let mut rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64 * 0.1, (i % 5) as f64 * 0.1, 1.0])
            .collect();
        rows.push(vec![8.0, -6.0, 12.0]);
        let outlier = rows.len() - 1;

        let detectors: Vec<Box<dyn OutlierDetector>> = vec![
            Box::new(Abod::default()),
            Box::new(Cblof::default()),
            Box::new(Hbos::default()),
            Box::new(IsolationForest::default()),
            Box::new(Knn::default()),
            Box::new(Lof::default()),
            Box::new(Cof::default()),
            Box::new(Mcd::default()),
            Box::new(OcSvm::default()),
            Box::new(PcaDetector::default()),
            Box::new(Sos::default()),
            Box::new(Lscp::default()),
            Box::new(Sod::default()),
        ];
        for det in detectors {
            let scores = det.score_all(&rows).unwrap_or_else(|e| {
                panic!("{} failed: {e}", det.name());
            });
            assert_eq!(scores.len(), rows.len(), "{} wrong length", det.name());
            let mut sorted = scores.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = sorted[sorted.len() / 2];
            assert!(
                scores[outlier] > median,
                "{}: outlier score {} not above median {median}",
                det.name(),
                scores[outlier]
            );
        }
    }
}
