//! Minimum covariance determinant (Hardin & Rocke, 2004; FastMCD-style).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nurd_linalg::{covariance_matrix, mahalanobis_squared, Lu, Matrix};
use nurd_ml::{MlError, StandardScaler};

use crate::OutlierDetector;

/// MCD: finds the `h`-subset with the smallest covariance determinant via
/// random restarts + C-steps, then scores each point by its Mahalanobis
/// distance under the robust location/scatter estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mcd {
    /// Number of random initial subsets.
    pub restarts: usize,
    /// Maximum C-steps per restart.
    pub max_c_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Mcd {
    fn default() -> Self {
        Mcd {
            restarts: 8,
            max_c_steps: 20,
            seed: 4242,
        }
    }
}

struct Estimate {
    mean: Vec<f64>,
    precision: Matrix,
    log_det: f64,
}

fn estimate_from_subset(xs: &[Vec<f64>], subset: &[usize]) -> Option<Estimate> {
    let rows: Vec<Vec<f64>> = subset.iter().map(|&i| xs[i].clone()).collect();
    let mean = nurd_linalg::column_means(&rows).ok()?;
    let mut cov = covariance_matrix(&rows).ok()?;
    // Ridge the scatter slightly so near-degenerate subsets stay usable.
    for j in 0..cov.rows() {
        cov.set(j, j, cov.get(j, j) + 1e-9);
    }
    let lu = Lu::decompose(&cov).ok()?;
    let log_det = lu.log_abs_determinant();
    let precision = lu.inverse().ok()?;
    Some(Estimate {
        mean,
        precision,
        log_det,
    })
}

impl OutlierDetector for Mcd {
    fn name(&self) -> &'static str {
        "MCD"
    }

    /// # Errors
    ///
    /// In addition to the shape errors, returns
    /// [`MlError::OptimizationFailed`] when every random subset produces a
    /// singular scatter matrix (e.g. fewer samples than features).
    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let n = xs.len();
        let d = xs[0].len();
        // h = ⌈(n + d + 1) / 2⌉, the standard breakdown-optimal subset size.
        let h = (n + d).div_ceil(2).clamp((d + 1).min(n), n);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut indices: Vec<usize> = (0..n).collect();
        let mut best: Option<Estimate> = None;

        for _ in 0..self.restarts.max(1) {
            indices.shuffle(&mut rng);
            let mut subset: Vec<usize> = indices[..h].to_vec();
            let mut estimate = match estimate_from_subset(&xs, &subset) {
                Some(e) => e,
                None => continue,
            };
            // C-steps: re-select the h points with the smallest Mahalanobis
            // distance; the determinant is non-increasing.
            for _ in 0..self.max_c_steps {
                let mut dists: Vec<(usize, f64)> = (0..n)
                    .map(|i| {
                        let d2 = mahalanobis_squared(&xs[i], &estimate.mean, &estimate.precision)
                            .unwrap_or(f64::INFINITY);
                        (i, d2)
                    })
                    .collect();
                dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
                let new_subset: Vec<usize> = dists[..h].iter().map(|&(i, _)| i).collect();
                if new_subset == subset {
                    break;
                }
                match estimate_from_subset(&xs, &new_subset) {
                    Some(e) => {
                        subset = new_subset;
                        estimate = e;
                    }
                    None => break,
                }
            }
            if best.as_ref().is_none_or(|b| estimate.log_det < b.log_det) {
                best = Some(estimate);
            }
        }

        let best = best
            .ok_or_else(|| MlError::OptimizationFailed("all MCD subsets were singular".into()))?;
        Ok(xs
            .iter()
            .map(|p| {
                mahalanobis_squared(p, &best.mean, &best.precision)
                    .unwrap_or(f64::INFINITY)
                    .sqrt()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_to_cluster_of_outliers() {
        // 44 inliers on a tight line; 6 coordinated outliers that would
        // drag a classical covariance estimate.
        let mut rows: Vec<Vec<f64>> = (0..44)
            .map(|i| vec![i as f64 * 0.1, i as f64 * 0.1 + 0.01 * (i % 3) as f64])
            .collect();
        for i in 0..6 {
            rows.push(vec![10.0 + i as f64 * 0.01, -10.0]);
        }
        let scores = Mcd::default().score_all(&rows).unwrap();
        let max_inlier = scores[..44]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        for s in &scores[44..] {
            assert!(*s > max_inlier, "outlier {s} <= inlier max {max_inlier}");
        }
    }

    #[test]
    fn gaussian_cloud_distances_moderate() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![((i * 7) % 13) as f64 * 0.1, ((i * 11) % 17) as f64 * 0.1])
            .collect();
        let scores = Mcd::default().score_all(&rows).unwrap();
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn deterministic_under_seed() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let a = Mcd::default().score_all(&rows).unwrap();
        let b = Mcd::default().score_all(&rows).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_input_yields_zero_distances() {
        // 2 identical samples in 3 dimensions: the ridge on the scatter
        // keeps the estimate usable and every distance is zero.
        let rows = vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]];
        let scores = Mcd::default().score_all(&rows).unwrap();
        assert!(scores.iter().all(|&s| s.abs() < 1e-6));
    }

    #[test]
    fn rejects_empty() {
        assert!(Mcd::default().score_all(&[]).is_err());
    }
}
