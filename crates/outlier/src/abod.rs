//! Angle-based outlier detection (Kriegel et al., 2008), fast variant.

use nurd_ml::{MlError, NearestNeighbors, StandardScaler};

use crate::OutlierDetector;

/// FastABOD: the variance of distance-weighted angles between pairs of a
/// point's k nearest neighbors. Inliers, surrounded on all sides, see a
/// wide spread of angles; outliers see all other points under similar
/// angles, giving low variance. The reported score is the *negated* ABOF so
/// that higher = more anomalous, matching [`OutlierDetector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Abod {
    /// Neighborhood size for the fast approximation.
    pub k: usize,
}

impl Default for Abod {
    fn default() -> Self {
        Abod { k: 10 }
    }
}

impl OutlierDetector for Abod {
    fn name(&self) -> &'static str {
        "ABOD"
    }

    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let n = xs.len();
        let k = self.k.min(n.saturating_sub(1)).max(2);
        let nn = NearestNeighbors::new(xs.clone())?;

        Ok((0..n)
            .map(|i| {
                let hits = nn.neighbors_of(i, k);
                let mut weighted: Vec<(f64, f64)> = Vec::new(); // (weight, value)
                for a in 0..hits.len() {
                    for b in (a + 1)..hits.len() {
                        let (ja, _) = hits[a];
                        let (jb, _) = hits[b];
                        let va = nurd_linalg::subtract(&xs[ja], &xs[i]);
                        let vb = nurd_linalg::subtract(&xs[jb], &xs[i]);
                        let na2 = nurd_linalg::dot(&va, &va);
                        let nb2 = nurd_linalg::dot(&vb, &vb);
                        if na2 < 1e-18 || nb2 < 1e-18 {
                            continue; // coincident points carry no angle
                        }
                        // ABOF term: <va, vb> / (|va|^2 |vb|^2), weighted by
                        // 1/(|va||vb|).
                        let value = nurd_linalg::dot(&va, &vb) / (na2 * nb2);
                        let weight = 1.0 / (na2.sqrt() * nb2.sqrt());
                        weighted.push((weight, value));
                    }
                }
                if weighted.is_empty() {
                    return 0.0;
                }
                let wsum: f64 = weighted.iter().map(|(w, _)| w).sum();
                let mean: f64 = weighted.iter().map(|(w, v)| w * v).sum::<f64>() / wsum;
                let var: f64 = weighted
                    .iter()
                    .map(|(w, v)| w * (v - mean) * (v - mean))
                    .sum::<f64>()
                    / wsum;
                -var
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlier_has_least_angle_variance() {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        // Dense 2-D grid of inliers.
        for i in 0..6 {
            for j in 0..6 {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        rows.push(vec![30.0, 30.0]);
        let idx = rows.len() - 1;
        let scores = Abod::default().score_all(&rows).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, idx);
    }

    #[test]
    fn interior_point_scores_below_outlier() {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        rows.push(vec![-20.0, 13.0]);
        let scores = Abod { k: 8 }.score_all(&rows).unwrap();
        let center = 12; // (2, 2)
        assert!(scores[25] > scores[center]);
    }

    #[test]
    fn duplicates_do_not_produce_nan() {
        let rows = vec![vec![1.0, 1.0]; 8];
        let scores = Abod::default().score_all(&rows).unwrap();
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn rejects_empty() {
        assert!(Abod::default().score_all(&[]).is_err());
    }
}
