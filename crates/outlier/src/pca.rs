//! PCA-based anomaly detection (Shyu et al., 2003).

use nurd_linalg::covariance_matrix;
use nurd_ml::{MlError, StandardScaler};

use crate::OutlierDetector;

/// Principal-component classifier: the score is the Mahalanobis-style sum
/// `Σᵢ (xᵀvᵢ)² / λᵢ` over the principal components of the standardized
/// data — large deviations along minor components (which capture the
/// correlation structure) dominate for structured outliers.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaDetector {
    /// Discard components whose eigenvalue is below this fraction of the
    /// largest (guards the division).
    pub eigenvalue_floor: f64,
}

impl Default for PcaDetector {
    fn default() -> Self {
        PcaDetector {
            eigenvalue_floor: 1e-6,
        }
    }
}

impl OutlierDetector for PcaDetector {
    fn name(&self) -> &'static str {
        "PCA"
    }

    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let cov = covariance_matrix(&xs).map_err(|e| MlError::DimensionMismatch {
            expected: "rectangular sample matrix".into(),
            found: e.to_string(),
        })?;
        let eig = cov
            .symmetric_eigen()
            .map_err(|e| MlError::OptimizationFailed(e.to_string()))?;
        let lambda_max = eig.eigenvalues().first().copied().unwrap_or(0.0);
        if lambda_max <= 0.0 {
            // Constant data: nothing is an outlier.
            return Ok(vec![0.0; xs.len()]);
        }
        let floor = self.eigenvalue_floor * lambda_max;

        Ok(xs
            .iter()
            .map(|row| {
                (0..eig.len())
                    .filter(|&i| eig.eigenvalues()[i] > floor)
                    .map(|i| {
                        let proj = nurd_linalg::dot(row, eig.eigenvector(i));
                        proj * proj / eig.eigenvalues()[i]
                    })
                    .sum()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_breaking_outlier_scores_high() {
        // Strongly correlated 2-D data; the outlier breaks the correlation
        // without being extreme in either marginal.
        let mut rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.1;
                vec![t, 2.0 * t + 0.01 * (i % 3) as f64]
            })
            .collect();
        rows.push(vec![2.5, 0.5]); // inside both marginals, off the line
        let scores = PcaDetector::default().score_all(&rows).unwrap();
        let max_inlier = scores[..50]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(scores[50] > max_inlier);
    }

    #[test]
    fn marginal_outlier_also_caught() {
        let mut rows: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 6) as f64, 1.0]).collect();
        rows.push(vec![60.0, 1.0]);
        let scores = PcaDetector::default().score_all(&rows).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 30);
    }

    #[test]
    fn constant_data_scores_zero() {
        let rows = vec![vec![5.0, 5.0]; 10];
        let scores = PcaDetector::default().score_all(&rows).unwrap();
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn rejects_empty() {
        assert!(PcaDetector::default().score_all(&[]).is_err());
    }
}
