//! One-class SVM (Schölkopf et al., 2001) with an RBF kernel.
//!
//! Solves the ν-OCSVM dual
//! `min ½ αᵀKα  s.t. Σα = 1, 0 ≤ αᵢ ≤ 1/(νn)` with projected gradient
//! descent (projection onto the capped simplex). Problem sizes in the
//! online protocol are a few hundred points, where the dense solver is
//! fast and dependable.

use nurd_ml::{MlError, StandardScaler};

use crate::OutlierDetector;

/// RBF-kernel one-class SVM; scores are the negated decision function
/// (`ρ − Σ αᵢ k(xᵢ, x)`), so higher = more anomalous.
#[derive(Debug, Clone, PartialEq)]
pub struct OcSvm {
    /// Expected outlier fraction ν ∈ (0, 1).
    pub nu: f64,
    /// RBF width γ; `None` = the scikit-learn "scale" heuristic
    /// `1 / (d · var)`.
    pub gamma: Option<f64>,
    /// Projected-gradient iterations.
    pub iterations: usize,
}

impl Default for OcSvm {
    fn default() -> Self {
        OcSvm {
            nu: 0.1,
            gamma: None,
            iterations: 300,
        }
    }
}

/// Projects `v` onto `{α : Σα = 1, 0 ≤ αᵢ ≤ cap}` (capped simplex) by
/// bisection on the shift parameter.
fn project_capped_simplex(v: &mut [f64], cap: f64) {
    let n = v.len();
    debug_assert!(cap * n as f64 >= 1.0 - 1e-9, "infeasible simplex");
    let mut lo = v.iter().cloned().fold(f64::INFINITY, f64::min) - cap - 1.0;
    let mut hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1.0;
    for _ in 0..100 {
        let tau = 0.5 * (lo + hi);
        let sum: f64 = v.iter().map(|&x| (x - tau).clamp(0.0, cap)).sum();
        if sum > 1.0 {
            lo = tau;
        } else {
            hi = tau;
        }
    }
    let tau = 0.5 * (lo + hi);
    for x in v.iter_mut() {
        *x = (*x - tau).clamp(0.0, cap);
    }
}

impl OutlierDetector for OcSvm {
    fn name(&self) -> &'static str {
        "OCSVM"
    }

    /// # Errors
    ///
    /// [`MlError::InvalidConfig`] when ν is outside `(0, 1)`, plus the
    /// usual shape errors.
    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        if !(self.nu > 0.0 && self.nu < 1.0) {
            return Err(MlError::InvalidConfig(format!(
                "nu must be in (0,1), got {}",
                self.nu
            )));
        }
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let n = xs.len();
        let d = xs[0].len();

        let gamma = self.gamma.unwrap_or_else(|| {
            // Variance of the standardized data is ~1 per feature.
            1.0 / d as f64
        });

        // Dense RBF Gram matrix.
        let mut kernel = vec![vec![0.0; n]; n];
        for i in 0..n {
            kernel[i][i] = 1.0;
            for j in (i + 1)..n {
                let k = (-gamma * nurd_linalg::squared_distance(&xs[i], &xs[j])).exp();
                kernel[i][j] = k;
                kernel[j][i] = k;
            }
        }

        // Projected gradient on the dual.
        let cap = (1.0 / (self.nu * n as f64)).min(1.0);
        let mut alpha = vec![1.0 / n as f64; n];
        project_capped_simplex(&mut alpha, cap);
        // Lipschitz constant of the gradient is the top eigenvalue of K,
        // bounded by the max row sum.
        let lip = kernel
            .iter()
            .map(|row| row.iter().sum::<f64>())
            .fold(0.0f64, f64::max)
            .max(1.0);
        let step = 1.0 / lip;
        for _ in 0..self.iterations {
            // ∇(½αᵀKα) = Kα
            let grad: Vec<f64> = kernel
                .iter()
                .map(|row| nurd_linalg::dot(row, &alpha))
                .collect();
            for (a, g) in alpha.iter_mut().zip(&grad) {
                *a -= step * g;
            }
            project_capped_simplex(&mut alpha, cap);
        }

        // ρ = decision value at margin support vectors (0 < α < cap);
        // fall back to the α-weighted mean when none are strictly inside.
        let decision: Vec<f64> = kernel
            .iter()
            .map(|row| nurd_linalg::dot(row, &alpha))
            .collect();
        let margin: Vec<f64> = alpha
            .iter()
            .zip(&decision)
            .filter(|(&a, _)| a > 1e-8 && a < cap - 1e-8)
            .map(|(_, &d)| d)
            .collect();
        let rho = if margin.is_empty() {
            let wsum: f64 = alpha.iter().sum();
            alpha
                .iter()
                .zip(&decision)
                .map(|(&a, &d)| a * d)
                .sum::<f64>()
                / wsum.max(1e-12)
        } else {
            margin.iter().sum::<f64>() / margin.len() as f64
        };

        Ok(decision.iter().map(|&d| rho - d).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_satisfies_constraints() {
        let mut v = vec![0.9, -0.4, 0.3, 0.8];
        project_capped_simplex(&mut v, 0.5);
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        assert!(v.iter().all(|&x| (0.0..=0.5 + 1e-9).contains(&x)));
    }

    #[test]
    fn outlier_scores_above_inliers() {
        let mut rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![((i % 10) as f64) * 0.1, ((i / 10) as f64) * 0.1])
            .collect();
        rows.push(vec![6.0, 6.0]);
        let scores = OcSvm::default().score_all(&rows).unwrap();
        let max_inlier = scores[..50]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            scores[50] > max_inlier,
            "outlier {} vs inlier max {max_inlier}",
            scores[50]
        );
    }

    #[test]
    fn nu_controls_boundary_tightness() {
        // Higher ν ⇒ more points outside the boundary ⇒ higher scores on
        // the fringe of the cloud.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 20) as f64 * 0.1]).collect();
        let loose = OcSvm {
            nu: 0.05,
            ..OcSvm::default()
        }
        .score_all(&rows)
        .unwrap();
        let tight = OcSvm {
            nu: 0.5,
            ..OcSvm::default()
        }
        .score_all(&rows)
        .unwrap();
        let frac_pos = |s: &[f64]| s.iter().filter(|&&v| v > 0.0).count();
        assert!(frac_pos(&tight) >= frac_pos(&loose));
    }

    #[test]
    fn rejects_bad_nu() {
        let bad = OcSvm {
            nu: 1.5,
            ..OcSvm::default()
        };
        assert!(matches!(
            bad.score_all(&[vec![1.0]]),
            Err(MlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(OcSvm::default().score_all(&[]).is_err());
    }
}
