//! Histogram-based outlier score (Goldstein & Dengel, 2012).

use nurd_ml::MlError;

use crate::OutlierDetector;

/// HBOS: per-feature equal-width histograms; a point's score is the sum of
/// negative log densities of its bins (features treated independently).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hbos {
    /// Number of equal-width bins per feature.
    pub bins: usize,
}

impl Default for Hbos {
    fn default() -> Self {
        Hbos { bins: 10 }
    }
}

impl OutlierDetector for Hbos {
    fn name(&self) -> &'static str {
        "HBOS"
    }

    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let first = x.first().ok_or(MlError::EmptyTrainingSet)?;
        let d = first.len();
        if x.iter().any(|r| r.len() != d) {
            return Err(MlError::DimensionMismatch {
                expected: format!("rows of width {d}"),
                found: "ragged rows".into(),
            });
        }
        let n = x.len();
        let bins = self.bins.max(1);
        let mut scores = vec![0.0; n];

        for j in 0..d {
            let col: Vec<f64> = x.iter().map(|r| r[j]).collect();
            let lo = col.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if hi - lo < 1e-12 {
                continue; // constant feature carries no information
            }
            let width = (hi - lo) / bins as f64;
            let mut counts = vec![0usize; bins];
            let bin_of = |v: f64| -> usize { (((v - lo) / width) as usize).min(bins - 1) };
            for &v in &col {
                counts[bin_of(v)] += 1;
            }
            for (i, &v) in col.iter().enumerate() {
                // Laplace-smoothed density, normalized so the tallest bin
                // has density 1 (per the HBOS paper).
                let max_count = *counts.iter().max().expect("bins nonempty") as f64;
                let density = (counts[bin_of(v)] as f64).max(0.5) / max_count;
                scores[i] += -(density.ln());
            }
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_value_scores_higher_than_mode() {
        let mut rows: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 5) as f64]).collect();
        rows.push(vec![40.0]);
        let scores = Hbos::default().score_all(&rows).unwrap();
        assert!(scores[50] > scores[0]);
    }

    #[test]
    fn constant_features_are_ignored() {
        let rows = vec![vec![3.0, 1.0], vec![3.0, 2.0], vec![3.0, 100.0]];
        let scores = Hbos::default().score_all(&rows).unwrap();
        assert!(scores.iter().all(|s| s.is_finite()));
        assert!(scores[2] > scores[0]);
    }

    #[test]
    fn independent_features_accumulate() {
        // An outlier in two features scores above an outlier in one.
        let mut rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 4) as f64, (i % 4) as f64])
            .collect();
        rows.push(vec![30.0, 1.0]);
        rows.push(vec![30.0, 30.0]);
        let scores = Hbos::default().score_all(&rows).unwrap();
        assert!(scores[41] > scores[40]);
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert!(Hbos::default().score_all(&[]).is_err());
        assert!(Hbos::default()
            .score_all(&[vec![1.0], vec![1.0, 2.0]])
            .is_err());
    }
}
