//! Stochastic outlier selection (Janssens et al., 2012).

use nurd_ml::{MlError, StandardScaler};

use crate::OutlierDetector;

/// SOS: builds affinity distributions with per-point variances matched to
/// a target perplexity, converts them to binding probabilities, and scores
/// each point by the probability that *no* other point binds to it:
/// `score(i) = Π_{j≠i} (1 − b_{ji})`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sos {
    /// Target perplexity (effective neighborhood size).
    pub perplexity: f64,
}

impl Default for Sos {
    fn default() -> Self {
        Sos { perplexity: 4.5 }
    }
}

/// Binary-searches the Gaussian precision β so the affinity row hits the
/// target perplexity.
fn affinity_row(dist2: &[f64], i: usize, perplexity: f64) -> Vec<f64> {
    let target_entropy = perplexity.ln();
    let mut beta = 1.0;
    let mut beta_lo = 0.0;
    let mut beta_hi = f64::INFINITY;
    let n = dist2.len();
    let mut row = vec![0.0; n];
    for _ in 0..64 {
        let mut sum = 0.0;
        for j in 0..n {
            row[j] = if j == i {
                0.0
            } else {
                (-beta * dist2[j]).exp()
            };
            sum += row[j];
        }
        if sum <= 0.0 {
            // All neighbors at infinite distance; loosen.
            beta_hi = beta;
            beta = 0.5 * (beta_lo + beta);
            continue;
        }
        // Shannon entropy of the affinity distribution.
        let mut entropy = 0.0;
        for &a in row.iter().take(n) {
            if a > 0.0 {
                let p = a / sum;
                entropy -= p * p.ln();
            }
        }
        let diff = entropy - target_entropy;
        if diff.abs() < 1e-5 {
            break;
        }
        if diff > 0.0 {
            // Too flat: tighten.
            beta_lo = beta;
            beta = if beta_hi.is_infinite() {
                beta * 2.0
            } else {
                0.5 * (beta + beta_hi)
            };
        } else {
            beta_hi = beta;
            beta = 0.5 * (beta_lo + beta);
        }
    }
    row
}

impl OutlierDetector for Sos {
    fn name(&self) -> &'static str {
        "SOS"
    }

    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let n = xs.len();
        if n == 1 {
            return Ok(vec![0.0]);
        }
        let perplexity = self.perplexity.clamp(1.01, (n - 1) as f64);

        // Pairwise squared distances.
        let mut dist2 = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d2 = nurd_linalg::squared_distance(&xs[i], &xs[j]);
                dist2[i][j] = d2;
                dist2[j][i] = d2;
            }
        }

        // Binding matrix: row i = probability that i binds to each j.
        let mut scores = vec![1.0; n];
        let mut binding = vec![vec![0.0; n]; n];
        for i in 0..n {
            let row = affinity_row(&dist2[i], i, perplexity);
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                for j in 0..n {
                    binding[i][j] = row[j] / sum;
                }
            }
        }
        // score(j) = Π_i (1 − b_{ij}).
        for j in 0..n {
            for (i, row) in binding.iter().enumerate() {
                if i != j {
                    scores[j] *= (1.0 - row[j]).max(1e-12);
                }
            }
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_point_has_highest_outlier_probability() {
        let mut rows: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1])
            .collect();
        rows.push(vec![8.0, 8.0]);
        let scores = Sos::default().score_all(&rows).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 25);
    }

    #[test]
    fn scores_are_probabilities() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let scores = Sos::default().score_all(&rows).unwrap();
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn single_point_is_trivially_inlier() {
        let scores = Sos::default().score_all(&[vec![3.0]]).unwrap();
        assert_eq!(scores, vec![0.0]);
    }

    #[test]
    fn affinity_row_matches_perplexity() {
        let dist2: Vec<f64> = (0..20).map(|j| (j as f64 + 1.0).powi(2)).collect();
        let row = affinity_row(&dist2, 0, 5.0);
        let sum: f64 = row.iter().sum();
        let entropy: f64 = row
            .iter()
            .filter(|&&v| v > 0.0)
            .map(|&v| {
                let p = v / sum;
                -p * p.ln()
            })
            .sum();
        assert!(
            (entropy.exp() - 5.0).abs() < 0.1,
            "perplexity {}",
            entropy.exp()
        );
    }

    #[test]
    fn rejects_empty() {
        assert!(Sos::default().score_all(&[]).is_err());
    }
}
