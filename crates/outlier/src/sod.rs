//! Subspace outlier detection (Kriegel et al., 2009).

use nurd_ml::{MlError, NearestNeighbors, StandardScaler};

use crate::OutlierDetector;

/// SOD: for each point, find a reference set via shared-nearest-neighbor
/// similarity, identify the attributes in which the reference set has low
/// variance, and measure the point's deviation from the reference mean in
/// that axis-parallel subspace.
#[derive(Debug, Clone, PartialEq)]
pub struct Sod {
    /// Candidate neighbors for SNN similarity.
    pub k: usize,
    /// Reference set size (ℓ ≤ k).
    pub reference_size: usize,
    /// Variance threshold: an attribute is "relevant" when the reference
    /// variance is below `alpha` times the mean per-attribute variance.
    pub alpha: f64,
}

impl Default for Sod {
    fn default() -> Self {
        Sod {
            k: 20,
            reference_size: 12,
            alpha: 0.8,
        }
    }
}

impl OutlierDetector for Sod {
    fn name(&self) -> &'static str {
        "SOD"
    }

    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let n = xs.len();
        let d = xs[0].len();
        let k = self.k.min(n.saturating_sub(1)).max(1);
        let l = self.reference_size.min(k).max(1);
        let nn = NearestNeighbors::new(xs.clone())?;

        // kNN id sets for SNN similarity.
        let knn_sets: Vec<Vec<usize>> = (0..n)
            .map(|i| nn.neighbors_of(i, k).into_iter().map(|(j, _)| j).collect())
            .collect();
        let snn =
            |a: &[usize], b: &[usize]| -> usize { a.iter().filter(|i| b.contains(i)).count() };

        Ok((0..n)
            .map(|i| {
                // Reference set: the l candidates with the greatest SNN
                // similarity to i.
                let mut candidates: Vec<(usize, usize)> = knn_sets[i]
                    .iter()
                    .map(|&j| (j, snn(&knn_sets[i], &knn_sets[j])))
                    .collect();
                candidates.sort_by_key(|&(_, shared)| std::cmp::Reverse(shared));
                let reference: Vec<usize> =
                    candidates.into_iter().take(l).map(|(j, _)| j).collect();
                if reference.is_empty() {
                    return 0.0;
                }

                // Per-attribute mean and variance of the reference set.
                let mut mean = vec![0.0; d];
                for &j in &reference {
                    nurd_linalg::add_scaled(&mut mean, 1.0, &xs[j]);
                }
                nurd_linalg::scale(&mut mean, 1.0 / reference.len() as f64);
                let mut var = vec![0.0; d];
                for &j in &reference {
                    for a in 0..d {
                        let diff = xs[j][a] - mean[a];
                        var[a] += diff * diff;
                    }
                }
                for v in &mut var {
                    *v /= reference.len() as f64;
                }
                let mean_var: f64 = var.iter().sum::<f64>() / d as f64;

                // Deviation in the low-variance (relevant) subspace.
                let relevant: Vec<usize> =
                    (0..d).filter(|&a| var[a] < self.alpha * mean_var).collect();
                if relevant.is_empty() {
                    return 0.0;
                }
                let dev2: f64 = relevant
                    .iter()
                    .map(|&a| {
                        let diff = xs[i][a] - mean[a];
                        diff * diff
                    })
                    .sum();
                (dev2 / relevant.len() as f64).sqrt()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subspace_outlier_found_despite_full_space_camouflage() {
        // Cluster lives on the plane y = 0 with wide spread in x; the
        // outlier hides within the x range but leaves the subspace y = 0.
        let mut rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, 0.0 + 0.001 * (i % 2) as f64])
            .collect();
        rows.push(vec![20.0, 3.0]);
        let scores = Sod::default().score_all(&rows).unwrap();
        let max_inlier = scores[..40]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(scores[40] > max_inlier);
    }

    #[test]
    fn inliers_score_near_zero() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 0.0]).collect();
        let scores = Sod::default().score_all(&rows).unwrap();
        assert!(scores.iter().all(|&s| s < 1.0));
    }

    #[test]
    fn tiny_input_does_not_panic() {
        let rows = vec![vec![1.0, 2.0], vec![2.0, 3.0]];
        let scores = Sod::default().score_all(&rows).unwrap();
        assert_eq!(scores.len(), 2);
    }

    #[test]
    fn rejects_empty() {
        assert!(Sod::default().score_all(&[]).is_err());
    }
}
