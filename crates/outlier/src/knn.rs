//! kNN outlier detection (Ramaswamy et al., 2000).

use nurd_ml::{MlError, NearestNeighbors, StandardScaler};

use crate::OutlierDetector;

/// Scores each point by the distance to its `k`-th nearest neighbor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knn {
    /// Neighborhood size.
    pub k: usize,
}

impl Default for Knn {
    fn default() -> Self {
        Knn { k: 5 }
    }
}

impl OutlierDetector for Knn {
    fn name(&self) -> &'static str {
        "KNN"
    }

    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let nn = NearestNeighbors::new(xs)?;
        Ok((0..x.len())
            .map(|i| {
                let hits = nn.neighbors_of(i, self.k);
                hits.last().map_or(0.0, |&(_, d)| d)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_point_scores_highest() {
        let mut rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.01]).collect();
        rows.push(vec![50.0]);
        let scores = Knn { k: 3 }.score_all(&rows).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 20);
    }

    #[test]
    fn uniform_cluster_scores_are_similar() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 3) as f64, (i % 5) as f64])
            .collect();
        let scores = Knn::default().score_all(&rows).unwrap();
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min < 2.0, "spread too large: {min}..{max}");
    }

    #[test]
    fn single_point_scores_zero() {
        let scores = Knn::default().score_all(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(scores, vec![0.0]);
    }

    #[test]
    fn rejects_empty() {
        assert!(Knn::default().score_all(&[]).is_err());
    }
}
