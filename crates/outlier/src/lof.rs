//! Density-based detectors: LOF (Breunig et al., 2000) and COF (Tang et
//! al., 2002).

use nurd_ml::{MlError, NearestNeighbors, StandardScaler};

use crate::OutlierDetector;

/// Local Outlier Factor: the ratio of a point's local reachability density
/// to that of its neighbors. LOF ≈ 1 for inliers, ≫ 1 for outliers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lof {
    /// Neighborhood size.
    pub k: usize,
}

impl Default for Lof {
    fn default() -> Self {
        Lof { k: 10 }
    }
}

impl OutlierDetector for Lof {
    fn name(&self) -> &'static str {
        "LOF"
    }

    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let n = xs.len();
        let k = self.k.min(n.saturating_sub(1)).max(1);
        let nn = NearestNeighbors::new(xs)?;
        let neighborhoods = nn.all_knn_distances(k);

        // k-distance of each point = distance to its k-th neighbor.
        let k_dist: Vec<f64> = neighborhoods
            .iter()
            .map(|h| h.last().map_or(0.0, |&(_, d)| d))
            .collect();

        // Local reachability density, capped so duplicate clusters (zero
        // reachability distance) yield a very large finite density instead
        // of infinities that poison downstream normalization (LSCP).
        const LRD_CAP: f64 = 1e12;
        let lrd: Vec<f64> = neighborhoods
            .iter()
            .map(|hits| {
                if hits.is_empty() {
                    return 0.0;
                }
                let reach_sum: f64 = hits.iter().map(|&(j, d)| d.max(k_dist[j])).sum();
                if reach_sum <= 0.0 {
                    LRD_CAP
                } else {
                    (hits.len() as f64 / reach_sum).min(LRD_CAP)
                }
            })
            .collect();

        Ok((0..n)
            .map(|i| {
                let hits = &neighborhoods[i];
                if hits.is_empty() || lrd[i] == 0.0 {
                    return 1.0;
                }
                let neighbor_lrd: f64 =
                    hits.iter().map(|&(j, _)| lrd[j]).sum::<f64>() / hits.len() as f64;
                neighbor_lrd / lrd[i]
            })
            .collect())
    }
}

/// Connectivity-based Outlier Factor: compares a point's average chaining
/// distance to that of its neighbors, catching outliers adjacent to
/// low-density patterns that LOF misses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cof {
    /// Neighborhood size.
    pub k: usize,
}

impl Default for Cof {
    fn default() -> Self {
        Cof { k: 10 }
    }
}

impl Cof {
    /// Average chaining distance of point `i` through its k-neighborhood:
    /// a set-based nearest path is grown greedily from `i`, and each added
    /// edge is weighted by how early it joins the chain.
    fn average_chaining_distance(
        points: &[Vec<f64>],
        i: usize,
        neighborhood: &[(usize, f64)],
    ) -> f64 {
        let mut chain: Vec<usize> = vec![i];
        let mut remaining: Vec<usize> = neighborhood.iter().map(|&(j, _)| j).collect();
        let r = remaining.len();
        if r == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for step in 1..=r {
            // Closest remaining point to the chain (set distance).
            let mut best = (0usize, f64::INFINITY);
            for (pos, &cand) in remaining.iter().enumerate() {
                for &c in &chain {
                    let d = nurd_linalg_distance(&points[c], &points[cand]);
                    if d < best.1 {
                        best = (pos, d);
                    }
                }
            }
            let weight = 2.0 * (r + 1 - step) as f64 / (r * (r + 1)) as f64;
            total += weight * best.1;
            chain.push(remaining.swap_remove(best.0));
        }
        total
    }
}

fn nurd_linalg_distance(a: &[f64], b: &[f64]) -> f64 {
    nurd_linalg::euclidean_distance(a, b)
}

impl OutlierDetector for Cof {
    fn name(&self) -> &'static str {
        "COF"
    }

    fn score_all(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, MlError> {
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x);
        let n = xs.len();
        let k = self.k.min(n.saturating_sub(1)).max(1);
        let nn = NearestNeighbors::new(xs.clone())?;
        let neighborhoods = nn.all_knn_distances(k);

        let acd: Vec<f64> = (0..n)
            .map(|i| Self::average_chaining_distance(&xs, i, &neighborhoods[i]))
            .collect();

        Ok((0..n)
            .map(|i| {
                let hits = &neighborhoods[i];
                if hits.is_empty() {
                    return 1.0;
                }
                let mean_neighbor_acd: f64 =
                    hits.iter().map(|&(j, _)| acd[j]).sum::<f64>() / hits.len() as f64;
                if mean_neighbor_acd <= 0.0 {
                    if acd[i] <= 0.0 {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    acd[i] / mean_neighbor_acd
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_with_outlier() -> (Vec<Vec<f64>>, usize) {
        let mut rows: Vec<Vec<f64>> = (0..36)
            .map(|i| vec![(i % 6) as f64 * 0.1, (i / 6) as f64 * 0.1])
            .collect();
        rows.push(vec![5.0, 5.0]);
        let idx = rows.len() - 1;
        (rows, idx)
    }

    #[test]
    fn lof_flags_planted_outlier() {
        let (rows, idx) = cluster_with_outlier();
        let scores = Lof::default().score_all(&rows).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, idx);
        assert!(scores[idx] > 1.5);
    }

    #[test]
    fn lof_inliers_near_one() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        let scores = Lof::default().score_all(&rows).unwrap();
        for s in scores {
            assert!((0.5..2.0).contains(&s), "inlier LOF {s} out of range");
        }
    }

    #[test]
    fn lof_handles_duplicates() {
        let mut rows = vec![vec![1.0, 1.0]; 12];
        rows.push(vec![9.0, 9.0]);
        let scores = Lof { k: 3 }.score_all(&rows).unwrap();
        assert!(scores.iter().all(|s| s.is_finite()));
        assert!(scores[12] > scores[0]);
    }

    #[test]
    fn cof_flags_planted_outlier() {
        let (rows, idx) = cluster_with_outlier();
        let scores = Cof::default().score_all(&rows).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, idx);
    }

    #[test]
    fn cof_detects_outlier_near_line_pattern() {
        // A 1-D line of points plus an off-line point at similar density:
        // the chaining distance catches it.
        let mut rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.1, 0.0]).collect();
        rows.push(vec![1.5, 0.9]);
        let scores = Cof { k: 6 }.score_all(&rows).unwrap();
        let off_line = scores[30];
        let on_line_mid = scores[15];
        assert!(
            off_line > on_line_mid,
            "off-line {off_line} vs on-line {on_line_mid}"
        );
    }

    #[test]
    fn both_reject_empty() {
        assert!(Lof::default().score_all(&[]).is_err());
        assert!(Cof::default().score_all(&[]).is_err());
    }
}
