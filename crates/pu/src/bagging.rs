//! PU-BG: bagging SVM for PU learning (Mordelet & Vert, 2014).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use nurd_ml::{LinearSvm, MlError, SvmConfig};

/// Configuration for the bagging-SVM PU learner.
#[derive(Debug, Clone, PartialEq)]
pub struct PuBagging {
    /// Number of bootstrap rounds.
    pub rounds: usize,
    /// Random-negative sample size per round; `None` = the positive count
    /// (the paper's K = |P| default).
    pub sample_size: Option<usize>,
    /// Base SVM configuration.
    pub svm: SvmConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PuBagging {
    fn default() -> Self {
        PuBagging {
            rounds: 12,
            sample_size: None,
            svm: SvmConfig {
                iterations: 4_000,
                ..SvmConfig::default()
            },
            seed: 555,
        }
    }
}

/// A fitted bagging ensemble.
#[derive(Debug, Clone)]
pub struct FittedPuBagging {
    models: Vec<LinearSvm>,
    /// Out-of-bag aggregate score per unlabeled training row (higher =
    /// more positive-like).
    oob_scores: Vec<f64>,
}

impl PuBagging {
    /// Fits the ensemble: each round treats a random subsample of the
    /// unlabeled set as negatives and trains positives-vs-sample.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] when either set is empty; otherwise
    /// propagates SVM errors.
    pub fn fit(
        &self,
        positives: &[Vec<f64>],
        unlabeled: &[Vec<f64>],
    ) -> Result<FittedPuBagging, MlError> {
        if positives.is_empty() || unlabeled.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let n_u = unlabeled.len();
        let k = self.sample_size.unwrap_or(positives.len()).clamp(1, n_u);
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut models = Vec::with_capacity(self.rounds);
        let mut oob_sum = vec![0.0; n_u];
        let mut oob_count = vec![0usize; n_u];

        for round in 0..self.rounds.max(1) {
            // Bootstrap a pseudo-negative sample from the unlabeled pool.
            let mut in_bag = vec![false; n_u];
            let sample: Vec<usize> = (0..k)
                .map(|_| {
                    let idx = rng.gen_range(0..n_u);
                    in_bag[idx] = true;
                    idx
                })
                .collect();
            let mut x = positives.to_vec();
            let mut y = vec![1.0; positives.len()];
            for &idx in &sample {
                x.push(unlabeled[idx].clone());
                y.push(-1.0);
            }
            let svm = LinearSvm::fit(
                &x,
                &y,
                &SvmConfig {
                    seed: self.svm.seed ^ (round as u64 + 1),
                    ..self.svm.clone()
                },
            )?;
            for (idx, bagged) in in_bag.iter().enumerate() {
                if !bagged {
                    oob_sum[idx] += svm.decision_function(&unlabeled[idx]);
                    oob_count[idx] += 1;
                }
            }
            models.push(svm);
        }

        // Rows that were in-bag every round fall back to the full-ensemble
        // score at read time (count 0).
        let oob_scores: Vec<f64> = (0..n_u)
            .map(|i| {
                if oob_count[i] > 0 {
                    oob_sum[i] / oob_count[i] as f64
                } else {
                    models
                        .iter()
                        .map(|m| m.decision_function(&unlabeled[i]))
                        .sum::<f64>()
                        / models.len() as f64
                }
            })
            .collect();

        Ok(FittedPuBagging { models, oob_scores })
    }
}

impl FittedPuBagging {
    /// Out-of-bag positive-class scores for the unlabeled training rows
    /// (aligned with the `unlabeled` argument of [`PuBagging::fit`]).
    #[must_use]
    pub fn oob_scores(&self) -> &[f64] {
        &self.oob_scores
    }

    /// Ensemble decision score for an arbitrary sample (mean of the round
    /// SVMs' decision functions; higher = more positive-like).
    #[must_use]
    pub fn decision(&self, features: &[f64]) -> f64 {
        self.models
            .iter()
            .map(|m| m.decision_function(features))
            .sum::<f64>()
            / self.models.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let positives: Vec<Vec<f64>> = (0..25).map(|i| vec![(i % 10) as f64 * 0.1, 0.0]).collect();
        let mut unlabeled: Vec<Vec<f64>> =
            (0..20).map(|i| vec![(i % 10) as f64 * 0.1, 0.05]).collect();
        unlabeled.extend((0..20).map(|i| vec![4.0 + (i % 10) as f64 * 0.1, 3.0]));
        (positives, unlabeled)
    }

    #[test]
    fn oob_scores_separate_hidden_positives() {
        let (positives, unlabeled) = setup();
        let model = PuBagging::default().fit(&positives, &unlabeled).unwrap();
        let scores = model.oob_scores();
        let mean_pos: f64 = scores[..20].iter().sum::<f64>() / 20.0;
        let mean_neg: f64 = scores[20..].iter().sum::<f64>() / 20.0;
        assert!(
            mean_pos > mean_neg,
            "hidden positives {mean_pos} should outscore negatives {mean_neg}"
        );
    }

    #[test]
    fn decision_generalizes_to_new_points() {
        let (positives, unlabeled) = setup();
        let model = PuBagging::default().fit(&positives, &unlabeled).unwrap();
        assert!(model.decision(&[0.5, 0.0]) > model.decision(&[4.5, 3.0]));
    }

    #[test]
    fn deterministic_under_seed() {
        let (positives, unlabeled) = setup();
        let a = PuBagging::default().fit(&positives, &unlabeled).unwrap();
        let b = PuBagging::default().fit(&positives, &unlabeled).unwrap();
        assert_eq!(a.oob_scores(), b.oob_scores());
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(PuBagging::default().fit(&[], &[vec![1.0]]).is_err());
        assert!(PuBagging::default().fit(&[vec![1.0]], &[]).is_err());
    }
}
