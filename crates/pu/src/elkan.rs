//! PU-EN: the Elkan & Noto (2008) probability-correction estimator.

use nurd_ml::{LogisticConfig, LogisticRegression, MlError};

/// Configuration for the Elkan–Noto PU learner.
#[derive(Debug, Clone, PartialEq)]
pub struct PuEn {
    /// Configuration of the non-traditional classifier `g(x) = P(s=1|x)`.
    pub logistic: LogisticConfig,
}

impl Default for PuEn {
    fn default() -> Self {
        PuEn {
            logistic: LogisticConfig {
                balanced: true,
                ..LogisticConfig::default()
            },
        }
    }
}

/// A fitted PU-EN model.
#[derive(Debug, Clone)]
pub struct FittedPuEn {
    classifier: LogisticRegression,
    /// The label frequency `c = P(s=1 | y=1)`, estimated as the mean
    /// classifier output on the labeled set (Elkan & Noto, estimator e1).
    label_frequency: f64,
}

impl PuEn {
    /// Fits the non-traditional classifier on labeled-vs-unlabeled data and
    /// estimates the label frequency `c`.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyTrainingSet`] when either set is empty; otherwise
    /// propagates logistic-regression errors.
    pub fn fit(&self, labeled: &[Vec<f64>], unlabeled: &[Vec<f64>]) -> Result<FittedPuEn, MlError> {
        if labeled.is_empty() || unlabeled.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let mut x = labeled.to_vec();
        x.extend(unlabeled.iter().cloned());
        let mut s = vec![1.0; labeled.len()];
        s.extend(std::iter::repeat_n(0.0, unlabeled.len()));
        let classifier = LogisticRegression::fit(&x, &s, &self.logistic)?;
        let label_frequency = (labeled
            .iter()
            .map(|row| classifier.predict_proba(row))
            .sum::<f64>()
            / labeled.len() as f64)
            .clamp(1e-6, 1.0);
        Ok(FittedPuEn {
            classifier,
            label_frequency,
        })
    }
}

impl FittedPuEn {
    /// The estimated label frequency `c`.
    #[must_use]
    pub fn label_frequency(&self) -> f64 {
        self.label_frequency
    }

    /// Corrected positive-class probability `P(y=1|x) = g(x)/c`, clamped to
    /// `[0, 1]`.
    #[must_use]
    pub fn positive_probability(&self, features: &[f64]) -> f64 {
        (self.classifier.predict_proba(features) / self.label_frequency).clamp(0.0, 1.0)
    }

    /// Batch version of [`FittedPuEn::positive_probability`].
    #[must_use]
    pub fn positive_probabilities(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.positive_probability(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn separable() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let labeled: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 10) as f64 * 0.1]).collect();
        // Unlabeled: half positive-like, half negative-like.
        let mut unlabeled: Vec<Vec<f64>> = (0..15).map(|i| vec![(i % 10) as f64 * 0.1]).collect();
        unlabeled.extend((0..15).map(|i| vec![5.0 + (i % 10) as f64 * 0.1]));
        (labeled, unlabeled)
    }

    #[test]
    fn corrects_probabilities_upward() {
        let (labeled, unlabeled) = separable();
        let model = PuEn::default().fit(&labeled, &unlabeled).unwrap();
        // c < 1 because unlabeled contains positives; correction divides by
        // it, pushing positive-like points toward 1.
        assert!(model.label_frequency() < 1.0);
        let p_pos = model.positive_probability(&[0.45]);
        let p_neg = model.positive_probability(&[5.5]);
        assert!(p_pos > 0.8, "positive-like prob {p_pos}");
        assert!(p_neg < 0.5, "negative-like prob {p_neg}");
    }

    #[test]
    fn rejects_empty_sets() {
        assert!(matches!(
            PuEn::default().fit(&[], &[vec![1.0]]),
            Err(MlError::EmptyTrainingSet)
        ));
        assert!(matches!(
            PuEn::default().fit(&[vec![1.0]], &[]),
            Err(MlError::EmptyTrainingSet)
        ));
    }

    proptest! {
        /// Probabilities stay in [0, 1] after the 1/c correction.
        #[test]
        fn prop_probabilities_bounded(probe in -20.0..20.0f64) {
            let (labeled, unlabeled) = separable();
            let model = PuEn::default().fit(&labeled, &unlabeled).unwrap();
            let p = model.positive_probability(&[probe]);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
