//! Positive-unlabeled learning baselines of the NURD paper (§6): PU-EN
//! (Elkan & Noto, 2008) and PU-BG (bagging SVM, Mordelet & Vert, 2014).
//!
//! PU learners assume a *labeled* sample from one class plus an unlabeled
//! mixture. In the straggler setting the labeled class is the finished
//! (non-straggler) tasks; a running task whose positive-class probability
//! is low is predicted to straggle. The paper's point (§3.3) is that the
//! PU assumption — labeled examples are selected independently of features
//! — is violated here, making these methods over-aggressive; these
//! implementations reproduce that behavior faithfully.
//!
//! # Example
//!
//! ```
//! use nurd_pu::PuEn;
//!
//! # fn main() -> Result<(), nurd_ml::MlError> {
//! let labeled: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.1]).collect();
//! let unlabeled: Vec<Vec<f64>> = vec![vec![0.5], vec![9.0]];
//! let model = PuEn::default().fit(&labeled, &unlabeled)?;
//! let probs = model.positive_probabilities(&unlabeled);
//! assert!(probs[0] > probs[1]); // 0.5 looks labeled-like; 9.0 does not
//! # Ok(())
//! # }
//! ```

mod bagging;
mod elkan;

pub use bagging::{FittedPuBagging, PuBagging};
pub use elkan::{FittedPuEn, PuEn};
