//! Data model shared by every crate in the NURD reproduction.
//!
//! A datacenter **job** is a set of parallel **tasks**; each task reports a
//! feature vector at regular time **checkpoints** and has a final **latency**
//! (its duration). A **straggler** is a task whose latency is at or above the
//! job's p90 latency. The simulator streams [`Checkpoint`] views — features
//! of all tasks, latencies of *finished* tasks only — to an
//! [`OnlinePredictor`], which must flag future stragglers among the running
//! tasks. This mirrors the problem formulation in §2 of the paper.
//!
//! Because the finished set only ever grows (and finished features are
//! frozen), [`FinishedDelta`] exposes each checkpoint's finished tasks as
//! a delta against the previous checkpoint — the accessor behind the
//! incremental (warm-start) refit path in `nurd-core`.
//!
//! # Example
//!
//! ```
//! use nurd_data::{JobTrace, TaskRecord};
//!
//! # fn main() -> Result<(), nurd_data::DataError> {
//! let tasks = vec![
//!     TaskRecord::new(0, 10.0, vec![vec![0.1], vec![0.2]]),
//!     TaskRecord::new(1, 50.0, vec![vec![0.9], vec![1.0]]),
//! ];
//! let job = JobTrace::new(7, vec!["cpu".into()], vec![5.0, 60.0], tasks)?;
//! assert_eq!(job.task_count(), 2);
//! assert!(job.straggler_threshold(0.5) > 10.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod csv;
mod error;
mod event;
mod job;
mod mitigation;
mod predictor;
mod task;

pub use checkpoint::{Checkpoint, FinishedDelta, FinishedTask, RunningTask};
pub use csv::{read_job_csv, read_jobs_csv, write_job_csv, write_jobs_csv};
pub use error::DataError;
pub use event::{job_events, job_stream, JobSpec, TaskEvent};
pub use job::{warmup_quorum, JobTrace};
pub use mitigation::{
    ActionRecord, BarrierView, JobPhase, MitigationAction, MitigationPolicy, ScoredPrediction,
    TaskScore,
};
pub use predictor::{JobContext, OnlinePredictor, StreamContext};
pub use task::{TaskId, TaskRecord};
