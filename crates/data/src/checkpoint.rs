//! Checkpoint views handed to predictors by the simulator.

/// A finished task as visible at a checkpoint: features *and* latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinishedTask<'a> {
    /// The task's id within its job.
    pub id: usize,
    /// The task's frozen feature snapshot.
    pub features: &'a [f64],
    /// The task's observed latency (`y_i ≤ τ_run_t` by construction).
    pub latency: f64,
}

/// A still-running task as visible at a checkpoint: features only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningTask<'a> {
    /// The task's id within its job.
    pub id: usize,
    /// The task's feature snapshot at this checkpoint.
    pub features: &'a [f64],
}

/// Everything a predictor may observe at the `t`-th checkpoint.
///
/// The simulator guarantees:
/// * every task in `finished` has `latency <= time`;
/// * every task in `running` has true latency `> time` (unknown to the
///   predictor) and has not been flagged at an earlier checkpoint;
/// * tasks flagged as stragglers at earlier checkpoints appear in neither
///   list (the paper stops evaluating flagged tasks).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<'a> {
    /// Ordinal of this checkpoint within the replay (0-based).
    pub ordinal: usize,
    /// Elapsed time `τ_run_t` at this checkpoint.
    pub time: f64,
    /// Tasks that have finished by `time`, with observed latencies.
    pub finished: Vec<FinishedTask<'a>>,
    /// Tasks still running at `time`.
    pub running: Vec<RunningTask<'a>>,
}

impl Checkpoint<'_> {
    /// Feature matrix of the finished tasks (row per task).
    #[must_use]
    pub fn finished_features(&self) -> Vec<Vec<f64>> {
        self.finished.iter().map(|t| t.features.to_vec()).collect()
    }

    /// Observed latencies of the finished tasks, aligned with
    /// [`Checkpoint::finished_features`].
    #[must_use]
    pub fn finished_latencies(&self) -> Vec<f64> {
        self.finished.iter().map(|t| t.latency).collect()
    }

    /// Feature matrix of the running tasks (row per task).
    #[must_use]
    pub fn running_features(&self) -> Vec<Vec<f64>> {
        self.running.iter().map(|t| t.features.to_vec()).collect()
    }

    /// Total number of visible tasks (finished + running).
    #[must_use]
    pub fn visible_count(&self) -> usize {
        self.finished.len() + self.running.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        (
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            vec![vec![5.0, 6.0]],
        )
    }

    #[test]
    fn matrices_align_with_views() {
        let (fin, run) = fixture();
        let ckpt = Checkpoint {
            ordinal: 2,
            time: 10.0,
            finished: vec![
                FinishedTask {
                    id: 0,
                    features: &fin[0],
                    latency: 4.0,
                },
                FinishedTask {
                    id: 1,
                    features: &fin[1],
                    latency: 9.0,
                },
            ],
            running: vec![RunningTask {
                id: 2,
                features: &run[0],
            }],
        };
        assert_eq!(ckpt.finished_features(), fin);
        assert_eq!(ckpt.finished_latencies(), vec![4.0, 9.0]);
        assert_eq!(ckpt.running_features(), run);
        assert_eq!(ckpt.visible_count(), 3);
    }

    #[test]
    fn empty_checkpoint_has_zero_visible() {
        let ckpt = Checkpoint {
            ordinal: 0,
            time: 1.0,
            finished: vec![],
            running: vec![],
        };
        assert_eq!(ckpt.visible_count(), 0);
        assert!(ckpt.finished_features().is_empty());
    }
}
