//! Checkpoint views handed to predictors by the simulator.

/// A finished task as visible at a checkpoint: features *and* latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinishedTask<'a> {
    /// The task's id within its job.
    pub id: usize,
    /// The task's frozen feature snapshot.
    pub features: &'a [f64],
    /// The task's observed latency (`y_i ≤ τ_run_t` by construction).
    pub latency: f64,
}

/// A still-running task as visible at a checkpoint: features only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningTask<'a> {
    /// The task's id within its job.
    pub id: usize,
    /// The task's feature snapshot at this checkpoint.
    pub features: &'a [f64],
}

/// Everything a predictor may observe at the `t`-th checkpoint.
///
/// The simulator guarantees:
/// * every task in `finished` has `latency <= time`;
/// * every task in `running` has true latency `> time` (unknown to the
///   predictor) and has not been flagged at an earlier checkpoint;
/// * tasks flagged as stragglers at earlier checkpoints appear in neither
///   list (the paper stops evaluating flagged tasks).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<'a> {
    /// Ordinal of this checkpoint within the replay (0-based).
    pub ordinal: usize,
    /// Elapsed time `τ_run_t` at this checkpoint.
    pub time: f64,
    /// Tasks that have finished by `time`, with observed latencies.
    pub finished: Vec<FinishedTask<'a>>,
    /// Tasks still running at `time`.
    pub running: Vec<RunningTask<'a>>,
}

impl<'a> Checkpoint<'a> {
    /// Feature matrix of the finished tasks (row per task).
    ///
    /// Copies every feature value; hot paths should prefer
    /// [`Checkpoint::finished_feature_rows`], which only gathers slice
    /// pointers into the trace's own storage.
    #[must_use]
    pub fn finished_features(&self) -> Vec<Vec<f64>> {
        self.finished.iter().map(|t| t.features.to_vec()).collect()
    }

    /// Zero-copy matrix view of the finished tasks' features: borrowed row
    /// slices pointing straight into the trace storage (only the slice
    /// pointers are gathered). Feed to the ML layer via
    /// `nurd_linalg::MatrixView::RowSlices`.
    #[must_use]
    pub fn finished_feature_rows(&self) -> Vec<&'a [f64]> {
        self.finished.iter().map(|t| t.features).collect()
    }

    /// Zero-copy matrix view of the running tasks' features (see
    /// [`Checkpoint::finished_feature_rows`]).
    #[must_use]
    pub fn running_feature_rows(&self) -> Vec<&'a [f64]> {
        self.running.iter().map(|t| t.features).collect()
    }

    /// Appends the observed latencies of the finished tasks to `out`
    /// (cleared first), reusing its allocation.
    pub fn finished_latencies_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.finished.iter().map(|t| t.latency));
    }

    /// Observed latencies of the finished tasks, aligned with
    /// [`Checkpoint::finished_features`].
    #[must_use]
    pub fn finished_latencies(&self) -> Vec<f64> {
        self.finished.iter().map(|t| t.latency).collect()
    }

    /// Feature matrix of the running tasks (row per task).
    #[must_use]
    pub fn running_features(&self) -> Vec<Vec<f64>> {
        self.running.iter().map(|t| t.features.to_vec()).collect()
    }

    /// Total number of visible tasks (finished + running).
    #[must_use]
    pub fn visible_count(&self) -> usize {
        self.finished.len() + self.running.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        (vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![vec![5.0, 6.0]])
    }

    #[test]
    fn matrices_align_with_views() {
        let (fin, run) = fixture();
        let ckpt = Checkpoint {
            ordinal: 2,
            time: 10.0,
            finished: vec![
                FinishedTask {
                    id: 0,
                    features: &fin[0],
                    latency: 4.0,
                },
                FinishedTask {
                    id: 1,
                    features: &fin[1],
                    latency: 9.0,
                },
            ],
            running: vec![RunningTask {
                id: 2,
                features: &run[0],
            }],
        };
        assert_eq!(ckpt.finished_features(), fin);
        assert_eq!(ckpt.finished_latencies(), vec![4.0, 9.0]);
        assert_eq!(ckpt.running_features(), run);
        assert_eq!(ckpt.visible_count(), 3);
    }

    #[test]
    fn zero_copy_rows_alias_trace_storage() {
        let (fin, run) = fixture();
        let ckpt = Checkpoint {
            ordinal: 1,
            time: 10.0,
            finished: vec![FinishedTask {
                id: 0,
                features: &fin[0],
                latency: 4.0,
            }],
            running: vec![RunningTask {
                id: 1,
                features: &run[0],
            }],
        };
        let fin_rows = ckpt.finished_feature_rows();
        let run_rows = ckpt.running_feature_rows();
        // Same pointers, not copies.
        assert!(std::ptr::eq(fin_rows[0], fin[0].as_slice()));
        assert!(std::ptr::eq(run_rows[0], run[0].as_slice()));
        let mut lat = vec![99.0; 8];
        ckpt.finished_latencies_into(&mut lat);
        assert_eq!(lat, vec![4.0]);
    }

    #[test]
    fn empty_checkpoint_has_zero_visible() {
        let ckpt = Checkpoint {
            ordinal: 0,
            time: 1.0,
            finished: vec![],
            running: vec![],
        };
        assert_eq!(ckpt.visible_count(), 0);
        assert!(ckpt.finished_features().is_empty());
    }
}
