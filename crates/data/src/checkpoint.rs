//! Checkpoint views handed to predictors by the simulator.

/// A finished task as visible at a checkpoint: features *and* latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinishedTask<'a> {
    /// The task's id within its job.
    pub id: usize,
    /// The task's frozen feature snapshot.
    pub features: &'a [f64],
    /// The task's observed latency (`y_i ≤ τ_run_t` by construction).
    pub latency: f64,
}

/// A still-running task as visible at a checkpoint: features only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningTask<'a> {
    /// The task's id within its job.
    pub id: usize,
    /// The task's feature snapshot at this checkpoint.
    pub features: &'a [f64],
}

/// Everything a predictor may observe at the `t`-th checkpoint.
///
/// The simulator guarantees:
/// * every task in `finished` has `latency <= time`;
/// * every task in `running` has true latency `> time` (unknown to the
///   predictor) and has not been flagged at an earlier checkpoint;
/// * tasks flagged as stragglers at earlier checkpoints appear in neither
///   list (the paper stops evaluating flagged tasks).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<'a> {
    /// Ordinal of this checkpoint within the replay (0-based).
    pub ordinal: usize,
    /// Elapsed time `τ_run_t` at this checkpoint.
    pub time: f64,
    /// Tasks that have finished by `time`, with observed latencies.
    pub finished: Vec<FinishedTask<'a>>,
    /// Tasks still running at `time`.
    pub running: Vec<RunningTask<'a>>,
}

impl<'a> Checkpoint<'a> {
    /// Feature matrix of the finished tasks (row per task).
    ///
    /// Copies every feature value; hot paths should prefer
    /// [`Checkpoint::finished_feature_rows`], which only gathers slice
    /// pointers into the trace's own storage.
    #[must_use]
    pub fn finished_features(&self) -> Vec<Vec<f64>> {
        self.finished.iter().map(|t| t.features.to_vec()).collect()
    }

    /// Zero-copy matrix view of the finished tasks' features: borrowed row
    /// slices pointing straight into the trace storage (only the slice
    /// pointers are gathered). Feed to the ML layer via
    /// `nurd_linalg::MatrixView::RowSlices`.
    #[must_use]
    pub fn finished_feature_rows(&self) -> Vec<&'a [f64]> {
        self.finished.iter().map(|t| t.features).collect()
    }

    /// Zero-copy matrix view of the running tasks' features (see
    /// [`Checkpoint::finished_feature_rows`]).
    #[must_use]
    pub fn running_feature_rows(&self) -> Vec<&'a [f64]> {
        self.running.iter().map(|t| t.features).collect()
    }

    /// Appends the observed latencies of the finished tasks to `out`
    /// (cleared first), reusing its allocation.
    pub fn finished_latencies_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.finished.iter().map(|t| t.latency));
    }

    /// Observed latencies of the finished tasks, aligned with
    /// [`Checkpoint::finished_features`].
    #[must_use]
    pub fn finished_latencies(&self) -> Vec<f64> {
        self.finished.iter().map(|t| t.latency).collect()
    }

    /// Feature matrix of the running tasks (row per task).
    #[must_use]
    pub fn running_features(&self) -> Vec<Vec<f64>> {
        self.running.iter().map(|t| t.features.to_vec()).collect()
    }

    /// Total number of visible tasks (finished + running).
    #[must_use]
    pub fn visible_count(&self) -> usize {
        self.finished.len() + self.running.len()
    }
}

/// Tracks which finished tasks a consumer has already absorbed, exposing
/// each checkpoint's finished set as a **delta** against the previous one.
///
/// The replay protocol guarantees the finished set only ever grows (a
/// finished task stays finished; flagged tasks leave the *running* list,
/// never the finished one) and that a finished task's feature snapshot is
/// frozen. Consecutive checkpoints therefore share almost all finished
/// rows, and incremental consumers — the warm-start refit path in
/// `nurd-core`, most prominently — only need the handful of newly finished
/// tasks per checkpoint. This tracker owns that bookkeeping: feed it every
/// checkpoint and it returns the tasks not seen before, in a stable
/// absorb order suitable for append-only training-matrix storage.
#[derive(Debug, Clone, Default)]
pub struct FinishedDelta {
    /// `seen[id]` once task `id` has been returned by `absorb`.
    seen: Vec<bool>,
    absorbed: usize,
}

impl FinishedDelta {
    /// An empty tracker (no task absorbed yet).
    #[must_use]
    pub fn new() -> Self {
        FinishedDelta::default()
    }

    /// Forgets everything — call between jobs. Keeps the allocation.
    pub fn clear(&mut self) {
        self.seen.clear();
        self.absorbed = 0;
    }

    /// Returns the finished tasks of `checkpoint` that have not been
    /// absorbed before, marking them absorbed. Order follows the
    /// checkpoint's own finished order, so repeated calls over a replay
    /// yield every finished task exactly once, in a deterministic
    /// append sequence.
    pub fn absorb<'c, 'a>(&mut self, checkpoint: &'c Checkpoint<'a>) -> Vec<&'c FinishedTask<'a>> {
        let mut fresh = Vec::new();
        for task in &checkpoint.finished {
            if task.id >= self.seen.len() {
                self.seen.resize(task.id + 1, false);
            }
            if !self.seen[task.id] {
                self.seen[task.id] = true;
                self.absorbed += 1;
                fresh.push(task);
            }
        }
        fresh
    }

    /// Number of distinct finished tasks absorbed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.absorbed
    }

    /// Whether no task has been absorbed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.absorbed == 0
    }

    /// Whether task `id` has been absorbed.
    #[must_use]
    pub fn contains(&self, id: usize) -> bool {
        self.seen.get(id).copied().unwrap_or(false)
    }
}

impl nurd_codec::Checkpointable for FinishedDelta {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        self.seen.encode(enc);
        enc.put_usize(self.absorbed);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(FinishedDelta {
            seen: nurd_codec::Checkpointable::decode(dec)?,
            absorbed: dec.take_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        (vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![vec![5.0, 6.0]])
    }

    #[test]
    fn matrices_align_with_views() {
        let (fin, run) = fixture();
        let ckpt = Checkpoint {
            ordinal: 2,
            time: 10.0,
            finished: vec![
                FinishedTask {
                    id: 0,
                    features: &fin[0],
                    latency: 4.0,
                },
                FinishedTask {
                    id: 1,
                    features: &fin[1],
                    latency: 9.0,
                },
            ],
            running: vec![RunningTask {
                id: 2,
                features: &run[0],
            }],
        };
        assert_eq!(ckpt.finished_features(), fin);
        assert_eq!(ckpt.finished_latencies(), vec![4.0, 9.0]);
        assert_eq!(ckpt.running_features(), run);
        assert_eq!(ckpt.visible_count(), 3);
    }

    #[test]
    fn zero_copy_rows_alias_trace_storage() {
        let (fin, run) = fixture();
        let ckpt = Checkpoint {
            ordinal: 1,
            time: 10.0,
            finished: vec![FinishedTask {
                id: 0,
                features: &fin[0],
                latency: 4.0,
            }],
            running: vec![RunningTask {
                id: 1,
                features: &run[0],
            }],
        };
        let fin_rows = ckpt.finished_feature_rows();
        let run_rows = ckpt.running_feature_rows();
        // Same pointers, not copies.
        assert!(std::ptr::eq(fin_rows[0], fin[0].as_slice()));
        assert!(std::ptr::eq(run_rows[0], run[0].as_slice()));
        let mut lat = vec![99.0; 8];
        ckpt.finished_latencies_into(&mut lat);
        assert_eq!(lat, vec![4.0]);
    }

    #[test]
    fn finished_delta_yields_each_task_once_in_absorb_order() {
        let f: Vec<Vec<f64>> = (0..4).map(|i| vec![f64::from(i)]).collect();
        let fin_task = |id: usize| FinishedTask {
            id,
            features: &f[id],
            latency: id as f64 + 1.0,
        };
        let ckpt = |ids: &[usize]| Checkpoint {
            ordinal: 0,
            time: 10.0,
            finished: ids.iter().map(|&i| fin_task(i)).collect(),
            running: vec![],
        };
        let mut delta = FinishedDelta::new();
        // Checkpoint 1: tasks 1 and 3 finished.
        let c1 = ckpt(&[1, 3]);
        let d1 = delta.absorb(&c1);
        assert_eq!(d1.iter().map(|t| t.id).collect::<Vec<_>>(), vec![1, 3]);
        // Checkpoint 2: task 2 finished in between — interleaved by id in
        // the checkpoint view, but the delta only surfaces the new task.
        let c2 = ckpt(&[1, 2, 3]);
        let d2 = delta.absorb(&c2);
        assert_eq!(d2.iter().map(|t| t.id).collect::<Vec<_>>(), vec![2]);
        assert_eq!(delta.len(), 3);
        assert!(delta.contains(3) && !delta.contains(0));
        // Re-feeding an old checkpoint yields nothing new.
        assert!(delta.absorb(&c1).is_empty());
        delta.clear();
        assert!(delta.is_empty());
        assert_eq!(delta.absorb(&c1).len(), 2);
    }

    #[test]
    fn empty_checkpoint_has_zero_visible() {
        let ckpt = Checkpoint {
            ordinal: 0,
            time: 1.0,
            finished: vec![],
            running: vec![],
        };
        assert_eq!(ckpt.visible_count(), 0);
        assert!(ckpt.finished_features().is_empty());
    }
}
