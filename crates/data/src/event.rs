//! The multi-job task-event stream consumed by `nurd-serve`.
//!
//! A single replay (`nurd_sim::replay_job`) drives one predictor with one
//! job's checkpoints. A *fleet* of concurrent jobs is instead described as
//! one interleaved stream of [`TaskEvent`]s — task submissions, per-
//! checkpoint feature snapshots, completions — multiplexed across jobs.
//! The engine's determinism contract rests on one ordering rule:
//!
//! > **Events of the same job arrive in checkpoint order; events of
//! > different jobs may interleave arbitrarily.**
//!
//! [`job_events`] lowers a [`JobTrace`] into its canonical per-job stream
//! (the exact information the replay protocol reveals at each checkpoint,
//! nothing more); `nurd_trace::fleet_events` merges many jobs into one
//! time-ordered fleet stream.

use crate::{JobTrace, TaskId};

/// Static, per-job metadata an operator supplies when a job enters the
/// serving engine — the stream-side analogue of
/// [`JobContext`](crate::JobContext), minus the oracle trace (an online
/// service has none).
///
/// `threshold` is the straggler latency bound `τ_stra`. The paper treats
/// threshold selection as out of scope (§4.2) and derives it from the
/// trace's p90; a production deployment would take it from an SLA. Either
/// way it is an *input* here.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Fleet-unique job identifier.
    pub job: u64,
    /// Straggler latency threshold `τ_stra`.
    pub threshold: f64,
    /// Number of tasks in the job (task ids are dense `0..task_count`).
    pub task_count: usize,
    /// Feature dimensionality of every snapshot.
    pub feature_dim: usize,
    /// Number of checkpoints the job will report
    /// ([`TaskEvent::Barrier`] ordinals are `0..checkpoints`).
    pub checkpoints: usize,
}

impl JobSpec {
    /// Builds the spec for a job trace with `τ_stra` at latency quantile
    /// `quantile` (the paper's p90 protocol at `0.9`).
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is outside `[0, 1]` (propagated from
    /// [`JobTrace::straggler_threshold`]).
    #[must_use]
    pub fn of_trace(job: &JobTrace, quantile: f64) -> Self {
        JobSpec {
            job: job.job_id(),
            threshold: job.straggler_threshold(quantile),
            task_count: job.task_count(),
            feature_dim: job.feature_dim(),
            checkpoints: job.checkpoint_count(),
        }
    }
}

/// One event of a fleet stream. See the module docs for the ordering
/// contract.
///
/// The two *lifecycle* variants bracket a job's stream: [`TaskEvent::JobStart`]
/// carries the [`JobSpec`] so a streaming engine can admit the job on first
/// sight (no up-front registry), and [`TaskEvent::JobEnd`] announces that no
/// further events of the job will arrive, letting the engine finalize it and
/// release its state. [`job_stream`] emits both; [`job_events`] emits
/// neither (the pre-streaming shape, kept for callers that admit
/// explicitly).
#[derive(Debug, Clone, PartialEq)]
pub enum TaskEvent {
    /// A new job's stream begins; carries everything an engine needs to
    /// admit it. Always the first event of the job (per-job order).
    JobStart {
        /// The job's static metadata (id, `τ_stra`, task count, feature
        /// dimensionality, checkpoint count).
        spec: JobSpec,
    },
    /// The job's stream has ended: no further events of this job will
    /// arrive, and a streaming engine should finalize it now (emit its
    /// report, drop its state). Always the last event of the job.
    JobEnd {
        /// Owning job.
        job: u64,
        /// Elapsed time `τ_run` at which the stream ended (at or after the
        /// job's last checkpoint).
        time: f64,
    },
    /// A task entered the system (before its first checkpoint).
    Submitted {
        /// Owning job.
        job: u64,
        /// Task id within the job.
        task: TaskId,
    },
    /// The scheduler's node placement for the whole job: `nodes[t]` is the
    /// machine task `t` was placed on. Optional — jobs without placement
    /// metadata never emit it — and when present it arrives once, before
    /// the first barrier, so node-aware consumers (mitigation policies,
    /// the health aggregator) see placement from the first scored
    /// checkpoint on. Placement is invisible to predictors.
    Placed {
        /// Owning job.
        job: u64,
        /// Machine id per task, dense task-id order (`nodes.len()` equals
        /// the job's task count).
        nodes: Vec<u32>,
    },
    /// Feature snapshot of a still-running task at a checkpoint.
    Progress {
        /// Owning job.
        job: u64,
        /// Task id within the job.
        task: TaskId,
        /// Checkpoint ordinal (0-based).
        ordinal: usize,
        /// Elapsed time `τ_run` at the checkpoint.
        time: f64,
        /// The task's feature snapshot at this checkpoint.
        features: Vec<f64>,
    },
    /// A task completed; its latency is now observable and its feature
    /// snapshot is frozen. Emitted exactly once per task, at the first
    /// checkpoint whose time covers the task's latency.
    Finished {
        /// Owning job.
        job: u64,
        /// Task id within the job.
        task: TaskId,
        /// Checkpoint ordinal at which the completion is observed.
        ordinal: usize,
        /// Elapsed time `τ_run` at the checkpoint.
        time: f64,
        /// The task's final (frozen) feature snapshot.
        features: Vec<f64>,
        /// Observed latency (`latency <= time`).
        latency: f64,
    },
    /// Every `Progress`/`Finished` event of checkpoint `ordinal` for `job`
    /// has been delivered — the engine scores the job's running tasks now
    /// (batched scoring at checkpoint boundaries).
    Barrier {
        /// Owning job.
        job: u64,
        /// Checkpoint ordinal being closed.
        ordinal: usize,
        /// Elapsed time `τ_run` at the checkpoint.
        time: f64,
    },
}

impl TaskEvent {
    /// The job this event belongs to — the engine's sharding key.
    #[must_use]
    pub fn job(&self) -> u64 {
        match self {
            TaskEvent::JobStart { spec } => spec.job,
            TaskEvent::JobEnd { job, .. }
            | TaskEvent::Submitted { job, .. }
            | TaskEvent::Placed { job, .. }
            | TaskEvent::Progress { job, .. }
            | TaskEvent::Finished { job, .. }
            | TaskEvent::Barrier { job, .. } => *job,
        }
    }

    /// Wall-clock position of the event in its job's timeline
    /// (job starts and submissions sort at time zero).
    #[must_use]
    pub fn time(&self) -> f64 {
        match self {
            TaskEvent::JobStart { .. } | TaskEvent::Submitted { .. } | TaskEvent::Placed { .. } => {
                0.0
            }
            TaskEvent::JobEnd { time, .. }
            | TaskEvent::Progress { time, .. }
            | TaskEvent::Finished { time, .. }
            | TaskEvent::Barrier { time, .. } => *time,
        }
    }
}

impl nurd_codec::Checkpointable for JobSpec {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        enc.put_u64(self.job);
        enc.put_f64(self.threshold);
        enc.put_usize(self.task_count);
        enc.put_usize(self.feature_dim);
        enc.put_usize(self.checkpoints);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(JobSpec {
            job: dec.take_u64()?,
            threshold: dec.take_f64()?,
            task_count: dec.take_usize()?,
            feature_dim: dec.take_usize()?,
            checkpoints: dec.take_usize()?,
        })
    }
}

/// Events serialize with a one-byte variant tag; feature vectors travel
/// bit-exactly (`f64::to_bits`), so a WAL replay feeds the engine the
/// *identical* floats the live stream carried.
impl nurd_codec::Checkpointable for TaskEvent {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        match self {
            TaskEvent::JobStart { spec } => {
                enc.put_u8(0);
                spec.encode(enc);
            }
            TaskEvent::JobEnd { job, time } => {
                enc.put_u8(1);
                enc.put_u64(*job);
                enc.put_f64(*time);
            }
            TaskEvent::Submitted { job, task } => {
                enc.put_u8(2);
                enc.put_u64(*job);
                enc.put_usize(*task);
            }
            TaskEvent::Progress {
                job,
                task,
                ordinal,
                time,
                features,
            } => {
                enc.put_u8(3);
                enc.put_u64(*job);
                enc.put_usize(*task);
                enc.put_usize(*ordinal);
                enc.put_f64(*time);
                features.encode(enc);
            }
            TaskEvent::Finished {
                job,
                task,
                ordinal,
                time,
                features,
                latency,
            } => {
                enc.put_u8(4);
                enc.put_u64(*job);
                enc.put_usize(*task);
                enc.put_usize(*ordinal);
                enc.put_f64(*time);
                features.encode(enc);
                enc.put_f64(*latency);
            }
            TaskEvent::Barrier { job, ordinal, time } => {
                enc.put_u8(5);
                enc.put_u64(*job);
                enc.put_usize(*ordinal);
                enc.put_f64(*time);
            }
            TaskEvent::Placed { job, nodes } => {
                enc.put_u8(6);
                enc.put_u64(*job);
                enc.put_usize(nodes.len());
                for &node in nodes {
                    enc.put_u32(node);
                }
            }
        }
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(match dec.take_u8()? {
            0 => TaskEvent::JobStart {
                spec: JobSpec::decode(dec)?,
            },
            1 => TaskEvent::JobEnd {
                job: dec.take_u64()?,
                time: dec.take_f64()?,
            },
            2 => TaskEvent::Submitted {
                job: dec.take_u64()?,
                task: dec.take_usize()?,
            },
            3 => TaskEvent::Progress {
                job: dec.take_u64()?,
                task: dec.take_usize()?,
                ordinal: dec.take_usize()?,
                time: dec.take_f64()?,
                features: nurd_codec::Checkpointable::decode(dec)?,
            },
            4 => TaskEvent::Finished {
                job: dec.take_u64()?,
                task: dec.take_usize()?,
                ordinal: dec.take_usize()?,
                time: dec.take_f64()?,
                features: nurd_codec::Checkpointable::decode(dec)?,
                latency: dec.take_f64()?,
            },
            5 => TaskEvent::Barrier {
                job: dec.take_u64()?,
                ordinal: dec.take_usize()?,
                time: dec.take_f64()?,
            },
            6 => {
                let job = dec.take_u64()?;
                let len = dec.take_usize()?;
                let mut nodes = Vec::with_capacity(len);
                for _ in 0..len {
                    nodes.push(dec.take_u32()?);
                }
                TaskEvent::Placed { job, nodes }
            }
            tag => {
                return Err(nurd_codec::CodecError::InvalidTag {
                    what: "TaskEvent",
                    tag,
                })
            }
        })
    }
}

/// Lowers one job trace into its canonical event stream: all submissions,
/// then per checkpoint the `Progress`/`Finished` events (task-id order)
/// closed by a `Barrier`. The stream reveals exactly what the replay
/// protocol reveals — a running task's latency is never visible before
/// the checkpoint that observes its completion.
///
/// A task's features travel in its `Finished` event exactly once, frozen
/// at the completion checkpoint. The engine-equals-replay determinism
/// contract therefore assumes the trace's snapshots are **frozen after
/// completion** — `task.snapshot(k)` constant for every `k` at or past
/// the finishing checkpoint. That is the same invariant the warm-start
/// refit subsystem already leans on (see [`crate::FinishedDelta`]), and
/// every `nurd-trace`-generated trace guarantees it; a hand-built or
/// CSV-loaded trace whose features keep mutating after completion is
/// outside both subsystems' contracts (sequential `replay_job` would
/// re-read the drifting snapshot, this stream cannot).
#[must_use]
pub fn job_events(job: &JobTrace, threshold_quantile: f64) -> (JobSpec, Vec<TaskEvent>) {
    let spec = JobSpec::of_trace(job, threshold_quantile);
    let mut events = Vec::new();
    for task in job.tasks() {
        events.push(TaskEvent::Submitted {
            job: spec.job,
            task: task.id(),
        });
    }
    if let Some(nodes) = job.node_placement() {
        events.push(TaskEvent::Placed {
            job: spec.job,
            nodes: nodes.to_vec(),
        });
    }
    let mut finished = vec![false; job.task_count()];
    for (k, &time) in job.checkpoint_times().iter().enumerate() {
        for task in job.tasks() {
            if task.latency() <= time {
                if !finished[task.id()] {
                    finished[task.id()] = true;
                    events.push(TaskEvent::Finished {
                        job: spec.job,
                        task: task.id(),
                        ordinal: k,
                        time,
                        features: task.snapshot(k).to_vec(),
                        latency: task.latency(),
                    });
                }
            } else {
                events.push(TaskEvent::Progress {
                    job: spec.job,
                    task: task.id(),
                    ordinal: k,
                    time,
                    features: task.snapshot(k).to_vec(),
                });
            }
        }
        events.push(TaskEvent::Barrier {
            job: spec.job,
            ordinal: k,
            time,
        });
    }
    (spec, events)
}

/// Lowers one job trace into its *streaming* event stream: the
/// [`job_events`] stream bracketed by the lifecycle markers a streaming
/// engine admits and finalizes on — a leading [`TaskEvent::JobStart`]
/// carrying the [`JobSpec`] and a trailing [`TaskEvent::JobEnd`] at the
/// last checkpoint's time. This is the per-job unit
/// `nurd_trace::staggered_fleet_events` merges into a fleet stream with
/// staggered arrivals.
#[must_use]
pub fn job_stream(job: &JobTrace, threshold_quantile: f64) -> Vec<TaskEvent> {
    let (spec, events) = job_events(job, threshold_quantile);
    let end_time = job.checkpoint_times().last().copied().unwrap_or(0.0);
    let mut stream = Vec::with_capacity(events.len() + 2);
    stream.push(TaskEvent::JobStart { spec });
    stream.extend(events);
    stream.push(TaskEvent::JobEnd {
        job: job.job_id(),
        time: end_time,
    });
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskRecord;

    fn job() -> JobTrace {
        let tasks = vec![
            TaskRecord::new(0, 1.0, vec![vec![0.1], vec![0.2], vec![0.2]]),
            TaskRecord::new(1, 5.0, vec![vec![0.5], vec![0.6], vec![0.7]]),
            TaskRecord::new(2, 9.0, vec![vec![0.9], vec![1.0], vec![1.1]]),
        ];
        JobTrace::new(3, vec!["f".into()], vec![2.0, 6.0, 10.0], tasks).unwrap()
    }

    #[test]
    fn stream_reveals_latency_only_after_completion() {
        let (spec, events) = job_events(&job(), 0.9);
        assert_eq!(spec.task_count, 3);
        assert_eq!(spec.checkpoints, 3);
        let mut finished_seen = std::collections::HashSet::new();
        for ev in &events {
            match ev {
                TaskEvent::Finished {
                    task,
                    time,
                    latency,
                    ..
                } => {
                    assert!(latency <= time, "latency leaked before completion");
                    assert!(finished_seen.insert(*task), "duplicate Finished");
                }
                TaskEvent::Progress { task, time, .. } => {
                    let true_latency = job().tasks()[*task].latency();
                    assert!(true_latency > *time, "finished task kept progressing");
                }
                _ => {}
            }
        }
        assert_eq!(finished_seen.len(), 3, "every task finishes in-stream");
    }

    #[test]
    fn barriers_close_each_checkpoint_in_order() {
        let (_, events) = job_events(&job(), 0.9);
        let barriers: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                TaskEvent::Barrier { ordinal, .. } => Some(*ordinal),
                _ => None,
            })
            .collect();
        assert_eq!(barriers, vec![0, 1, 2]);
        // No event of checkpoint k appears after barrier k.
        let mut closed = 0usize;
        for ev in &events {
            match ev {
                TaskEvent::Barrier { ordinal, .. } => closed = ordinal + 1,
                TaskEvent::Progress { ordinal, .. } | TaskEvent::Finished { ordinal, .. } => {
                    assert!(*ordinal >= closed, "event after its barrier");
                }
                TaskEvent::Submitted { .. } | TaskEvent::Placed { .. } => assert_eq!(closed, 0),
                TaskEvent::JobStart { .. } | TaskEvent::JobEnd { .. } => {
                    panic!("job_events must not emit lifecycle markers")
                }
            }
        }
    }

    #[test]
    fn event_accessors_cover_all_variants() {
        let (_, events) = job_events(&job(), 0.9);
        for ev in &events {
            assert_eq!(ev.job(), 3);
            assert!(ev.time() >= 0.0);
        }
        assert_eq!(events[0].time(), 0.0, "submissions sort at time zero");
    }

    #[test]
    fn job_stream_brackets_events_with_lifecycle_markers() {
        let j = job();
        let stream = job_stream(&j, 0.9);
        let (spec, inner) = job_events(&j, 0.9);
        assert_eq!(stream.len(), inner.len() + 2);
        assert_eq!(stream[0], TaskEvent::JobStart { spec });
        assert_eq!(
            *stream.last().unwrap(),
            TaskEvent::JobEnd { job: 3, time: 10.0 }
        );
        assert_eq!(&stream[1..stream.len() - 1], &inner[..]);
        // Lifecycle accessors participate in the merge keys.
        assert_eq!(stream[0].job(), 3);
        assert_eq!(stream[0].time(), 0.0);
        assert_eq!(stream.last().unwrap().time(), 10.0);
    }

    #[test]
    fn placed_event_emitted_once_before_first_barrier() {
        let j = job().with_nodes(vec![0, 1, 0]).unwrap();
        let (_, events) = job_events(&j, 0.9);
        let placed: Vec<usize> = events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, TaskEvent::Placed { .. }).then_some(i))
            .collect();
        assert_eq!(placed.len(), 1);
        let first_barrier = events
            .iter()
            .position(|e| matches!(e, TaskEvent::Barrier { .. }))
            .unwrap();
        assert!(placed[0] < first_barrier);

        // Placement round-trips through the codec bit-exactly.
        use nurd_codec::{Checkpointable, Decoder, Encoder};
        let mut enc = Encoder::new();
        events[placed[0]].encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = TaskEvent::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back, events[placed[0]]);

        // A trace without placement emits no Placed event at all.
        let (_, bare) = job_events(&job(), 0.9);
        assert!(bare.iter().all(|e| !matches!(e, TaskEvent::Placed { .. })));
    }

    #[test]
    fn spec_matches_trace_protocol_quantities() {
        let j = job();
        let spec = JobSpec::of_trace(&j, 0.9);
        assert_eq!(spec.threshold, j.straggler_threshold(0.9));
        assert_eq!(spec.feature_dim, 1);
    }
}
