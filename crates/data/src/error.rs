use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by the data layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// An underlying I/O failure while reading or writing a trace file.
    Io(io::Error),
    /// A malformed line in a trace file.
    Parse {
        /// 1-based line number of the offending input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A structurally invalid trace (e.g. ragged feature rows).
    Invalid(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Invalid(msg) => write!(f, "invalid trace: {msg}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_number() {
        let e = DataError::Parse {
            line: 42,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn io_error_roundtrips_through_from() {
        let e: DataError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, DataError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
