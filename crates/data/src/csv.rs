//! Minimal CSV (de)serialization for job traces.
//!
//! Format (one file can hold many jobs):
//!
//! ```text
//! #job,42
//! #features,MCU,MAXCPU
//! #checkpoints,10,20,30
//! task,latency,ckpt,MCU,MAXCPU
//! 0,25.0,0,0.10,0.20
//! 0,25.0,1,0.12,0.22
//! ...
//! ```
//!
//! One data row per (task, checkpoint). Values are plain numbers and feature
//! names are identifiers, so no quoting/escaping is needed; commas inside
//! fields are unsupported by design.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{DataError, JobTrace, TaskRecord};

/// Writes one job in the trace CSV format.
///
/// The `writer` can be any [`Write`]; pass `&mut` if you need it back.
///
/// # Errors
///
/// Propagates I/O failures as [`DataError::Io`].
pub fn write_job_csv<W: Write>(mut writer: W, job: &JobTrace) -> Result<(), DataError> {
    writeln!(writer, "#job,{}", job.job_id())?;
    writeln!(writer, "#features,{}", job.feature_names().join(","))?;
    let times: Vec<String> = job
        .checkpoint_times()
        .iter()
        .map(|t| format!("{t}"))
        .collect();
    writeln!(writer, "#checkpoints,{}", times.join(","))?;
    writeln!(
        writer,
        "task,latency,ckpt,{}",
        job.feature_names().join(",")
    )?;
    for task in job.tasks() {
        for (k, snap) in task.snapshots().iter().enumerate() {
            let vals: Vec<String> = snap.iter().map(|v| format!("{v}")).collect();
            writeln!(
                writer,
                "{},{},{},{}",
                task.id(),
                task.latency(),
                k,
                vals.join(",")
            )?;
        }
    }
    Ok(())
}

/// Writes many jobs, concatenated, to `path`.
///
/// # Errors
///
/// Propagates I/O failures as [`DataError::Io`].
pub fn write_jobs_csv<P: AsRef<Path>>(path: P, jobs: &[JobTrace]) -> Result<(), DataError> {
    let mut w = BufWriter::new(File::create(path)?);
    for job in jobs {
        write_job_csv(&mut w, job)?;
    }
    Ok(())
}

/// Reads a single job from a reader; errors if the input holds zero or more
/// than one job.
///
/// The `reader` can be any [`Read`]; pass `&mut` if you need it back.
///
/// # Errors
///
/// [`DataError::Parse`] on malformed lines, [`DataError::Invalid`] when the
/// job count differs from one.
pub fn read_job_csv<R: Read>(reader: R) -> Result<JobTrace, DataError> {
    let jobs = parse_jobs(reader)?;
    match jobs.len() {
        1 => Ok(jobs.into_iter().next().expect("checked length")),
        n => Err(DataError::Invalid(format!("expected 1 job, found {n}"))),
    }
}

/// Reads all jobs from a trace CSV file.
///
/// # Errors
///
/// [`DataError::Io`] on I/O failures, [`DataError::Parse`] on malformed
/// lines, [`DataError::Invalid`] on structurally inconsistent jobs.
pub fn read_jobs_csv<P: AsRef<Path>>(path: P) -> Result<Vec<JobTrace>, DataError> {
    parse_jobs(File::open(path)?)
}

struct PendingJob {
    job_id: u64,
    feature_names: Vec<String>,
    checkpoint_times: Vec<f64>,
    /// (latency, snapshots) per task id.
    tasks: Vec<(f64, Vec<Vec<f64>>)>,
}

impl PendingJob {
    fn finish(self) -> Result<JobTrace, DataError> {
        let ckpts = self.checkpoint_times.len();
        let tasks: Vec<TaskRecord> = self
            .tasks
            .into_iter()
            .enumerate()
            .map(|(id, (latency, snaps))| {
                if snaps.len() != ckpts {
                    return Err(DataError::Invalid(format!(
                        "task {id} has {} snapshots, expected {ckpts}",
                        snaps.len()
                    )));
                }
                // TaskRecord::new panics on these; a file reader must
                // return an error instead.
                if !(latency.is_finite() && latency > 0.0) {
                    return Err(DataError::Invalid(format!(
                        "task {id} has non-positive or non-finite latency {latency}"
                    )));
                }
                if snaps.iter().flatten().any(|v| !v.is_finite()) {
                    return Err(DataError::Invalid(format!(
                        "task {id} has non-finite feature values"
                    )));
                }
                Ok(TaskRecord::new(id, latency, snaps))
            })
            .collect::<Result<_, _>>()?;
        JobTrace::new(
            self.job_id,
            self.feature_names,
            self.checkpoint_times,
            tasks,
        )
    }
}

fn parse_jobs<R: Read>(reader: R) -> Result<Vec<JobTrace>, DataError> {
    let reader = BufReader::new(reader);
    let mut jobs = Vec::new();
    let mut current: Option<PendingJob> = None;

    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| DataError::Parse {
            line: lineno,
            message,
        };

        if let Some(rest) = line.strip_prefix("#job,") {
            if let Some(pending) = current.take() {
                jobs.push(pending.finish()?);
            }
            let job_id = rest
                .trim()
                .parse::<u64>()
                .map_err(|e| err(format!("bad job id: {e}")))?;
            current = Some(PendingJob {
                job_id,
                feature_names: Vec::new(),
                checkpoint_times: Vec::new(),
                tasks: Vec::new(),
            });
        } else if let Some(rest) = line.strip_prefix("#features,") {
            let job = current
                .as_mut()
                .ok_or_else(|| err("#features before #job".into()))?;
            job.feature_names = rest.split(',').map(|s| s.trim().to_string()).collect();
        } else if let Some(rest) = line.strip_prefix("#checkpoints,") {
            let job = current
                .as_mut()
                .ok_or_else(|| err("#checkpoints before #job".into()))?;
            job.checkpoint_times = rest
                .split(',')
                .map(|s| s.trim().parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|e| err(format!("bad checkpoint time: {e}")))?;
        } else if line.starts_with("task,") {
            // Column header line; nothing to parse.
        } else {
            let job = current
                .as_mut()
                .ok_or_else(|| err("data row before #job".into()))?;
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 3 + job.feature_names.len() {
                return Err(err(format!(
                    "expected {} fields, found {}",
                    3 + job.feature_names.len(),
                    fields.len()
                )));
            }
            let task_id = fields[0]
                .parse::<usize>()
                .map_err(|e| err(format!("bad task id: {e}")))?;
            let latency = fields[1]
                .parse::<f64>()
                .map_err(|e| err(format!("bad latency: {e}")))?;
            let ckpt = fields[2]
                .parse::<usize>()
                .map_err(|e| err(format!("bad checkpoint index: {e}")))?;
            let snap: Vec<f64> = fields[3..]
                .iter()
                .map(|s| s.parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|e| err(format!("bad feature value: {e}")))?;
            if task_id > job.tasks.len() {
                return Err(err(format!(
                    "task ids must appear in order, got {task_id} after {}",
                    job.tasks.len()
                )));
            }
            if task_id == job.tasks.len() {
                job.tasks.push((latency, Vec::new()));
            }
            let entry = &mut job.tasks[task_id];
            if ckpt != entry.1.len() {
                return Err(err(format!(
                    "checkpoint indices must appear in order, got {ckpt} after {}",
                    entry.1.len()
                )));
            }
            entry.1.push(snap);
        }
    }
    if let Some(pending) = current.take() {
        jobs.push(pending.finish()?);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_job(job_id: u64) -> JobTrace {
        let tasks = vec![
            TaskRecord::new(0, 5.0, vec![vec![0.1, 1.0], vec![0.2, 2.0]]),
            TaskRecord::new(1, 25.0, vec![vec![0.9, 3.0], vec![1.1, 4.5]]),
        ];
        JobTrace::new(
            job_id,
            vec!["cpu".into(), "mem".into()],
            vec![10.0, 30.0],
            tasks,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_single_job() {
        let job = sample_job(42);
        let mut buf = Vec::new();
        write_job_csv(&mut buf, &job).unwrap();
        let parsed = read_job_csv(buf.as_slice()).unwrap();
        assert_eq!(parsed, job);
    }

    #[test]
    fn roundtrip_multiple_jobs_via_file() {
        let jobs = vec![sample_job(1), sample_job(2)];
        let dir = std::env::temp_dir().join("nurd-data-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.csv");
        write_jobs_csv(&path, &jobs).unwrap();
        let parsed = read_jobs_csv(&path).unwrap();
        assert_eq!(parsed, jobs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rejects_garbage() {
        let input = b"#job,1\n#features,a\n#checkpoints,1\nnot,a,valid,row\n";
        assert!(matches!(
            read_job_csv(&input[..]),
            Err(DataError::Parse { .. })
        ));
    }

    #[test]
    fn read_rejects_row_before_header() {
        let input = b"0,1.0,0,0.5\n";
        assert!(read_job_csv(&input[..]).is_err());
    }

    #[test]
    fn read_rejects_out_of_order_checkpoints() {
        let input = b"#job,1\n#features,f\n#checkpoints,1,2\n0,1.0,1,0.5\n";
        let err = read_job_csv(&input[..]).unwrap_err();
        assert!(err.to_string().contains("order"), "got: {err}");
    }

    #[test]
    fn read_rejects_two_jobs_when_one_expected() {
        let mut buf = Vec::new();
        write_job_csv(&mut buf, &sample_job(1)).unwrap();
        write_job_csv(&mut buf, &sample_job(2)).unwrap();
        assert!(matches!(
            read_job_csv(buf.as_slice()),
            Err(DataError::Invalid(_))
        ));
    }

    #[test]
    fn read_rejects_non_finite_values_with_error_not_panic() {
        // NaN latency.
        let input = b"#job,1\n#features,f\n#checkpoints,1\n0,nan,0,0.5\n";
        assert!(matches!(
            read_job_csv(&input[..]),
            Err(DataError::Invalid(_))
        ));
        // Zero latency.
        let input = b"#job,1\n#features,f\n#checkpoints,1\n0,0.0,0,0.5\n";
        assert!(read_job_csv(&input[..]).is_err());
        // Infinite feature.
        let input = b"#job,1\n#features,f\n#checkpoints,1\n0,1.0,0,inf\n";
        assert!(matches!(
            read_job_csv(&input[..]),
            Err(DataError::Invalid(_))
        ));
    }

    #[test]
    fn blank_lines_are_ignored() {
        let job = sample_job(9);
        let mut buf = Vec::new();
        write_job_csv(&mut buf, &job).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n\n");
        let parsed = read_job_csv(text.as_bytes()).unwrap();
        assert_eq!(parsed, job);
    }
}
