//! The trait every evaluated method implements.

use crate::{Checkpoint, JobTrace, ScoredPrediction, TaskScore};

/// Job-level context available to a predictor before replay starts.
///
/// `threshold` is the straggler latency threshold `τ_stra`. The paper treats
/// threshold selection as out of scope (§4.2) and evaluates all methods at
/// the true p90, so the simulator computes it from the trace and passes it
/// to every method equally.
///
/// `oracle` exposes the full trace *including unfinished tasks' latencies*.
/// Honest online methods must not read labels from it; it exists for the
/// Wrangler baseline, which the paper explicitly grants offline access to
/// labeled stragglers ("we randomly sample 2/3 non-stragglers and stragglers
/// from each job as training").
#[derive(Debug, Clone, Copy)]
pub struct JobContext<'a> {
    /// The straggler latency threshold `τ_stra` (p90 by default).
    pub threshold: f64,
    /// Number of tasks in the job.
    pub task_count: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Full trace for oracle baselines (see type-level docs).
    pub oracle: &'a JobTrace,
}

impl JobContext<'_> {
    /// The oracle-free projection of this context — what an online
    /// serving engine (which has no trace) can provide. The default
    /// [`OnlinePredictor::begin_job`] forwards here, so a predictor that
    /// does not need the oracle implements
    /// [`OnlinePredictor::begin_stream`] once and works in both the
    /// replay simulator and `nurd-serve`.
    #[must_use]
    pub fn stream(&self) -> StreamContext {
        StreamContext {
            threshold: self.threshold,
            task_count: self.task_count,
            feature_dim: self.feature_dim,
        }
    }
}

/// Job-level context available without an oracle trace: everything in
/// [`JobContext`] an *online* system can actually know up front. This is
/// what `nurd-serve` hands to predictors when a job is admitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamContext {
    /// The straggler latency threshold `τ_stra`.
    pub threshold: f64,
    /// Number of tasks in the job.
    pub task_count: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
}

/// An online straggler predictor, driven checkpoint-by-checkpoint.
///
/// A fresh instance is created per job (the paper trains one model per job).
/// At each checkpoint the simulator calls [`OnlinePredictor::predict`]; the
/// returned task ids are flagged as stragglers, removed from subsequent
/// checkpoints, and never unflagged — matching the paper's protocol in §7.1:
/// "If a task is predicted to be a straggler, it will not be evaluated
/// again."
pub trait OnlinePredictor {
    /// Short method name as it appears in the paper's tables ("NURD",
    /// "GBTR", "LOF", ...).
    fn name(&self) -> &str;

    /// Called once before the first checkpoint, with the oracle-free
    /// context an online serving engine can supply. This is the method
    /// most predictors should implement: it makes them drivable both by
    /// `nurd_sim::replay_job` (via the [`OnlinePredictor::begin_job`]
    /// default, which forwards here) and by the `nurd-serve` engine,
    /// which calls it directly. Only oracle baselines the paper grants
    /// offline label access (Wrangler) need [`OnlinePredictor::begin_job`]
    /// itself.
    fn begin_stream(&mut self, _ctx: &StreamContext) {}

    /// Called once before the first checkpoint during a simulator replay.
    /// Defaults to forwarding the oracle-free projection to
    /// [`OnlinePredictor::begin_stream`]; override only when the oracle
    /// trace itself is needed.
    fn begin_job(&mut self, ctx: &JobContext<'_>) {
        self.begin_stream(&ctx.stream());
    }

    /// Returns the ids of running tasks predicted to straggle at this
    /// checkpoint. Ids not present in `checkpoint.running` are ignored by
    /// the simulator.
    fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize>;

    /// Like [`OnlinePredictor::predict`], but additionally reports a
    /// normalized straggler score per running task (see
    /// [`TaskScore`]) for consumers — such as mitigation policies — that
    /// want confidence, not just the flag set.
    ///
    /// **Contract:** the returned `flagged` set must be exactly what
    /// [`OnlinePredictor::predict`] would have returned on this
    /// checkpoint, and the predictor's internal state must advance
    /// identically — a caller invokes *one* of the two methods per
    /// checkpoint, never both, and replay determinism relies on the two
    /// paths being interchangeable. The default calls `predict` once and
    /// synthesizes binary scores (`1.0` flagged / `0.0` not); predictors
    /// with a continuous score (NURD's adjusted predictions) override
    /// this to expose it without scoring twice.
    fn predict_scored(&mut self, checkpoint: &Checkpoint<'_>) -> ScoredPrediction {
        let flagged = self.predict(checkpoint);
        let scores = checkpoint
            .running
            .iter()
            .map(|r| TaskScore {
                task: r.id,
                score: if flagged.contains(&r.id) { 1.0 } else { 0.0 },
            })
            .collect();
        ScoredPrediction { flagged, scores }
    }

    /// Scheduling hint from the serving layer: this job may fan its
    /// internal model fits across up to `threads` worker threads (`1` =
    /// stay sequential, `0` = use every core). The engine flips this on
    /// adaptively for oversized jobs whose shard is backlogged — see
    /// `nurd_serve::BalanceConfig` — and may flip it back off.
    ///
    /// **Contract:** honoring the hint must not change any prediction —
    /// only wall-clock time. Implementations should route it to
    /// parallelism knobs that are proven bit-identical across thread
    /// counts (e.g. `nurd_ml::TreeConfig::n_threads`); predictors without
    /// such a knob keep this default no-op.
    fn set_parallelism(&mut self, _threads: usize) {}

    /// Serializes the predictor's fitted state for a crash-recovery
    /// snapshot, or `None` if the predictor does not support state
    /// snapshots (the default). A serving engine falls back to retaining
    /// the job's accepted events and replaying them through a fresh
    /// predictor when this returns `None`.
    ///
    /// **Contract:** a fresh instance from the same factory, taken through
    /// [`OnlinePredictor::begin_stream`] with the same context and then
    /// [`OnlinePredictor::restore_state`] with these bytes, must predict
    /// bit-for-bit identically to this instance on every future
    /// checkpoint.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`OnlinePredictor::snapshot_state`].
    /// Called after [`OnlinePredictor::begin_stream`] on a fresh instance.
    /// Returns `false` (the default) when the predictor does not support
    /// restoration or the bytes are malformed — the caller then treats the
    /// predictor as unrecoverable from a blob.
    fn restore_state(&mut self, _bytes: &[u8]) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskRecord;

    /// A trivial predictor that flags every running task.
    struct FlagAll;
    impl OnlinePredictor for FlagAll {
        fn name(&self) -> &str {
            "FLAG-ALL"
        }
        fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
            checkpoint.running.iter().map(|r| r.id).collect()
        }
    }

    #[test]
    fn trait_object_is_usable() {
        let job = JobTrace::new(
            1,
            vec!["f".into()],
            vec![1.0],
            vec![TaskRecord::new(0, 0.5, vec![vec![0.0]])],
        )
        .unwrap();
        let ctx = JobContext {
            threshold: 1.0,
            task_count: 1,
            feature_dim: 1,
            oracle: &job,
        };
        let mut p: Box<dyn OnlinePredictor> = Box::new(FlagAll);
        p.begin_job(&ctx);
        let features = [0.0];
        let ckpt = Checkpoint {
            ordinal: 0,
            time: 1.0,
            finished: vec![],
            running: vec![crate::RunningTask {
                id: 0,
                features: &features,
            }],
        };
        assert_eq!(p.predict(&ckpt), vec![0]);
        assert_eq!(p.name(), "FLAG-ALL");
    }
}
