//! Per-task records.

/// Identifier of a task within its job (dense, `0..n`).
pub type TaskId = usize;

/// One task of a job: its true final latency and its feature time series.
///
/// `features[k]` is the feature snapshot recorded at the job's `k`-th
/// checkpoint *of task-local elapsed time*: index `k` corresponds to the
/// task having run for `checkpoint_times[k]` time units. Once a task
/// finishes, its snapshot freezes at the last recorded value; the trace
/// generator materializes the frozen copies so lookups stay O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    id: TaskId,
    latency: f64,
    features: Vec<Vec<f64>>,
}

impl TaskRecord {
    /// Creates a task record.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is not finite and positive, or if `features` is
    /// empty. Structural checks against the owning job (row widths, series
    /// length) happen in [`crate::JobTrace::new`].
    #[must_use]
    pub fn new(id: TaskId, latency: f64, features: Vec<Vec<f64>>) -> Self {
        assert!(
            latency.is_finite() && latency > 0.0,
            "task latency must be finite and positive, got {latency}"
        );
        assert!(!features.is_empty(), "task must have at least one snapshot");
        TaskRecord {
            id,
            latency,
            features,
        }
    }

    /// The task's identifier within its job.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The task's true final latency (total duration).
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Number of recorded snapshots.
    #[must_use]
    pub fn snapshot_count(&self) -> usize {
        self.features.len()
    }

    /// Feature snapshot at checkpoint index `k`, clamped to the last
    /// available snapshot (a finished task's features stay frozen).
    #[must_use]
    pub fn snapshot(&self, k: usize) -> &[f64] {
        let idx = k.min(self.features.len() - 1);
        &self.features[idx]
    }

    /// All snapshots, in checkpoint order.
    #[must_use]
    pub fn snapshots(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn feature_dim(&self) -> usize {
        self.features[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_clamps_to_last() {
        let t = TaskRecord::new(0, 5.0, vec![vec![1.0], vec![2.0]]);
        assert_eq!(t.snapshot(0), &[1.0]);
        assert_eq!(t.snapshot(1), &[2.0]);
        assert_eq!(t.snapshot(99), &[2.0]);
    }

    #[test]
    fn accessors() {
        let t = TaskRecord::new(3, 7.5, vec![vec![1.0, 2.0]]);
        assert_eq!(t.id(), 3);
        assert_eq!(t.latency(), 7.5);
        assert_eq!(t.snapshot_count(), 1);
        assert_eq!(t.feature_dim(), 2);
    }

    #[test]
    #[should_panic(expected = "latency must be finite and positive")]
    fn rejects_nonpositive_latency() {
        let _ = TaskRecord::new(0, 0.0, vec![vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one snapshot")]
    fn rejects_empty_series() {
        let _ = TaskRecord::new(0, 1.0, Vec::new());
    }
}
