//! Mitigation vocabulary: typed actions a straggler-mitigation policy can
//! take on a running task, the per-barrier view a policy decides from, and
//! the [`MitigationPolicy`] trait itself.
//!
//! The serving engine (`nurd-serve`) produces per-task straggler *scores*
//! at every scored barrier; a mitigation policy turns scores into typed
//! [`MitigationAction`]s; a deterministic simulator (`nurd-sim`) executes
//! the resulting [`ActionRecord`] log against the job's ground-truth
//! latencies and reports job-completion-time and wasted-work metrics. The
//! types live here — the bottom of the dependency stack — so the engine,
//! the simulator, and the policy crates all speak the same vocabulary
//! without depending on each other.
//!
//! # Determinism contract
//!
//! A policy's decisions must be a deterministic function of the
//! [`BarrierView`] **excluding** [`BarrierView::backlog`] (and of the
//! policy's own per-job state, which then evolves deterministically too).
//! A job's barriers are applied in stream order regardless of shard count
//! or drain scheduling, so such a policy produces a bit-identical action
//! log at any shard count — the same replay-determinism argument the
//! engine's reports rely on. `backlog` is a scheduling-dependent hint
//! (the shard's instantaneous ingress queue depth); a policy that reads
//! it trades the determinism guarantee for load awareness, and must say
//! so in its docs.

use nurd_codec::{Checkpointable, CodecError, Decoder, Encoder};

/// Where a job currently sits in its serving lifecycle. Produced by the
/// serving engine (`nurd-serve` re-exports it and documents the state
/// machine); carried in [`BarrierView`] so mitigation policies can phase
/// their behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted (its `JobStart` was drained) but no checkpoint activity
    /// has been applied yet.
    Admitted,
    /// Events are flowing but the warmup quorum has not yet held at a
    /// barrier — the predictor exists but has never been invoked.
    Warming,
    /// The warmup quorum held; the predictor is scored at each barrier
    /// inside the prediction window.
    Scoring,
    /// The job's stream ended; its report is (or was) available and its
    /// state has been dropped.
    Finalized,
}

/// What a mitigation policy decided to do about one running task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationAction {
    /// Speculatively re-execute the task on another machine: the task
    /// finishes at `min(original, clone)` latency, with the clone's run
    /// time charged to the wasted-work ledger (whether it wins or not).
    Clone,
    /// Explicitly do nothing. A typed no-decision lets a policy say "I
    /// looked at this task and declined" without the engine recording an
    /// action for it.
    Ignore,
    /// Kill the task and relaunch it from scratch elsewhere: everything
    /// the original ran is wasted, and the relaunch restarts the clock.
    /// Aggressive — a wrong quarantine can *lengthen* the job, unlike a
    /// wrong clone.
    Quarantine,
}

impl Checkpointable for MitigationAction {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            MitigationAction::Clone => 0,
            MitigationAction::Ignore => 1,
            MitigationAction::Quarantine => 2,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.take_u8()? {
            0 => Ok(MitigationAction::Clone),
            1 => Ok(MitigationAction::Ignore),
            2 => Ok(MitigationAction::Quarantine),
            tag => Err(CodecError::InvalidTag {
                what: "MitigationAction",
                tag,
            }),
        }
    }
}

/// One committed mitigation decision: which task, at which barrier of
/// which job, and what was done. The engine appends these to the job's
/// action log in decision order; the log rides the job's report and the
/// crash-recovery snapshots, and is the unit of the bit-identical-across-
/// shard-counts property.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionRecord {
    /// Job the action belongs to.
    pub job: u64,
    /// Barrier ordinal (checkpoint index) at which the decision was made.
    pub ordinal: usize,
    /// The barrier's wall-clock time — when the action takes effect.
    pub time: f64,
    /// The targeted task id.
    pub task: usize,
    /// What was done ([`MitigationAction::Ignore`] is never recorded).
    pub action: MitigationAction,
}

impl Checkpointable for ActionRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.job);
        enc.put_usize(self.ordinal);
        enc.put_f64(self.time);
        enc.put_usize(self.task);
        self.action.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ActionRecord {
            job: dec.take_u64()?,
            ordinal: dec.take_usize()?,
            time: dec.take_f64()?,
            task: dec.take_usize()?,
            action: Checkpointable::decode(dec)?,
        })
    }
}

/// One running task's straggler score at a barrier.
///
/// The score is normalized so `1.0` is the flagging boundary: a NURD-style
/// predictor reports `adjusted_prediction / τ_stra`, so `score >= 1.0`
/// means "predicted to straggle" and the magnitude above/below carries the
/// confidence a threshold policy can act on. Predictors without a
/// continuous score report `1.0` for flagged tasks and `0.0` otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskScore {
    /// Task id within the job.
    pub task: usize,
    /// Normalized straggler score (`>= 1.0` ⇔ at/above the flag boundary).
    pub score: f64,
}

/// A scored prediction at one checkpoint: the flagged ids (exactly what
/// [`crate::OnlinePredictor::predict`] would return) plus per-task scores
/// for every running task the predictor evaluated.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScoredPrediction {
    /// Ids predicted to straggle — identical to what `predict` returns on
    /// the same checkpoint.
    pub flagged: Vec<usize>,
    /// Normalized per-task scores (see [`TaskScore`]); covers the running
    /// tasks the predictor evaluated, task-id order.
    pub scores: Vec<TaskScore>,
}

/// Everything a mitigation policy sees at one scored barrier of one job.
///
/// All fields except [`BarrierView::backlog`] are deterministic functions
/// of the job's own event stream — see the module docs for the
/// determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct BarrierView<'a> {
    /// The job being decided about.
    pub job: u64,
    /// Barrier ordinal (checkpoint index), ascending per job.
    pub ordinal: usize,
    /// The barrier's wall-clock time.
    pub time: f64,
    /// The job's straggler threshold `τ_stra`.
    pub threshold: f64,
    /// The job's lifecycle phase (always [`JobPhase::Scoring`] today —
    /// policies run only at scored barriers — but carried so phased
    /// policies survive future callback points).
    pub phase: JobPhase,
    /// Normalized straggler scores for the running tasks evaluated at
    /// this barrier (newly-flagged tasks included), task-id order.
    pub scores: &'a [TaskScore],
    /// Tasks newly flagged as stragglers *at this barrier* (a subset of
    /// the ids in `scores` with score at/above the boundary).
    pub flagged: &'a [usize],
    /// Remaining clone budget the engine will honor for this job, if the
    /// policy declared one ([`MitigationPolicy::clone_budget`]).
    pub clones_remaining: Option<usize>,
    /// The job's node placement (`nodes[t]` = machine of task `t`), when a
    /// [`crate::TaskEvent::Placed`] event arrived for the job. Placement
    /// is part of the job's own event stream, so node-aware policies keep
    /// the bit-identical action-log guarantee.
    pub nodes: Option<&'a [u32]>,
    /// Scheduling-dependent hint: events queued on the job's shard when
    /// this barrier was drained. **Reading it forfeits the bit-identical
    /// action-log guarantee** — see the module docs.
    pub backlog: usize,
}

/// A straggler-mitigation policy: scores in, typed actions out.
///
/// One instance is created per job (like predictors), so per-job state —
/// counters, hysteresis — is plain `&mut self` state. For the
/// determinism and crash-recovery guarantees to hold, that state must
/// evolve deterministically from the sequence of views (see the module
/// docs); the engine persists its own bookkeeping (action log, budget
/// consumed) across crash recovery and re-creates the policy object from
/// the factory, so policies must not rely on hidden state surviving a
/// recovery beyond what their decisions imply.
pub trait MitigationPolicy {
    /// Short policy name for reports and logs ("noop", "threshold-clone",
    /// "top-k", "oracle", ...).
    fn name(&self) -> &str;

    /// Per-job cap on [`MitigationAction::Clone`] actions, enforced by
    /// the engine (excess clone decisions are suppressed and counted).
    /// `None` (the default) is unlimited.
    fn clone_budget(&self) -> Option<usize> {
        None
    }

    /// Decides actions for one scored barrier. Returns `(task, action)`
    /// pairs; the engine validates each (task running at this barrier,
    /// not already actioned, clone budget not exhausted — violations are
    /// suppressed and counted, never errors) and records everything but
    /// [`MitigationAction::Ignore`] in the job's action log, in the
    /// order returned.
    fn decide(&mut self, view: &BarrierView<'_>) -> Vec<(usize, MitigationAction)>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_record_round_trips() {
        for action in [
            MitigationAction::Clone,
            MitigationAction::Ignore,
            MitigationAction::Quarantine,
        ] {
            let record = ActionRecord {
                job: 42,
                ordinal: 7,
                time: 123.5,
                task: 9,
                action,
            };
            let mut enc = Encoder::new();
            record.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            let back = ActionRecord::decode(&mut dec).unwrap();
            assert_eq!(back, record);
            assert!(dec.is_empty());
        }
    }

    #[test]
    fn action_vec_round_trips() {
        let log = vec![
            ActionRecord {
                job: 1,
                ordinal: 0,
                time: 1.0,
                task: 3,
                action: MitigationAction::Clone,
            },
            ActionRecord {
                job: 1,
                ordinal: 2,
                time: 3.0,
                task: 5,
                action: MitigationAction::Quarantine,
            },
        ];
        let mut enc = Encoder::new();
        log.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back: Vec<ActionRecord> = Checkpointable::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn invalid_action_tag_is_a_typed_error() {
        let mut dec = Decoder::new(&[9u8]);
        assert!(MitigationAction::decode(&mut dec).is_err());
    }
}
