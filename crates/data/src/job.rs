//! Job-level trace container.

use crate::{Checkpoint, DataError, FinishedTask, RunningTask, TaskRecord};

/// A complete job trace: the unit the simulator replays.
///
/// Holds every task's latency and feature time series together with the
/// checkpoint schedule. The prediction protocol never exposes a latency to a
/// predictor before the checkpoint at which the task has finished; that
/// discipline is enforced by the simulator, not this container.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    job_id: u64,
    feature_names: Vec<String>,
    checkpoint_times: Vec<f64>,
    tasks: Vec<TaskRecord>,
    nodes: Option<Vec<u32>>,
}

impl JobTrace {
    /// Creates a validated job trace.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Invalid`] when:
    /// * `tasks` or `checkpoint_times` is empty,
    /// * checkpoint times are not strictly increasing and positive,
    /// * a task's feature width differs from `feature_names.len()`,
    /// * a task's snapshot count differs from the checkpoint count,
    /// * task ids are not the dense sequence `0..n`.
    pub fn new(
        job_id: u64,
        feature_names: Vec<String>,
        checkpoint_times: Vec<f64>,
        tasks: Vec<TaskRecord>,
    ) -> Result<Self, DataError> {
        if tasks.is_empty() {
            return Err(DataError::Invalid("job has no tasks".into()));
        }
        if checkpoint_times.is_empty() {
            return Err(DataError::Invalid("job has no checkpoints".into()));
        }
        let mut prev = 0.0;
        for &t in &checkpoint_times {
            if !(t.is_finite() && t > prev) {
                return Err(DataError::Invalid(format!(
                    "checkpoint times must be positive and strictly increasing, got {t} after {prev}"
                )));
            }
            prev = t;
        }
        let d = feature_names.len();
        for (i, task) in tasks.iter().enumerate() {
            if task.id() != i {
                return Err(DataError::Invalid(format!(
                    "task ids must be dense 0..n, found id {} at position {i}",
                    task.id()
                )));
            }
            if task.feature_dim() != d {
                return Err(DataError::Invalid(format!(
                    "task {i} has {} features, job declares {d}",
                    task.feature_dim()
                )));
            }
            if task.snapshot_count() != checkpoint_times.len() {
                return Err(DataError::Invalid(format!(
                    "task {i} has {} snapshots, job has {} checkpoints",
                    task.snapshot_count(),
                    checkpoint_times.len()
                )));
            }
        }
        Ok(JobTrace {
            job_id,
            feature_names,
            checkpoint_times,
            tasks,
            nodes: None,
        })
    }

    /// Attaches a node placement: `nodes[t]` is the machine task `t` runs
    /// on. Placement is optional metadata — traces without it behave
    /// exactly as before this field existed.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Invalid`] when `nodes.len() != task_count()`.
    pub fn with_nodes(mut self, nodes: Vec<u32>) -> Result<Self, DataError> {
        if nodes.len() != self.tasks.len() {
            return Err(DataError::Invalid(format!(
                "placement covers {} tasks, job has {}",
                nodes.len(),
                self.tasks.len()
            )));
        }
        self.nodes = Some(nodes);
        Ok(self)
    }

    /// The job's node placement (`nodes[t]` = machine of task `t`), if one
    /// was attached.
    #[must_use]
    pub fn node_placement(&self) -> Option<&[u32]> {
        self.nodes.as_deref()
    }

    /// The job's identifier.
    #[must_use]
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Names of the recorded features, in column order.
    #[must_use]
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn feature_dim(&self) -> usize {
        self.feature_names.len()
    }

    /// The checkpoint schedule (task-local elapsed times, ascending).
    #[must_use]
    pub fn checkpoint_times(&self) -> &[f64] {
        &self.checkpoint_times
    }

    /// Number of checkpoints.
    #[must_use]
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoint_times.len()
    }

    /// The job's tasks, ordered by id.
    #[must_use]
    pub fn tasks(&self) -> &[TaskRecord] {
        &self.tasks
    }

    /// The full checkpoint view at ordinal `k`: every task partitioned
    /// into finished (`latency <= checkpoint_times[k]`, with latency
    /// revealed) and running (features only), borrowing feature snapshots
    /// straight from the trace.
    ///
    /// This is the *pre-protocol* view — the replay loop in `nurd-sim`
    /// additionally removes tasks flagged at earlier checkpoints. Use it
    /// for benches and tests that need the canonical finished/running
    /// partition without re-implementing it.
    ///
    /// # Panics
    ///
    /// Panics when `k >= checkpoint_count()`.
    #[must_use]
    pub fn checkpoint_at(&self, k: usize) -> Checkpoint<'_> {
        let time = self.checkpoint_times[k];
        let mut finished = Vec::new();
        let mut running = Vec::new();
        for task in &self.tasks {
            if task.latency() <= time {
                finished.push(FinishedTask {
                    id: task.id(),
                    features: task.snapshot(k),
                    latency: task.latency(),
                });
            } else {
                running.push(RunningTask {
                    id: task.id(),
                    features: task.snapshot(k),
                });
            }
        }
        Checkpoint {
            ordinal: k,
            time,
            finished,
            running,
        }
    }

    /// Number of tasks.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// All task latencies, in task-id order.
    #[must_use]
    pub fn latencies(&self) -> Vec<f64> {
        self.tasks.iter().map(TaskRecord::latency).collect()
    }

    /// The maximum task latency (the job's completion time when every task
    /// starts at time zero).
    #[must_use]
    pub fn max_latency(&self) -> f64 {
        self.tasks
            .iter()
            .map(TaskRecord::latency)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The latency value at quantile `q` (e.g. `0.9` for p90), computed with
    /// linear interpolation between order statistics.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn straggler_threshold(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let mut lat = self.latencies();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let pos = q * (lat.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            lat[lo]
        } else {
            let frac = pos - lo as f64;
            lat[lo] * (1.0 - frac) + lat[hi] * frac
        }
    }

    /// Ids of the tasks whose latency is at or above `threshold` — the true
    /// straggler set `S` of the paper.
    #[must_use]
    pub fn true_stragglers(&self, threshold: f64) -> Vec<usize> {
        self.tasks
            .iter()
            .filter(|t| t.latency() >= threshold)
            .map(TaskRecord::id)
            .collect()
    }

    /// Index of the first checkpoint at which at least `fraction` of tasks
    /// have finished — the paper waits for 4% before predicting.
    ///
    /// Returns the last checkpoint index if the fraction is never reached.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn warmup_checkpoint(&self, fraction: f64) -> usize {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let need = warmup_quorum(self.task_count(), fraction);
        for (k, &t) in self.checkpoint_times.iter().enumerate() {
            let finished = self.tasks.iter().filter(|task| task.latency() <= t).count();
            if finished >= need {
                return k;
            }
        }
        self.checkpoint_times.len() - 1
    }
}

/// Number of finished tasks required before prediction starts:
/// `ceil(fraction · task_count)`, floored at one task. This is the single
/// definition of the warmup quorum — [`JobTrace::warmup_checkpoint`]
/// (the replay simulator's side) and the `nurd-serve` engine's online
/// warmup tracking both call it, which is part of the engine's
/// bit-for-bit-equals-replay contract.
#[must_use]
pub fn warmup_quorum(task_count: usize, fraction: f64) -> usize {
    ((fraction * task_count as f64).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_job() -> JobTrace {
        // Latencies 1..=10; p90 interpolates between 9 and 10.
        let tasks: Vec<TaskRecord> = (0..10)
            .map(|i| {
                TaskRecord::new(
                    i,
                    (i + 1) as f64,
                    vec![vec![i as f64], vec![i as f64 + 0.5]],
                )
            })
            .collect();
        JobTrace::new(1, vec!["f0".into()], vec![2.0, 20.0], tasks).unwrap()
    }

    #[test]
    fn threshold_p90_interpolates() {
        let job = small_job();
        let t = job.straggler_threshold(0.9);
        assert!((t - 9.1).abs() < 1e-9, "p90 of 1..=10 is 9.1, got {t}");
    }

    #[test]
    fn threshold_extremes() {
        let job = small_job();
        assert_eq!(job.straggler_threshold(0.0), 1.0);
        assert_eq!(job.straggler_threshold(1.0), 10.0);
    }

    #[test]
    fn true_stragglers_above_threshold() {
        let job = small_job();
        assert_eq!(job.true_stragglers(9.1), vec![9]);
        assert_eq!(job.true_stragglers(9.0), vec![8, 9]);
    }

    #[test]
    fn max_latency() {
        assert_eq!(small_job().max_latency(), 10.0);
    }

    #[test]
    fn warmup_checkpoint_finds_first_quorum() {
        let job = small_job();
        // 4% of 10 tasks → 1 task; latencies 1 and 2 are ≤ first checkpoint 2.0.
        assert_eq!(job.warmup_checkpoint(0.04), 0);
        // 50% needs 5 finished; only 2 finish by t=2, all by t=20.
        assert_eq!(job.warmup_checkpoint(0.5), 1);
    }

    #[test]
    fn rejects_ragged_feature_width() {
        let tasks = vec![
            TaskRecord::new(0, 1.0, vec![vec![1.0], vec![1.0]]),
            TaskRecord::new(1, 2.0, vec![vec![1.0, 2.0], vec![1.0, 2.0]]),
        ];
        assert!(JobTrace::new(1, vec!["f0".into()], vec![1.0, 2.0], tasks).is_err());
    }

    #[test]
    fn rejects_wrong_snapshot_count() {
        let tasks = vec![TaskRecord::new(0, 1.0, vec![vec![1.0]])];
        assert!(JobTrace::new(1, vec!["f0".into()], vec![1.0, 2.0], tasks).is_err());
    }

    #[test]
    fn rejects_non_monotone_checkpoints() {
        let tasks = vec![TaskRecord::new(0, 1.0, vec![vec![1.0], vec![1.0]])];
        assert!(JobTrace::new(1, vec!["f0".into()], vec![2.0, 1.0], tasks).is_err());
    }

    #[test]
    fn rejects_sparse_task_ids() {
        let tasks = vec![TaskRecord::new(5, 1.0, vec![vec![1.0]])];
        assert!(JobTrace::new(1, vec!["f0".into()], vec![1.0], tasks).is_err());
    }

    #[test]
    fn node_placement_validates_length() {
        let job = small_job();
        assert!(job.node_placement().is_none());
        assert!(job.clone().with_nodes(vec![0; 3]).is_err());
        let placed = job
            .with_nodes((0..10).map(|t| t as u32 % 4).collect())
            .unwrap();
        assert_eq!(placed.node_placement().unwrap().len(), 10);
        assert_eq!(placed.node_placement().unwrap()[5], 1);
    }

    #[test]
    fn rejects_empty_job() {
        assert!(JobTrace::new(1, vec!["f0".into()], vec![1.0], vec![]).is_err());
    }
}
