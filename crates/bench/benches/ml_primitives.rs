//! Criterion microbenchmarks: cost of the ML primitives NURD refits at
//! every checkpoint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nurd_ml::{
    GbtConfig, GradientBoosting, LogisticConfig, LogisticRegression, RegressionTree, SquaredLoss,
    TreeConfig, TreeGrowth,
};

fn training_set(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 31 + j * 17) % 97) as f64 / 97.0)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|row| 100.0 + 40.0 * row[0] + 25.0 * row[d / 2] * row[d - 1])
        .collect();
    (x, y)
}

fn bench_tree_fit(c: &mut Criterion) {
    // Single-tree construction cost, exact vs histogram growth, across the
    // training-set sizes NURD sees over a job's lifetime. This isolates
    // the split-finding algorithm itself (depth 6 to give both builders
    // real work below the root).
    let mut group = c.benchmark_group("tree_fit");
    for &n in &[100usize, 1000, 3000] {
        let (x, y) = training_set(n, 15);
        let grads: Vec<f64> = y.iter().map(|v| -v).collect();
        let hess = vec![1.0; n];
        for (label, growth) in [
            ("exact", TreeGrowth::Exact),
            ("histogram", TreeGrowth::Histogram),
        ] {
            let config = TreeConfig {
                max_depth: 6,
                growth,
                ..TreeConfig::default()
            };
            group.bench_function(BenchmarkId::new(label, n), |b| {
                b.iter(|| RegressionTree::fit(&x, &grads, &hess, &config).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_gbt_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("gbt_fit");
    for &n in &[100usize, 300] {
        let (x, y) = training_set(n, 15);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| GradientBoosting::fit(&x, &y, SquaredLoss, &GbtConfig::default()).unwrap());
        });
    }
    group.finish();
}

fn bench_gbt_predict(c: &mut Criterion) {
    let (x, y) = training_set(300, 15);
    let model = GradientBoosting::fit(&x, &y, SquaredLoss, &GbtConfig::default()).unwrap();
    c.bench_function("gbt_predict_300", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for row in &x {
                acc += model.predict(row);
            }
            acc
        });
    });
}

fn bench_logistic_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("logistic_fit");
    for &n in &[100usize, 300] {
        let (x, _) = training_set(n, 15);
        let labels: Vec<f64> = (0..n).map(|i| f64::from(u8::from(i % 3 == 0))).collect();
        let config = LogisticConfig {
            balanced: true,
            ..LogisticConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| LogisticRegression::fit(&x, &labels, &config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tree_fit,
    bench_gbt_fit,
    bench_gbt_predict,
    bench_logistic_fit
);
criterion_main!(benches);
