//! The closed mitigation loop, timed and priced:
//!
//! * `mitigation_sweep/none` — the no-mitigation baseline (no policy
//!   attached; the engine takes its zero-overhead `predict` path).
//! * `mitigation_sweep/threshold/{80,100,120}` — [`ThresholdClonePolicy`]
//!   at score thresholds 0.8 / 1.0 / 1.2 (×100 in the id), budget 8
//!   clones per job. Lower thresholds act earlier: more catches, more
//!   wasted speculation.
//! * `mitigation_sweep/banded/120_90` — [`BandedClonePolicy`] calibrated
//!   at hi 1.2 / lo 0.9 / patience 2, same budget: instant clones above
//!   the best single threshold plus patience-gated clones for the
//!   slow-burn stragglers hovering in the dead band. The pricing table
//!   asserts it beats the best plain-threshold row on JCT reduction —
//!   the dead band is where the single threshold leaves its gap.
//! * `mitigation_sweep/oracle` — ground-truth cloning, the structural
//!   upper bound.
//!
//! Each measured iteration is one whole closed loop: serve the fleet
//! through the engine with the policy attached, then execute the
//! committed action log in the deterministic simulator. Before timing, a
//! pricing table is printed — per-setting mean JCT reduction % and
//! wasted-work % against both baselines — so the *decision quality*
//! behind the timings is visible in the bench log (the ordering
//! `oracle ≥ threshold ≥ none = 0` is asserted, not eyeballed; the same
//! gate `examples/mitigation_smoke.rs` runs in CI).
//!
//! [`ThresholdClonePolicy`]: nurd_mitigate::ThresholdClonePolicy

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nurd_mitigate::{
    banded_mitigator, oracle_mitigator, run_fleet, threshold_mitigator, FleetConfig, FleetRun,
};
use nurd_serve::MitigatorFactory;
use nurd_trace::{SuiteConfig, TraceStyle};

const JOBS: usize = 8;
const QUANTILE: f64 = 0.9;
const THRESHOLDS: [f64; 3] = [0.8, 1.0, 1.2];
const CLONE_BUDGET: usize = 8;
/// The calibrated band: instant clones at 1.2 (the best single
/// threshold), patience-2 clones for hoverers in [0.9, 1.2).
const BAND: (f64, f64, usize) = (1.2, 0.9, 2);

fn fleet_jobs() -> Vec<nurd_data::JobTrace> {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(JOBS)
        .with_task_range(80, 120)
        .with_checkpoints(10)
        .with_seed(0x317);
    nurd_trace::generate_suite(&cfg)
}

fn run(jobs: &[nurd_data::JobTrace], mitigator: Option<MitigatorFactory>) -> FleetRun {
    run_fleet(jobs, mitigator, &FleetConfig::default())
}

fn bench_mitigation_sweep(c: &mut Criterion) {
    let jobs = fleet_jobs();

    // Pricing table + sanity gates, unmeasured.
    let baseline = run(&jobs, None);
    let oracle = run(&jobs, Some(oracle_mitigator(&jobs, QUANTILE)));
    eprintln!(
        "mitigation_sweep workload: {JOBS} jobs, {} actions (oracle), \
         catch-rate {:.2}",
        oracle.action_log.len(),
        oracle.summary.catch_rate,
    );
    eprintln!("policy            jct-reduction%   wasted-work%   clones(won/wasted)");
    let line = |name: &str, run: &FleetRun| {
        eprintln!(
            "{name:<18}{:>12.2}{:>14.2}   {}({}/{})",
            run.summary.mean_jct_reduction_percent,
            run.summary.wasted_fraction * 100.0,
            run.summary.clones_issued,
            run.summary.clones_won,
            run.summary.clones_wasted,
        );
    };
    line("none", &baseline);
    for &threshold in &THRESHOLDS {
        let run = run(
            &jobs,
            Some(threshold_mitigator(threshold, Some(CLONE_BUDGET))),
        );
        line(&format!("threshold@{threshold}"), &run);
        assert!(
            run.summary.mean_jct_reduction_percent >= 0.0
                && run.summary.mean_jct_reduction_percent
                    <= oracle.summary.mean_jct_reduction_percent + 1e-9,
            "threshold {threshold} fell outside [none, oracle]"
        );
    }
    // The two-sided threshold must beat the best plain-threshold row:
    // same budget, same instant threshold as the best row, plus the
    // patience-gated dead band below it.
    let best_threshold = THRESHOLDS
        .iter()
        .map(|&t| {
            run(&jobs, Some(threshold_mitigator(t, Some(CLONE_BUDGET))))
                .summary
                .mean_jct_reduction_percent
        })
        .fold(f64::MIN, f64::max);
    let (hi, lo, patience) = BAND;
    let banded = run(
        &jobs,
        Some(banded_mitigator(hi, lo, patience, Some(CLONE_BUDGET))),
    );
    line(&format!("banded@{hi}/{lo}"), &banded);
    assert!(
        banded.summary.mean_jct_reduction_percent > best_threshold,
        "banded {:.2}% did not beat the best threshold row {best_threshold:.2}%",
        banded.summary.mean_jct_reduction_percent,
    );
    line("oracle", &oracle);
    assert_eq!(baseline.summary.mean_jct_reduction_percent, 0.0);
    assert!(
        oracle.summary.mean_jct_reduction_percent > 0.0,
        "oracle gained nothing — sweep would be vacuous"
    );

    let mut group = c.benchmark_group("mitigation_sweep");
    group.sample_size(10);
    group.bench_function("none", |b| b.iter(|| run(&jobs, None)));
    for &threshold in &THRESHOLDS {
        group.bench_function(
            BenchmarkId::new("threshold", format!("{:.0}", threshold * 100.0)),
            |b| {
                b.iter(|| {
                    run(
                        &jobs,
                        Some(threshold_mitigator(threshold, Some(CLONE_BUDGET))),
                    )
                });
            },
        );
    }
    group.bench_function(
        BenchmarkId::new("banded", format!("{:.0}_{:.0}", hi * 100.0, lo * 100.0)),
        |b| {
            b.iter(|| {
                run(
                    &jobs,
                    Some(banded_mitigator(hi, lo, patience, Some(CLONE_BUDGET))),
                )
            });
        },
    );
    group.bench_function("oracle", |b| {
        b.iter(|| run(&jobs, Some(oracle_mitigator(&jobs, QUANTILE))));
    });
    group.finish();
}

criterion_group!(benches, bench_mitigation_sweep);
criterion_main!(benches);
