//! Per-event engine overhead and the scoring hot path, isolated:
//!
//! * `engine_overhead/predictor/{noop,nurd_flat,nurd_pointer}` — the
//!   same staggered fleet served end to end by (a) a no-op predictor
//!   (pure event application + pooled barrier assembly, the engine's
//!   floor), (b) full NURD on the flattened structure-of-arrays path
//!   (`flat_scoring = true`, the default), and (c) full NURD walking the
//!   pointer trees (`flat_scoring = false`). The noop/nurd gap is the
//!   model cost; the flat/pointer gap is what the SoA layout buys on the
//!   full serving stack (refits included, so it is diluted — see the
//!   kernel group for the undiluted ratio).
//! * `engine_overhead/scoring/{flat,pointer}` — the batch-prediction
//!   kernel alone: one fitted latency head scoring the same feature
//!   batch through [`nurd_ml::FlatForest::predict_view_into`] (branchless
//!   SoA walk into reused scratch) vs the pointer-tree
//!   [`nurd_ml::GradientBoosting::predict_view`]. Bit-identical outputs
//!   are asserted before timing, and the measured speedup is printed;
//!   the tentpole target is ≥ 1.5× here.
//! * `engine_overhead/scoring/flat_l{1,4,8}` — the same kernel at pinned
//!   lane widths ([`nurd_ml::FlatForest::set_lanes`]): `flat_l1` is the
//!   scalar one-row-per-step walk (the pre-lane kernel), `flat_l4` /
//!   `flat_l8` interleave 4 / 8 rows per tree step. Every width is
//!   asserted bit-identical to the pointer walk before timing; the lane
//!   tentpole target is ≥ 1.3× for the best width over `flat_l1`.
//! * `engine_overhead/deque/{owner_only,contended_steal}` — the
//!   work-stealing [`nurd_runtime::Deque`] under its two regimes: the
//!   uncontended owner push/pop cycle the pool's common path takes, and
//!   the same cycle with persistent stealer threads racing the owner for
//!   every item (the Chase–Lev CAS path).
//!
//! Determinism cover: `tests/hot_path_equivalence.rs` proves all three
//! predictor variants produce bit-identical flags/reports, so every
//! ratio below is free of accuracy caveats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nurd_core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd_data::{Checkpoint, OnlinePredictor, TaskEvent};
use nurd_linalg::MatrixView;
use nurd_ml::{FlatForest, GbtConfig, GradientBoosting, SquaredLoss, TreeConfig};
use nurd_runtime::{Deque, ThreadPool};
use nurd_serve::{Engine, EngineConfig, EngineReport, PredictorFactory};
use nurd_trace::{SuiteConfig, TraceStyle};

const JOBS: usize = 6;
const SHARDS: usize = 2;
const ARRIVAL_SPREAD: f64 = 400.0;

fn fleet_jobs() -> Vec<nurd_data::JobTrace> {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(JOBS)
        .with_task_range(80, 110)
        .with_checkpoints(10)
        .with_seed(0x0E4D);
    nurd_trace::generate_suite(&cfg)
}

fn fleet() -> Vec<TaskEvent> {
    nurd_trace::staggered_fleet_events(&fleet_jobs(), 0.9, ARRIVAL_SPREAD, 0x0E4D)
}

/// Scores nothing: every barrier still assembles its checkpoint views
/// from the pooled scratch, so this measures the engine's per-event
/// floor (ingress, application, barrier assembly, finalization).
struct Noop;
impl OnlinePredictor for Noop {
    fn name(&self) -> &str {
        "NOOP"
    }
    fn predict(&mut self, _c: &Checkpoint<'_>) -> Vec<usize> {
        Vec::new()
    }
}

fn nurd_factory(flat: bool) -> PredictorFactory {
    Box::new(move |_spec| {
        Box::new(NurdPredictor::new(
            NurdConfig::default()
                .with_refit_policy(RefitPolicy::Warm(WarmRefitConfig::default()))
                .with_flat_scoring(flat),
        ))
    })
}

fn run_fleet(events: &[TaskEvent], factory: PredictorFactory, pool: &ThreadPool) -> EngineReport {
    let engine = Engine::new(
        EngineConfig {
            shards: SHARDS,
            warmup_fraction: 0.04,
            ..EngineConfig::default()
        },
        factory,
    );
    engine.push_all_sync(events.iter().cloned());
    engine.finish(pool)
}

/// Deterministic synthetic regression rows (no RNG in benches).
fn synthetic_rows(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = Vec::with_capacity(d);
        let mut acc = 0.0;
        for f in 0..d {
            let v = ((i * 2654435761 + f * 40503) % 10_000) as f64 / 10_000.0;
            acc += v * (f as f64 + 1.0);
            row.push(v);
        }
        xs.push(row);
        ys.push(acc + ((i % 17) as f64) * 0.25);
    }
    (xs, ys)
}

fn bench_engine_overhead(c: &mut Criterion) {
    let events = fleet();
    let pool = ThreadPool::new(SHARDS);

    // Correctness guardrail: the NURD variants must actually score and
    // flag (a silently dead predictor would make the overhead gap
    // meaningless), and flat must equal pointer report-for-report.
    let flat_report = run_fleet(&events, nurd_factory(true), &pool);
    let pointer_report = run_fleet(&events, nurd_factory(false), &pool);
    assert_eq!(
        flat_report, pointer_report,
        "flat and pointer engine reports diverged — see tests/hot_path_equivalence.rs"
    );
    let flagged: usize = flat_report
        .jobs
        .iter()
        .map(|r| r.outcome.flagged_at.iter().flatten().count())
        .sum();
    let scored: usize = flat_report.jobs.iter().map(|r| r.checkpoints_scored).sum();
    assert!(flagged > 0, "NURD flagged nothing — bench would be vacuous");
    eprintln!(
        "engine_overhead workload: {} jobs, {} events, {} checkpoints scored, {} tasks flagged",
        flat_report.jobs.len(),
        flat_report.events,
        scored,
        flagged,
    );

    let mut group = c.benchmark_group("engine_overhead");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("predictor", "noop"), |b| {
        b.iter(|| run_fleet(&events, Box::new(|_spec| Box::new(Noop)), &pool));
    });
    group.bench_function(BenchmarkId::new("predictor", "nurd_flat"), |b| {
        b.iter(|| run_fleet(&events, nurd_factory(true), &pool));
    });
    group.bench_function(BenchmarkId::new("predictor", "nurd_pointer"), |b| {
        b.iter(|| run_fleet(&events, nurd_factory(false), &pool));
    });

    // The scoring kernel alone: one fitted head, one resident batch,
    // flat vs pointer. Model shape matches the serving default (50
    // rounds, depth 3); the batch is a plausible running-set size.
    let (xs, ys) = synthetic_rows(2000, 8);
    let rows: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
    let gbt = GbtConfig {
        n_rounds: 50,
        learning_rate: 0.15,
        tree: TreeConfig {
            max_depth: 3,
            min_child_weight: 2.0,
            ..TreeConfig::default()
        },
        subsample: 1.0,
        seed: 17,
    };
    let model = GradientBoosting::fit_view(MatrixView::RowSlices(&rows), &ys, SquaredLoss, &gbt)
        .expect("fit");
    let flat = model.flatten();
    let batch: Vec<&[f64]> = rows[..256].to_vec();
    let mut scratch = Vec::new();
    flat.predict_view_into(MatrixView::RowSlices(&batch), &mut scratch);
    let pointer_preds = model.predict_view(MatrixView::RowSlices(&batch));
    assert_eq!(
        scratch, pointer_preds,
        "flat kernel is not bit-identical to the pointer walk"
    );

    // Unmeasured speedup probe printed next to the criterion estimates,
    // so the ≥1.5× tentpole target is visible in the bench log itself.
    fn time(mut f: impl FnMut()) -> f64 {
        let iters = 2000;
        for _ in 0..200 {
            f(); // warm caches and clocks before timing
        }
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_secs_f64() / f64::from(iters)
    }
    let t_flat = time(|| {
        flat.predict_view_into(MatrixView::RowSlices(&batch), &mut scratch);
        std::hint::black_box(&mut scratch);
    });
    let t_pointer = time(|| {
        std::hint::black_box(model.predict_view(MatrixView::RowSlices(&batch)));
    });
    eprintln!(
        "scoring kernel (50 trees × depth 3 × 256 rows): flat {:.1}µs, pointer {:.1}µs, speedup {:.2}x",
        t_flat * 1e6,
        t_pointer * 1e6,
        t_pointer / t_flat,
    );

    // Lane-width sweep over the same model/batch, each width guarded by
    // a bit-identity assertion against the pointer walk before timing.
    let lane_forests: Vec<(usize, FlatForest)> = [1usize, 4, 8]
        .into_iter()
        .map(|l| (l, model.flatten().with_lanes(l)))
        .collect();
    for (lanes, forest) in &lane_forests {
        let mut out = Vec::new();
        forest.predict_view_into(MatrixView::RowSlices(&batch), &mut out);
        assert_eq!(
            out, pointer_preds,
            "lane width {lanes} is not bit-identical to the pointer walk"
        );
    }
    let lane_times: Vec<(usize, f64)> = lane_forests
        .iter()
        .map(|(lanes, forest)| {
            let t = time(|| {
                forest.predict_view_into(MatrixView::RowSlices(&batch), &mut scratch);
                std::hint::black_box(&mut scratch);
            });
            (*lanes, t)
        })
        .collect();
    let t_l1 = lane_times[0].1;
    let (best_lanes, best_t) = lane_times
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("lane sweep nonempty");
    eprintln!(
        "lane sweep (same kernel): {} — best L={} at {:.2}x over the scalar L=1 walk",
        lane_times
            .iter()
            .map(|(l, t)| format!("L{l} {:.1}µs", t * 1e6))
            .collect::<Vec<_>>()
            .join(", "),
        best_lanes,
        t_l1 / best_t,
    );

    group.bench_function(BenchmarkId::new("scoring", "flat"), |b| {
        b.iter(|| flat.predict_view_into(MatrixView::RowSlices(&batch), &mut scratch));
    });
    group.bench_function(BenchmarkId::new("scoring", "pointer"), |b| {
        b.iter(|| model.predict_view(MatrixView::RowSlices(&batch)));
    });
    for (lanes, forest) in &lane_forests {
        group.bench_function(BenchmarkId::new("scoring", format!("flat_l{lanes}")), |b| {
            b.iter(|| forest.predict_view_into(MatrixView::RowSlices(&batch), &mut scratch));
        });
    }

    // The work-stealing deque in isolation: 256 pushes then a full drain
    // per iteration — first with the owner alone (the pool's common
    // path: pop never leaves the fast path), then with two persistent
    // stealer threads racing the owner for every item, forcing the
    // Chase–Lev CAS on the shared slots.
    group.bench_function(BenchmarkId::new("deque", "owner_only"), |b| {
        let deque: Deque<u64> = Deque::new();
        b.iter(|| {
            for i in 0..256u64 {
                deque.push(i);
            }
            let mut sum = 0u64;
            while let Some(v) = deque.pop() {
                sum += v;
            }
            std::hint::black_box(sum)
        });
    });
    group.bench_function(BenchmarkId::new("deque", "contended_steal"), |b| {
        use std::sync::atomic::{AtomicBool, Ordering};
        let deque: Deque<u64> = Deque::new();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let stealer = deque.stealer();
                let stop = &stop;
                s.spawn(move || {
                    let mut sum = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        match stealer.steal() {
                            Some(v) => sum += v,
                            None => std::hint::spin_loop(),
                        }
                    }
                    std::hint::black_box(sum);
                });
            }
            b.iter(|| {
                for i in 0..256u64 {
                    deque.push(i);
                }
                let mut sum = 0u64;
                while let Some(v) = deque.pop() {
                    sum += v;
                }
                std::hint::black_box(sum)
            });
            stop.store(true, Ordering::Relaxed);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine_overhead);
criterion_main!(benches);
