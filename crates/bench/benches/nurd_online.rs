//! Criterion benchmarks: end-to-end per-job replay cost of NURD vs the
//! strongest baselines — the "can this run online?" question.

use criterion::{criterion_group, criterion_main, Criterion};

use nurd_baselines::{GbtrPredictor, GrabitPredictor};
use nurd_core::{NurdConfig, NurdPredictor};
use nurd_sim::{replay_job, ReplayConfig};
use nurd_trace::{SuiteConfig, TraceStyle};

fn bench_replays(c: &mut Criterion) {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(1)
        .with_task_range(200, 200)
        .with_checkpoints(20)
        .with_seed(0xBE7C);
    let job = nurd_trace::generate_job(&cfg, 0);
    let replay = ReplayConfig::default();

    let mut group = c.benchmark_group("replay_one_job_200_tasks");
    group.sample_size(10);
    group.bench_function("NURD", |b| {
        b.iter(|| {
            let mut p = NurdPredictor::new(NurdConfig::default());
            replay_job(&job, &mut p, &replay)
        });
    });
    group.bench_function("NURD-exact-growth", |b| {
        // The pre-histogram configuration: exact sort-based split finding
        // in the latency head — kept benchmarked so the layout/histogram
        // win stays visible in every perf run.
        let mut config = NurdConfig::default();
        config.gbt.tree.growth = nurd_ml::TreeGrowth::Exact;
        b.iter(|| {
            let mut p = NurdPredictor::new(config.clone());
            replay_job(&job, &mut p, &replay)
        });
    });
    group.bench_function("NURD-NC", |b| {
        b.iter(|| {
            let mut p = NurdPredictor::new(NurdConfig::without_calibration());
            replay_job(&job, &mut p, &replay)
        });
    });
    group.bench_function("GBTR", |b| {
        b.iter(|| {
            let mut p = GbtrPredictor::default();
            replay_job(&job, &mut p, &replay)
        });
    });
    group.bench_function("Grabit", |b| {
        b.iter(|| {
            let mut p = GrabitPredictor::default();
            replay_job(&job, &mut p, &replay)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_replays);
criterion_main!(benches);
