//! Streaming-engine throughput, two sweeps over one staggered-arrival
//! fleet workload:
//!
//! * `serve_throughput/shards/{1,2,4,8}` — the caller-driven engine
//!   (single pushing thread, `drain_sync` parallelism only), scaling
//!   shard count and pool size. The PR-3/PR-4-era baseline.
//! * `serve_throughput/producers/{1,2,4}` — **service mode**: the same
//!   events partitioned across N real producer threads pushing through
//!   cloned `EngineHandle`s into the background drain service (4 shards,
//!   machine-sized drain workers, bounded queues under `Block`). This
//!   measures the concurrent ingestion path end to end: blocking sends,
//!   per-shard MPSC channels, drain workers parking/unparking.
//!
//! Workload: a 10-job Google-style fleet (~100–140 tasks each, 12
//! checkpoints) lowered to streaming `TaskEvent`s — jobs admitted
//! mid-stream by their `JobStart`, finalized individually as their
//! streams end, exactly as in a long-lived service. Scoring is by
//! warm-policy NURD predictors; each measured iteration serves the whole
//! fleet to a final report (the full serving cost, dominated by
//! per-checkpoint model refits).
//!
//! The determinism property tests (`nurd-serve`) guarantee every
//! configuration produces bit-identical per-job reports; scaling is
//! therefore free of accuracy caveats. Ratios are bounded by the
//! machine's cores — on a single-core container every variant measures
//! roughly the sequential cost plus scheduling overhead.
//!
//! A correctness line (macro-F1, flags, events/sec at 1 shard, plus the
//! overload counters, which must be zero for the unbounded config) is
//! printed before timing so a silently broken engine can't post good
//! numbers; the producers variant additionally asserts zero lost events
//! under `Block`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nurd_core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd_data::TaskEvent;
use nurd_runtime::ThreadPool;
use nurd_serve::{
    Engine, EngineConfig, EngineReport, EngineService, FsyncPolicy, OverloadPolicy,
    PersistenceConfig, PredictorFactory, ServiceConfig,
};
use nurd_trace::{SuiteConfig, TraceStyle};

const JOBS: usize = 10;
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const PRODUCER_SWEEP: [usize; 3] = [1, 2, 4];
/// Shards for the producer sweep (the shard sweep's sweet spot).
const SERVICE_SHARDS: usize = 4;
/// Bounded ingress for the producer sweep: small enough that the burst
/// saturates it, so blocking sends are part of what is measured.
const SERVICE_QUEUE: usize = 1024;
/// Arrival spread (in stream-clock units) — wide enough that early jobs
/// finalize while late ones are still arriving.
const ARRIVAL_SPREAD: f64 = 600.0;

fn fleet_jobs() -> Vec<nurd_data::JobTrace> {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(JOBS)
        .with_task_range(100, 140)
        .with_checkpoints(12)
        .with_seed(0x5E8E);
    nurd_trace::generate_suite(&cfg)
}

fn fleet() -> Vec<TaskEvent> {
    nurd_trace::staggered_fleet_events(&fleet_jobs(), 0.9, ARRIVAL_SPREAD, 0x5E8E)
}

/// The producer partition: jobs split round-robin, each producer's
/// stream a seeded interleave of its own jobs (per-job order intact).
fn producer_streams(producers: usize) -> Vec<Vec<TaskEvent>> {
    nurd_trace::producer_streams(&fleet_jobs(), producers, 0.9, 0x5E8E)
}

fn factory() -> PredictorFactory {
    Box::new(|_spec| {
        Box::new(NurdPredictor::new(NurdConfig::default().with_refit_policy(
            RefitPolicy::Warm(WarmRefitConfig::default()),
        )))
    })
}

fn run_fleet(events: &[TaskEvent], shards: usize, pool: &ThreadPool) -> EngineReport {
    let engine = Engine::new(
        EngineConfig {
            shards,
            warmup_fraction: 0.04,
            ..EngineConfig::default()
        },
        factory(),
    );
    engine.push_all_sync(events.iter().cloned());
    engine.finish(pool)
}

fn run_service(streams: &[Vec<TaskEvent>]) -> EngineReport {
    let service = EngineService::start(
        EngineConfig {
            shards: SERVICE_SHARDS,
            warmup_fraction: 0.04,
            queue_capacity: Some(SERVICE_QUEUE),
            overload: OverloadPolicy::Block,
            ..EngineConfig::default()
        },
        ServiceConfig::default(),
        factory(),
    );
    let producers: Vec<_> = streams
        .iter()
        .map(|stream| {
            let handle = service.handle();
            let stream = stream.clone();
            std::thread::spawn(move || handle.push_all(stream))
        })
        .collect();
    let accepted: usize = producers.into_iter().map(|p| p.join().unwrap()).sum();
    let report = service.close();
    assert_eq!(accepted, report.events, "service lost events");
    report
}

fn bench_serve_throughput(c: &mut Criterion) {
    let events = fleet();

    // Correctness guardrail printed next to the timings.
    let reference_pool = ThreadPool::new(1);
    let start = std::time::Instant::now();
    let report = run_fleet(&events, 1, &reference_pool);
    let elapsed = start.elapsed().as_secs_f64();
    let flagged: usize = report
        .jobs
        .iter()
        .map(|r| r.outcome.flagged_at.iter().flatten().count())
        .sum();
    eprintln!(
        "serve_throughput workload: {} jobs (mid-stream admission), {} events, macro-F1 {:.3}, \
         {} tasks flagged, {:.0} events/s at 1 shard, overload {:?}",
        report.jobs.len(),
        report.events,
        report.macro_f1(),
        flagged,
        report.events as f64 / elapsed,
        report.overload,
    );
    assert_eq!(
        report.jobs.len(),
        JOBS,
        "streaming admission lost jobs — bench would be vacuous"
    );
    assert!(
        flagged > 0,
        "engine flagged nothing — bench would be vacuous"
    );
    assert_eq!(
        report.overload.lost_events(),
        0,
        "unbounded config must not lose events"
    );

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for shards in SHARD_SWEEP {
        let pool = ThreadPool::new(shards);
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| run_fleet(&events, shards, &pool));
        });
    }

    // Service mode: N producer threads vs the background drain loop.
    for producers in PRODUCER_SWEEP {
        let streams = producer_streams(producers);
        // One unmeasured run to assert the mode is healthy at this
        // producer count (zero losses, every job reported).
        let check = run_service(&streams);
        assert_eq!(check.jobs.len(), JOBS, "service mode lost jobs");
        assert_eq!(check.overload.lost_events(), 0, "Block lost events");
        group.bench_function(BenchmarkId::new("producers", producers), |b| {
            b.iter(|| run_service(&streams));
        });
    }
    group.finish();
}

/// Persistence-path latency, swept over resident (live, mid-stream)
/// jobs:
///
/// * `snapshot_restore/snapshot/{2,5,10}jobs` — one full engine
///   checkpoint: every live job's state (spec, task bookkeeping, warm
///   NURD predictor blob) CRC-framed and fsynced to a new snapshot
///   generation, WALs rotated, old generations pruned.
/// * `snapshot_restore/restore/{2,5,10}jobs` — cold recovery: scan the
///   directory, load the newest valid snapshot, rebuild every resident
///   predictor from its blob, replay the WAL tail, and stand the
///   service up (the measured iteration includes the post-recovery
///   snapshot and clean shutdown — the full restart cost an operator
///   waits through).
///
/// Each resident job is mid-stream (half its events applied), so the
/// snapshots carry genuinely warm predictor state rather than empty
/// shells.
fn bench_snapshot_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_restore");
    group.sample_size(10);
    for resident in [2usize, 5, 10] {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(resident)
            .with_task_range(100, 140)
            .with_checkpoints(12)
            .with_seed(0x5E8E);
        let traces = nurd_trace::generate_suite(&cfg);
        let half_streams: Vec<Vec<TaskEvent>> = traces
            .iter()
            .map(|job| {
                let mut events = nurd_data::job_stream(job, 0.9);
                events.truncate(events.len() / 2);
                events
            })
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "nurd-bench-snapshot-{}-{resident}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let engine_cfg = EngineConfig {
            shards: SERVICE_SHARDS,
            warmup_fraction: 0.04,
            ..EngineConfig::default()
        };
        // WAL fsync cost is the drain path's; `Never` isolates what this
        // group measures (snapshot write / recovery read).
        let mut persistence = PersistenceConfig::new(&dir);
        persistence.fsync = FsyncPolicy::Never;
        let service = EngineService::start_persistent(
            engine_cfg.clone(),
            ServiceConfig::default(),
            persistence,
            factory(),
        )
        .expect("start_persistent");
        for stream in &half_streams {
            let handle = service.handle();
            handle.push_all(stream.iter().cloned());
        }
        service.quiesce();
        group.bench_function(
            BenchmarkId::new("snapshot", format!("{resident}jobs")),
            |b| {
                b.iter(|| service.checkpoint().expect("checkpoint"));
            },
        );
        let _ = service.close(); // shutdown snapshot: live jobs persist resumable
        group.bench_function(
            BenchmarkId::new("restore", format!("{resident}jobs")),
            |b| {
                b.iter(|| {
                    let (revived, report) = EngineService::recover(
                        PersistenceConfig::new(&dir),
                        engine_cfg.clone(),
                        ServiceConfig::default(),
                        factory(),
                    )
                    .expect("recover");
                    assert_eq!(
                        report.resumed_jobs, resident,
                        "a resident job failed to resume"
                    );
                    let _ = revived.close();
                });
            },
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput, bench_snapshot_restore);
criterion_main!(benches);
