//! Streaming-engine throughput: one staggered-arrival fleet stream
//! replayed through `nurd-serve` at increasing shard counts.
//!
//! Workload: a 10-job Google-style fleet (~100–140 tasks each, 12
//! checkpoints) lowered to a single streaming `TaskEvent` stream by
//! `nurd_trace::staggered_fleet_events` — jobs are admitted mid-stream
//! by their `JobStart` events and finalized individually as their
//! streams end, so the engine's resident state shrinks while the bench
//! runs, exactly as in a long-lived service. Scoring is by warm-policy
//! NURD predictors. Each measured iteration builds a fresh engine,
//! pushes the whole stream, and drains to a report — i.e. the full
//! serving cost of the fleet, dominated by per-checkpoint model refits.
//!
//! The sweep (`serve_throughput/shards/{1,2,4,8}`) holds the workload
//! fixed and scales only the shard count and pool size, so the ratio of
//! `shards/1` to `shards/N` is the engine's scaling factor on the bench
//! machine. The determinism property test (`nurd-serve`) guarantees all
//! four produce bit-identical per-job reports; scaling is therefore free
//! of accuracy caveats. Note the ratio is bounded by the machine's cores
//! — on a single-core container every shard count measures roughly the
//! sequential cost plus scheduling overhead; the ≥1.5× at 4 workers
//! acceptance bar refers to machines with ≥4 cores.
//!
//! A correctness line (macro-F1, flags, events/sec at 1 shard, plus the
//! overload counters, which must be zero for the unbounded config) is
//! printed before timing so a silently broken engine can't post good
//! numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nurd_core::{NurdConfig, NurdPredictor, RefitPolicy, WarmRefitConfig};
use nurd_data::TaskEvent;
use nurd_runtime::ThreadPool;
use nurd_serve::{Engine, EngineConfig, EngineReport, PredictorFactory};
use nurd_trace::{SuiteConfig, TraceStyle};

const JOBS: usize = 10;
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Arrival spread (in stream-clock units) — wide enough that early jobs
/// finalize while late ones are still arriving.
const ARRIVAL_SPREAD: f64 = 600.0;

fn fleet() -> Vec<TaskEvent> {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(JOBS)
        .with_task_range(100, 140)
        .with_checkpoints(12)
        .with_seed(0x5E8E);
    let jobs = nurd_trace::generate_suite(&cfg);
    nurd_trace::staggered_fleet_events(&jobs, 0.9, ARRIVAL_SPREAD, 0x5E8E)
}

fn factory() -> PredictorFactory {
    Box::new(|_spec| {
        Box::new(NurdPredictor::new(NurdConfig::default().with_refit_policy(
            RefitPolicy::Warm(WarmRefitConfig::default()),
        )))
    })
}

fn run_fleet(events: &[TaskEvent], shards: usize, pool: &ThreadPool) -> EngineReport {
    let mut engine = Engine::new(
        EngineConfig {
            shards,
            warmup_fraction: 0.04,
            ..EngineConfig::default()
        },
        factory(),
    );
    engine.push_all(events.iter().cloned());
    engine.finish(pool)
}

fn bench_serve_throughput(c: &mut Criterion) {
    let events = fleet();

    // Correctness guardrail printed next to the timings.
    let reference_pool = ThreadPool::new(1);
    let start = std::time::Instant::now();
    let report = run_fleet(&events, 1, &reference_pool);
    let elapsed = start.elapsed().as_secs_f64();
    let flagged: usize = report
        .jobs
        .iter()
        .map(|r| r.outcome.flagged_at.iter().flatten().count())
        .sum();
    eprintln!(
        "serve_throughput workload: {} jobs (mid-stream admission), {} events, macro-F1 {:.3}, \
         {} tasks flagged, {:.0} events/s at 1 shard, overload {:?}",
        report.jobs.len(),
        report.events,
        report.macro_f1(),
        flagged,
        report.events as f64 / elapsed,
        report.overload,
    );
    assert_eq!(
        report.jobs.len(),
        JOBS,
        "streaming admission lost jobs — bench would be vacuous"
    );
    assert!(
        flagged > 0,
        "engine flagged nothing — bench would be vacuous"
    );
    assert_eq!(
        report.overload.lost_events(),
        0,
        "unbounded config must not lose events"
    );

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for shards in SHARD_SWEEP {
        let pool = ThreadPool::new(shards);
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| run_fleet(&events, shards, &pool));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
