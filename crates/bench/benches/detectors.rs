//! Criterion microbenchmarks: per-checkpoint scoring cost of each outlier
//! detector family on a realistic visible-task set.

use criterion::{criterion_group, criterion_main, Criterion};

use nurd_outlier::{
    Abod, Cblof, Hbos, IsolationForest, Knn, Lof, Mcd, OutlierDetector, PcaDetector, Sos,
};

fn sample_set(n: usize, d: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 131 + j * 37) % 211) as f64 / 211.0 + (i % 7) as f64 * 0.1)
                .collect()
        })
        .collect()
}

fn bench_detectors(c: &mut Criterion) {
    let x = sample_set(250, 15);
    let detectors: Vec<Box<dyn OutlierDetector>> = vec![
        Box::new(Knn::default()),
        Box::new(Lof::default()),
        Box::new(Hbos::default()),
        Box::new(IsolationForest::default()),
        Box::new(PcaDetector::default()),
        Box::new(Cblof::default()),
        Box::new(Abod::default()),
        Box::new(Mcd::default()),
        Box::new(Sos::default()),
    ];
    let mut group = c.benchmark_group("detector_score_250x15");
    group.sample_size(10);
    for det in detectors {
        group.bench_function(det.name(), |b| {
            b.iter(|| det.score_all(&x).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
