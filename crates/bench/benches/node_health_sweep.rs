//! Quarantine economics on a correlated sick-node fleet:
//!
//! * `node_health_sweep/baseline` — the node fleet served with no
//!   mitigator (pricing anchor; also one observation pass's cost).
//! * `node_health_sweep/blind_threshold` — the best node-blind
//!   [`ThresholdClonePolicy`] row: per-task scores only, no node axis.
//! * `node_health_sweep/node_aware` — the full two-pass loop
//!   ([`run_node_fleet`]): observe with the [`HealthAggregator`]
//!   attached, freeze verdicts, quarantine the convicted machine's tasks
//!   (simulated with node-correlated resampling, so a relaunch escapes
//!   the sick machine's latency distribution).
//!
//! Before timing, a pricing table prints mean-JCT reduction and
//! wasted-work fractions, and two gates are asserted rather than
//! eyeballed — the aggregator convicts exactly the planted sick node,
//! and the node-aware run beats the blind row's JCT reduction (same
//! gates as `examples/node_health_smoke.rs`, so a regression fails CI
//! and the bench alike).
//!
//! [`HealthAggregator`]: nurd_health::HealthAggregator
//! [`ThresholdClonePolicy`]: nurd_mitigate::ThresholdClonePolicy
//! [`run_node_fleet`]: nurd_mitigate::run_node_fleet

use criterion::{criterion_group, criterion_main, Criterion};

use nurd_health::NodeVerdict;
use nurd_mitigate::{run_fleet, run_node_fleet, threshold_mitigator, FleetConfig, NodeFleetConfig};
use nurd_sim::MitigationSimConfig;
use nurd_trace::{NodeModel, NodeModelConfig, SuiteConfig, TraceStyle};

const BLIND_THRESHOLD: f64 = 1.0;
const CLONE_BUDGET: usize = 8;

fn node_model() -> NodeModelConfig {
    NodeModelConfig::new(12).with_unhealthy(1, 2)
}

fn suite() -> SuiteConfig {
    SuiteConfig::new(TraceStyle::Google)
        .with_jobs(8)
        .with_task_range(80, 120)
        .with_checkpoints(10)
        .with_seed(0x317)
        .with_node_model(node_model())
}

fn fleet() -> FleetConfig {
    FleetConfig {
        sim: MitigationSimConfig {
            node_resample: true,
            ..MitigationSimConfig::default()
        },
        ..FleetConfig::default()
    }
}

fn node_config() -> NodeFleetConfig {
    NodeFleetConfig {
        fleet: fleet(),
        score_threshold: 1.2,
        watch_threshold: 1.2,
        ..NodeFleetConfig::default()
    }
}

fn bench_node_health_sweep(c: &mut Criterion) {
    let cfg = suite();
    let jobs = nurd_trace::generate_suite(&cfg);

    // Pricing table + gates, unmeasured.
    let aware = run_node_fleet(&jobs, &node_config());
    let blind = run_fleet(
        &jobs,
        Some(threshold_mitigator(BLIND_THRESHOLD, Some(CLONE_BUDGET))),
        &fleet(),
    );
    let planted = NodeModel::build(&node_model(), cfg.straggler_severity).sick_nodes();
    let convicted: Vec<u32> = aware
        .verdicts
        .iter()
        .filter(|(_, v)| **v == NodeVerdict::Quarantine)
        .map(|(n, _)| *n)
        .collect();
    eprintln!(
        "node_health_sweep workload: {} jobs on {} nodes, sick {planted:?}, convicted {convicted:?}",
        jobs.len(),
        node_model().nodes,
    );
    eprintln!("policy            jct-reduction%   wasted-work%   quarantines");
    eprintln!(
        "{:<18}{:>12.2}{:>14.2}   {}",
        "blind-threshold",
        blind.summary.mean_jct_reduction_percent,
        blind.summary.wasted_fraction * 100.0,
        0,
    );
    eprintln!(
        "{:<18}{:>12.2}{:>14.2}   {}",
        "node-aware",
        aware.mitigated.summary.mean_jct_reduction_percent,
        aware.mitigated.summary.wasted_fraction * 100.0,
        aware.mitigated.summary.quarantines,
    );
    assert_eq!(convicted, planted, "aggregator convicted ≠ planted");
    assert!(
        aware.mitigated.summary.mean_jct_reduction_percent
            > blind.summary.mean_jct_reduction_percent,
        "node-aware did not beat the blind threshold"
    );

    let mut group = c.benchmark_group("node_health_sweep");
    group.sample_size(10);
    group.bench_function("baseline", |b| b.iter(|| run_fleet(&jobs, None, &fleet())));
    group.bench_function("blind_threshold", |b| {
        b.iter(|| {
            run_fleet(
                &jobs,
                Some(threshold_mitigator(BLIND_THRESHOLD, Some(CLONE_BUDGET))),
                &fleet(),
            )
        });
    });
    group.bench_function("node_aware", |b| {
        b.iter(|| run_node_fleet(&jobs, &node_config()));
    });
    group.finish();
}

criterion_group!(benches, bench_node_health_sweep);
criterion_main!(benches);
