//! Criterion benchmarks: trace generation and scheduler simulation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nurd_data::{Checkpoint, OnlinePredictor};
use nurd_sim::{replay_job, simulate_jct, ReplayConfig, SchedulerConfig};
use nurd_trace::{SuiteConfig, TraceStyle};

struct Never;
impl OnlinePredictor for Never {
    fn name(&self) -> &str {
        "NEVER"
    }
    fn predict(&mut self, _c: &Checkpoint<'_>) -> Vec<usize> {
        Vec::new()
    }
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_job");
    for &tasks in &[100usize, 400] {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(1)
            .with_task_range(tasks, tasks)
            .with_checkpoints(25)
            .with_seed(7);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, _| {
            b.iter(|| nurd_trace::generate_job(&cfg, 0));
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(1)
        .with_task_range(300, 300)
        .with_checkpoints(25)
        .with_seed(9);
    let job = nurd_trace::generate_job(&cfg, 0);
    let outcome = replay_job(&job, &mut Never, &ReplayConfig::default());

    let mut group = c.benchmark_group("simulate_jct_300_tasks");
    for &machines in &[50usize, 300] {
        group.bench_with_input(BenchmarkId::from_parameter(machines), &machines, |b, &m| {
            let scheduler = SchedulerConfig {
                machines: Some(m),
                ..SchedulerConfig::default()
            };
            b.iter(|| simulate_jct(&job, &outcome, &scheduler));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_scheduler);
criterion_main!(benches);
