//! Criterion A/B: warm-start vs cold refits across the checkpoints of one
//! 200-task job — the headline number of the warm-refit subsystem.
//!
//! Each benchmark replays the *refit sequence* of a full job: at every
//! checkpoint the latency head is retrained over the finished-so-far set,
//! exactly as `NurdPredictor` (and GBTR) do during an online replay.
//!
//! * `warm_vs_cold/cold` — the paper protocol: a from-scratch
//!   [`GradientBoosting::fit_view`] per checkpoint (fresh quantization,
//!   fresh ensemble).
//! * `warm_vs_cold/warm` — the [`WarmRefitState`] path under the default
//!   [`RefitPolicy::Warm`]: append-only rebinning plus a few rounds
//!   boosted onto the previous ensemble, with drift-triggered cold
//!   fallbacks.
//!
//! Alongside timing, the harness prints the relative out-of-sample MSE
//! gap between the two pipelines (predicting still-running tasks' true
//! latencies at each checkpoint); the acceptance bar is a ≥ 2× refit
//! speedup at ±1% MSE.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nurd_core::{NurdConfig, RefitPolicy, WarmRefitConfig, WarmRefitState};
use nurd_data::{Checkpoint, JobTrace};
use nurd_linalg::MatrixView;
use nurd_ml::{GradientBoosting, SquaredLoss};
use nurd_trace::{SuiteConfig, TraceStyle};

fn bench_job() -> JobTrace {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(1)
        .with_task_range(200, 200)
        .with_checkpoints(20)
        .with_seed(0xBE7C);
    nurd_trace::generate_job(&cfg, 0)
}

/// One full cold refit sequence; returns summed squared error over
/// running-task latency predictions (consumed so the work can't be
/// optimized away).
fn replay_cold(job: &JobTrace, checkpoints: &[Checkpoint<'_>]) -> f64 {
    let gbt = NurdConfig::default().gbt;
    let mut se = 0.0;
    for ckpt in checkpoints {
        if ckpt.finished.len() < 2 || ckpt.running.is_empty() {
            continue;
        }
        let x_fin = ckpt.finished_feature_rows();
        let y_fin = ckpt.finished_latencies();
        let model =
            GradientBoosting::fit_view(MatrixView::RowSlices(&x_fin), &y_fin, SquaredLoss, &gbt)
                .expect("bench job yields fits");
        for task in &ckpt.running {
            let err = model.predict(task.features) - job.tasks()[task.id].latency();
            se += err * err;
        }
    }
    se
}

/// One full warm refit sequence under `policy` (state is rebuilt each
/// iteration — the cross-checkpoint reuse being measured happens *within*
/// a sequence, as it does within a job).
fn replay_warm(job: &JobTrace, checkpoints: &[Checkpoint<'_>], policy: &RefitPolicy) -> f64 {
    let gbt = NurdConfig::default().gbt;
    let mut state = WarmRefitState::new();
    let mut se = 0.0;
    for ckpt in checkpoints {
        if ckpt.finished.len() < 2 || ckpt.running.is_empty() {
            continue;
        }
        state.absorb(ckpt);
        state.refit(&gbt, policy).expect("bench job yields fits");
        let model = state.model().expect("refit succeeded");
        for task in &ckpt.running {
            let err = model.predict(task.features) - job.tasks()[task.id].latency();
            se += err * err;
        }
    }
    se
}

fn bench_warm_vs_cold(c: &mut Criterion) {
    let job = bench_job();
    let checkpoints: Vec<Checkpoint<'_>> = (0..job.checkpoint_count())
        .map(|k| job.checkpoint_at(k))
        .collect();
    let policy = RefitPolicy::Warm(WarmRefitConfig::default());

    // Accuracy guardrail printed next to the timings: the speedup only
    // counts if prediction quality holds.
    let se_cold = replay_cold(&job, &checkpoints);
    let se_warm = replay_warm(&job, &checkpoints, &policy);
    eprintln!(
        "warm_vs_cold accuracy: out-of-sample MSE gap {:+.2}% (warm vs cold)",
        100.0 * (se_warm - se_cold) / se_cold
    );

    let mut group = c.benchmark_group("warm_vs_cold");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("cold", "200tasks"), |b| {
        b.iter(|| replay_cold(&job, &checkpoints));
    });
    group.bench_function(BenchmarkId::new("warm", "200tasks"), |b| {
        b.iter(|| replay_warm(&job, &checkpoints, &policy));
    });
    group.finish();
}

criterion_group!(benches, bench_warm_vs_cold);
criterion_main!(benches);
