//! Experiment harness for the NURD reproduction.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the index); this library holds the shared
//! machinery: a tiny CLI parser, suite construction, and parallel
//! method-over-jobs evaluation.
//!
//! Criterion microbenchmarks live under `benches/` (ML primitives,
//! detectors, end-to-end replays, and the `warm_vs_cold` refit A/B); the
//! recorded baselines and the regeneration workflow for `BENCH_ml.json`
//! are documented in this crate's `README.md`.

use std::collections::BTreeMap;
use std::sync::Mutex;

use nurd_baselines::MethodSpec;
use nurd_data::JobTrace;
use nurd_sim::{replay_job, MethodSummary, ReplayConfig, ReplayOutcome};
use nurd_trace::{SuiteConfig, TraceStyle};

/// Harness-wide options parsed from the command line.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Which trace style to imitate.
    pub style: TraceStyle,
    /// Number of jobs in the evaluation suite.
    pub jobs: usize,
    /// Task-count range per job.
    pub tasks: (usize, usize),
    /// Checkpoints per job.
    pub checkpoints: usize,
    /// Suite seed.
    pub seed: u64,
    /// Optional method-name filter (comma-separated `--methods`).
    pub methods: Option<Vec<String>>,
    /// Worker threads for per-job parallelism.
    pub threads: usize,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            style: TraceStyle::Google,
            jobs: 40,
            tasks: (120, 300),
            checkpoints: 24,
            seed: 0x6001,
            methods: None,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl HarnessOptions {
    /// Parses `--trace google|alibaba`, `--jobs N`, `--tasks A:B`,
    /// `--checkpoints N`, `--seed N`, `--methods A,B,C`, `--threads N`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (these are
    /// developer-facing binaries).
    #[must_use]
    pub fn from_args() -> Self {
        let mut opts = HarnessOptions::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("flag {flag} needs a value"));
            match flag {
                "--trace" => {
                    opts.style = match value.as_str() {
                        "google" => TraceStyle::Google,
                        "alibaba" => TraceStyle::Alibaba,
                        other => panic!("unknown trace style {other} (google|alibaba)"),
                    };
                }
                "--jobs" => opts.jobs = value.parse().expect("--jobs takes an integer"),
                "--tasks" => {
                    let (a, b) = value
                        .split_once(':')
                        .expect("--tasks takes a range like 120:300");
                    opts.tasks = (
                        a.parse().expect("task range lower bound"),
                        b.parse().expect("task range upper bound"),
                    );
                }
                "--checkpoints" => {
                    opts.checkpoints = value.parse().expect("--checkpoints takes an integer");
                }
                "--seed" => opts.seed = value.parse().expect("--seed takes an integer"),
                "--methods" => {
                    opts.methods = Some(value.split(',').map(|s| s.trim().to_string()).collect());
                }
                "--threads" => opts.threads = value.parse().expect("--threads takes an integer"),
                other => panic!("unknown flag {other}"),
            }
            i += 2;
        }
        opts
    }

    /// Human-readable trace label for output headers.
    #[must_use]
    pub fn style_label(&self) -> &'static str {
        match self.style {
            TraceStyle::Google => "Google",
            TraceStyle::Alibaba => "Alibaba",
        }
    }

    /// Builds the evaluation suite for these options.
    #[must_use]
    pub fn build_suite(&self) -> Vec<JobTrace> {
        let cfg = SuiteConfig::new(self.style)
            .with_jobs(self.jobs)
            .with_task_range(self.tasks.0, self.tasks.1)
            .with_checkpoints(self.checkpoints)
            .with_seed(self.seed);
        nurd_trace::generate_suite(&cfg)
    }

    /// Applies the `--methods` filter to the full registry, with NURD's α
    /// tuned per trace style (the paper tunes per dataset, §6).
    #[must_use]
    pub fn selected_methods(&self) -> Vec<MethodSpec> {
        let alpha = match self.style {
            TraceStyle::Google => 0.20,
            TraceStyle::Alibaba => 0.40,
        };
        let all = nurd_baselines::registry_with_nurd_alpha(alpha);
        match &self.methods {
            None => all,
            Some(filter) => all
                .into_iter()
                .filter(|m| filter.iter().any(|f| f.eq_ignore_ascii_case(m.name)))
                .collect(),
        }
    }
}

/// One method's evaluation across a suite.
#[derive(Debug)]
pub struct MethodResult {
    /// Method name (Table 3 row).
    pub name: &'static str,
    /// Table 3 family label.
    pub family: &'static str,
    /// Macro-averaged accuracy metrics.
    pub summary: MethodSummary,
    /// Per-job replay outcomes, aligned with the suite's job order.
    pub outcomes: Vec<ReplayOutcome>,
}

/// Replays every job against one method, in parallel over jobs.
///
/// # Panics
///
/// Panics if a worker thread panics.
#[must_use]
pub fn evaluate_method(
    spec: &MethodSpec,
    jobs: &[JobTrace],
    replay: &ReplayConfig,
    threads: usize,
) -> MethodResult {
    let results: Mutex<BTreeMap<usize, ReplayOutcome>> = Mutex::new(BTreeMap::new());
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let workers = threads.clamp(1, jobs.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= jobs.len() {
                    break;
                }
                let mut predictor = spec.build();
                let outcome = replay_job(&jobs[idx], predictor.as_mut(), replay);
                results
                    .lock()
                    .expect("evaluation worker panicked")
                    .insert(idx, outcome);
            });
        }
    });

    let outcomes: Vec<ReplayOutcome> = results
        .into_inner()
        .expect("evaluation worker panicked")
        .into_values()
        .collect();
    let confusions: Vec<_> = outcomes.iter().map(|o| o.confusion).collect();
    MethodResult {
        name: spec.name,
        family: spec.family.label(),
        summary: MethodSummary::from_confusions(&confusions),
        outcomes,
    }
}

/// Evaluates every selected method over the suite.
#[must_use]
pub fn evaluate_all(
    methods: &[MethodSpec],
    jobs: &[JobTrace],
    replay: &ReplayConfig,
    threads: usize,
) -> Vec<MethodResult> {
    methods
        .iter()
        .map(|spec| {
            let result = evaluate_method(spec, jobs, replay, threads);
            eprintln!(
                "  {:8} tpr={:.2} fpr={:.2} f1={:.3}",
                result.name, result.summary.tpr, result.summary.fpr, result.summary.f1
            );
            result
        })
        .collect()
}

/// Renders a simple fixed-width histogram (Figure 1 style) of normalized
/// latencies.
#[must_use]
pub fn ascii_histogram(latencies: &[f64], bins: usize, width: usize) -> String {
    let max = latencies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut counts = vec![0usize; bins];
    for &l in latencies {
        let bin = (((l / max) * bins as f64) as usize).min(bins - 1);
        counts[bin] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (b, &c) in counts.iter().enumerate() {
        let lo = b as f64 / bins as f64;
        let bar = "#".repeat(c * width / peak);
        out.push_str(&format!("{lo:5.2} | {bar} {c}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_build_a_suite() {
        let opts = HarnessOptions {
            jobs: 2,
            tasks: (30, 40),
            checkpoints: 6,
            ..HarnessOptions::default()
        };
        let jobs = opts.build_suite();
        assert_eq!(jobs.len(), 2);
        assert_eq!(opts.style_label(), "Google");
    }

    #[test]
    fn method_filter_selects_subset() {
        let opts = HarnessOptions {
            methods: Some(vec!["nurd".into(), "GBTR".into()]),
            ..HarnessOptions::default()
        };
        let methods = opts.selected_methods();
        assert_eq!(methods.len(), 2);
    }

    #[test]
    fn evaluate_method_covers_every_job() {
        let opts = HarnessOptions {
            jobs: 3,
            tasks: (40, 60),
            checkpoints: 8,
            ..HarnessOptions::default()
        };
        let jobs = opts.build_suite();
        let methods = nurd_baselines::registry();
        let gbtr = methods.iter().find(|m| m.name == "GBTR").unwrap();
        let result = evaluate_method(gbtr, &jobs, &ReplayConfig::default(), 2);
        assert_eq!(result.outcomes.len(), 3);
        assert_eq!(result.summary.jobs, 3);
    }

    #[test]
    fn histogram_renders_all_bins() {
        let lat = vec![1.0, 2.0, 3.0, 10.0];
        let h = ascii_histogram(&lat, 5, 20);
        assert_eq!(h.lines().count(), 5);
        assert!(h.contains('#'));
    }
}
