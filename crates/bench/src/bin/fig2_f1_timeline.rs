//! Figures 2 and 3: F1 of the cumulative flagged set at ten normalized
//! time checkpoints (`--trace google` = Figure 2, `--trace alibaba` =
//! Figure 3).

use nurd_bench::{evaluate_all, HarnessOptions};
use nurd_sim::ReplayConfig;

fn main() {
    let opts = HarnessOptions::from_args();
    eprintln!("[fig2/3] {} suite: {} jobs", opts.style_label(), opts.jobs);
    let jobs = opts.build_suite();
    let methods = opts.selected_methods();
    let results = evaluate_all(&methods, &jobs, &ReplayConfig::default(), opts.threads);

    println!();
    println!(
        "Figure {} ({} trace): F1 at normalized time checkpoints (averaged over {} jobs).",
        if opts.style_label() == "Google" { 2 } else { 3 },
        opts.style_label(),
        jobs.len()
    );
    print!("{:8}", "Method");
    for p in 1..=10 {
        print!(" {:>5.1}", p as f64 / 10.0);
    }
    println!();
    println!("{:-^69}", "");
    for r in &results {
        // Average each method's decile series over jobs.
        let mut series = [0.0f64; 10];
        for outcome in &r.outcomes {
            for (s, v) in series.iter_mut().zip(outcome.f1_at_normalized_times(10)) {
                *s += v;
            }
        }
        for s in &mut series {
            *s /= r.outcomes.len() as f64;
        }
        print!("{:8}", r.name);
        for s in series {
            print!(" {s:5.2}");
        }
        println!();
    }
}
