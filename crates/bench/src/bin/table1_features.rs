//! Tables 1 and 2 of the paper: the feature schemas of the two traces.

use nurd_trace::{ALIBABA_FEATURES, GOOGLE_FEATURES};

fn main() {
    println!("Table 1. Task features used in the Google Traces.");
    println!("{:-^60}", "");
    println!("{:10} Description", "Feature");
    println!("{:-^60}", "");
    for (name, description) in GOOGLE_FEATURES {
        println!("{name:10} {description}");
    }
    println!();
    println!("Table 2. Instance features used in the Alibaba Traces.");
    println!("{:-^60}", "");
    println!("{:10} Description", "Feature");
    println!("{:-^60}", "");
    for (name, description) in ALIBABA_FEATURES {
        println!("{name:10} {description}");
    }
}
