//! Ablation: the initial-training fraction (the paper waits for 4% of
//! tasks to finish before predicting).

use nurd_core::{NurdConfig, NurdPredictor};
use nurd_sim::{replay_job, MethodSummary, ReplayConfig};
use nurd_trace::{SuiteConfig, TraceStyle};

fn main() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(16)
        .with_task_range(120, 250)
        .with_checkpoints(25)
        .with_seed(0xAB1C);
    let jobs = nurd_trace::generate_suite(&cfg);

    println!("Ablation: warmup fraction (16 mixed jobs, Google style).");
    println!("{:>8} {:>6} {:>6} {:>6}", "warmup", "TPR", "FPR", "F1");
    for warmup in [0.01, 0.04, 0.1, 0.2, 0.4] {
        let replay = ReplayConfig {
            warmup_fraction: warmup,
            ..ReplayConfig::default()
        };
        let confusions: Vec<_> = jobs
            .iter()
            .map(|job| {
                let mut p = NurdPredictor::new(NurdConfig::default());
                replay_job(job, &mut p, &replay).confusion
            })
            .collect();
        let s = MethodSummary::from_confusions(&confusions);
        println!("{warmup:8.2} {:6.2} {:6.2} {:6.3}", s.tpr, s.fpr, s.f1);
    }
}
