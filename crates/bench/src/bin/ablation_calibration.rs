//! Ablation: the calibration term δ. Sweeps α and compares NURD against
//! NURD-NC per latency family — the design-choice study behind §4.2.

use nurd_core::{NurdConfig, NurdPredictor};
use nurd_sim::{replay_job, MethodSummary, ReplayConfig};
use nurd_trace::{SuiteConfig, TraceStyle};

fn evaluate(jobs: &[nurd_data::JobTrace], config: &NurdConfig) -> MethodSummary {
    let confusions: Vec<_> = jobs
        .iter()
        .map(|job| {
            let mut p = NurdPredictor::new(config.clone());
            replay_job(job, &mut p, &ReplayConfig::default()).confusion
        })
        .collect();
    MethodSummary::from_confusions(&confusions)
}

fn main() {
    println!("Ablation: calibration term (per latency family, 12 jobs each).");
    for (label, fraction) in [("long-tail", 1.0), ("close-tail", 0.0)] {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(12)
            .with_task_range(120, 250)
            .with_checkpoints(20)
            .with_long_tail_fraction(fraction)
            .with_seed(0xAB1A);
        let jobs = nurd_trace::generate_suite(&cfg);

        println!("\n{label} jobs:");
        println!("{:14} {:>6} {:>6} {:>6}", "variant", "TPR", "FPR", "F1");
        let nc = evaluate(&jobs, &NurdConfig::without_calibration());
        println!(
            "{:14} {:6.2} {:6.2} {:6.3}",
            "NURD-NC", nc.tpr, nc.fpr, nc.f1
        );
        for alpha in [0.08, 0.12, 0.2, 0.35, 0.5] {
            let s = evaluate(&jobs, &NurdConfig::default().with_alpha(alpha));
            println!(
                "{:14} {:6.2} {:6.2} {:6.3}",
                format!("NURD α={alpha}"),
                s.tpr,
                s.fpr,
                s.f1
            );
        }
    }
}
