//! Table 3: TPR/FPR/FNR/F1 averaged over all jobs, for every method.
//!
//! Usage: `table3_accuracy [--trace google|alibaba] [--jobs N]
//! [--tasks A:B] [--checkpoints N] [--methods CSV] [--seed N]`.
//! With no `--trace`, both traces are evaluated (the full Table 3).

use nurd_bench::{evaluate_all, HarnessOptions};
use nurd_sim::ReplayConfig;
use nurd_trace::TraceStyle;

fn run(opts: &HarnessOptions) {
    eprintln!(
        "[table3] {} suite: {} jobs, tasks {}..{}, {} checkpoints",
        opts.style_label(),
        opts.jobs,
        opts.tasks.0,
        opts.tasks.1,
        opts.checkpoints
    );
    let jobs = opts.build_suite();
    let methods = opts.selected_methods();
    let results = evaluate_all(&methods, &jobs, &ReplayConfig::default(), opts.threads);

    println!();
    println!(
        "Table 3 ({} trace, {} jobs). Higher is better for TPR and F1; lower for FPR and FNR.",
        opts.style_label(),
        jobs.len()
    );
    println!("{:-^78}", "");
    println!(
        "{:32} {:8} {:>6} {:>6} {:>6} {:>6}",
        "Family", "Method", "TPR", "FPR", "FNR", "F1"
    );
    println!("{:-^78}", "");
    let best_f1 = results
        .iter()
        .map(|r| r.summary.f1)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut last_family = "";
    for r in &results {
        let family = if r.family == last_family {
            ""
        } else {
            r.family
        };
        last_family = r.family;
        let marker = if (r.summary.f1 - best_f1).abs() < 1e-12 {
            " *"
        } else {
            ""
        };
        println!(
            "{:32} {:8} {:6.2} {:6.2} {:6.2} {:6.2}{marker}",
            family, r.name, r.summary.tpr, r.summary.fpr, r.summary.fnr, r.summary.f1
        );
    }
    println!("{:-^78}", "");
    println!("(* best F1)");
    println!();
}

fn main() {
    let opts = HarnessOptions::from_args();
    let explicit_trace = std::env::args().any(|a| a == "--trace");
    if explicit_trace {
        run(&opts);
    } else {
        for style in [TraceStyle::Google, TraceStyle::Alibaba] {
            let mut o = opts.clone();
            o.style = style;
            run(&o);
        }
    }
}
