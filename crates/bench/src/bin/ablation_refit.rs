//! Ablation: online model updates (§4.3). The paper refits `h_t` and `g_t`
//! at every checkpoint; this sweep shows what staleness costs.

use nurd_core::{NurdConfig, NurdPredictor};
use nurd_sim::{replay_job, MethodSummary, ReplayConfig};
use nurd_trace::{SuiteConfig, TraceStyle};

fn main() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(16)
        .with_task_range(120, 250)
        .with_checkpoints(25)
        .with_seed(0xAB1D);
    let jobs = nurd_trace::generate_suite(&cfg);

    println!("Ablation: refit interval (16 mixed jobs, Google style).");
    println!(
        "{:>12} {:>6} {:>6} {:>6}",
        "refit every", "TPR", "FPR", "F1"
    );
    for refit in [1usize, 2, 4, 8, 1000] {
        let confusions: Vec<_> = jobs
            .iter()
            .map(|job| {
                let config = NurdConfig {
                    refit_every: refit,
                    ..NurdConfig::default()
                };
                let mut p = NurdPredictor::new(config);
                replay_job(job, &mut p, &ReplayConfig::default()).confusion
            })
            .collect();
        let s = MethodSummary::from_confusions(&confusions);
        let label = if refit == 1000 {
            "never".to_string()
        } else {
            refit.to_string()
        };
        println!("{label:>12} {:6.2} {:6.2} {:6.3}", s.tpr, s.fpr, s.f1);
    }
}
