//! Ablation: the minimum-weight floor ε (caps the dilation at 1/ε).

use nurd_core::{NurdConfig, NurdPredictor};
use nurd_sim::{replay_job, MethodSummary, ReplayConfig};
use nurd_trace::{SuiteConfig, TraceStyle};

fn main() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(16)
        .with_task_range(120, 250)
        .with_checkpoints(20)
        .with_seed(0xAB1B);
    let jobs = nurd_trace::generate_suite(&cfg);

    println!("Ablation: epsilon floor (16 mixed jobs, Google style).");
    println!("{:>8} {:>6} {:>6} {:>6}", "epsilon", "TPR", "FPR", "F1");
    for epsilon in [0.01, 0.05, 0.1, 0.2, 0.4] {
        let confusions: Vec<_> = jobs
            .iter()
            .map(|job| {
                let mut p = NurdPredictor::new(NurdConfig::default().with_epsilon(epsilon));
                replay_job(job, &mut p, &ReplayConfig::default()).confusion
            })
            .collect();
        let s = MethodSummary::from_confusions(&confusions);
        println!("{epsilon:8.2} {:6.2} {:6.2} {:6.3}", s.tpr, s.fpr, s.f1);
    }
}
