//! Figure 1: normalized latency histograms for one long-tailed and one
//! close-tailed job, with the p90 threshold and the half-maximum marked.

use nurd_trace::{SuiteConfig, TraceStyle};

fn describe(job: &nurd_data::JobTrace, label: &str) {
    let max = job.max_latency();
    let threshold = job.straggler_threshold(0.9);
    let normalized: Vec<f64> = job.latencies().iter().map(|l| l / max).collect();
    println!("Job {} ({label})", job.job_id());
    println!(
        "  tasks={} threshold(p90)={:.3} (normalized), half-max=0.5 → {}",
        job.task_count(),
        threshold / max,
        if threshold < 0.5 * max {
            "threshold BELOW half max (Figure 1 left)"
        } else {
            "threshold ABOVE half max (Figure 1 right)"
        }
    );
    let scaled: Vec<f64> = normalized.iter().map(|v| v * max).collect();
    print!("{}", nurd_bench::ascii_histogram(&scaled, 25, 50));
    println!();
}

fn main() {
    // One suite per family so both Figure 1 shapes appear.
    let long = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(1)
        .with_task_range(300, 400)
        .with_checkpoints(20)
        .with_long_tail_fraction(1.0)
        .with_seed(0xF161);
    let close = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(1)
        .with_task_range(300, 400)
        .with_checkpoints(20)
        .with_long_tail_fraction(0.0)
        .with_seed(0xF161);

    println!("Figure 1. Latency distributions for two generated jobs.\n");
    describe(&nurd_trace::generate_job(&long, 0), "long-tailed family");
    describe(&nurd_trace::generate_job(&close, 1), "close-tailed family");
}
