//! Ablation: recall by straggler cause — which kinds of stragglers does
//! each method actually catch? Uses the generator's ground-truth task
//! plans (never visible to predictors).

use std::collections::HashMap;

use nurd_sim::{replay_job, ReplayConfig};
use nurd_trace::{StragglerCause, SuiteConfig, TraceStyle};

fn cause_label(cause: StragglerCause) -> &'static str {
    match cause {
        StragglerCause::Interference => "interference",
        StragglerCause::DataSkew => "data-skew",
        StragglerCause::Eviction => "eviction",
        StragglerCause::Opaque => "opaque",
    }
}

fn main() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(16)
        .with_task_range(120, 250)
        .with_seed(0xAB1E);
    let detailed: Vec<_> = (0..cfg.jobs as u64)
        .map(|id| nurd_trace::generate_job_detailed(&cfg, id))
        .collect();

    println!("Ablation: straggler recall by cause (16 mixed Google-style jobs).");
    println!(
        "{:10} {:>13} {:>10} {:>9} {:>7} {:>8}",
        "method", "interference", "data-skew", "eviction", "opaque", "overall"
    );

    let picks = ["GBTR", "KNN", "Grabit", "Wrangler", "NURD-NC", "NURD"];
    for spec in nurd_baselines::registry() {
        if !picks.contains(&spec.name) {
            continue;
        }
        let mut caught: HashMap<&str, (usize, usize)> = HashMap::new();
        let mut total = (0usize, 0usize);
        for (job, plans) in &detailed {
            let mut p = spec.build();
            let out = replay_job(job, p.as_mut(), &ReplayConfig::default());
            let threshold = out.threshold;
            for (task, plan) in job.tasks().iter().zip(plans) {
                if task.latency() < threshold {
                    continue; // not a true straggler
                }
                let label = plan.cause.map_or("opaque", cause_label);
                let entry = caught.entry(label).or_insert((0, 0));
                entry.1 += 1;
                total.1 += 1;
                if out.flagged_at[task.id()].is_some() {
                    entry.0 += 1;
                    total.0 += 1;
                }
            }
        }
        let pct = |key: &str| -> f64 {
            caught.get(key).map_or(0.0, |&(c, n)| {
                if n == 0 {
                    0.0
                } else {
                    100.0 * c as f64 / n as f64
                }
            })
        };
        println!(
            "{:10} {:>12.0}% {:>9.0}% {:>8.0}% {:>6.0}% {:>7.0}%",
            spec.name,
            pct("interference"),
            pct("data-skew"),
            pct("eviction"),
            pct("opaque"),
            if total.1 == 0 {
                0.0
            } else {
                100.0 * total.0 as f64 / total.1 as f64
            }
        );
    }
    println!(
        "\nOpaque stragglers carry no feature signature: any recall there comes\n\
         from latency-space reasoning (NURD's dilation), not features."
    );
}
