//! Figures 8 and 9: JCT reduction averaged over the Figure 6/7 machine
//! sweep; `--trace` selects the figure.

use nurd_bench::{evaluate_all, HarnessOptions};
use nurd_sim::{simulate_jct, ReplayConfig, SchedulerConfig};

const MACHINE_COUNTS: [usize; 10] = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];

fn main() {
    let opts = HarnessOptions::from_args();
    eprintln!(
        "[fig8/9] {} suite: {} jobs, averaged machine sweep",
        opts.style_label(),
        opts.jobs
    );
    let jobs = opts.build_suite();
    let methods = opts.selected_methods();
    let results = evaluate_all(&methods, &jobs, &ReplayConfig::default(), opts.threads);

    println!();
    println!(
        "Figure {} ({} trace): JCT reduction averaged over {} machine counts ({} jobs).",
        if opts.style_label() == "Google" { 8 } else { 9 },
        opts.style_label(),
        MACHINE_COUNTS.len(),
        jobs.len()
    );
    println!("{:8} {:>12}", "Method", "Reduction(%)");
    println!("{:-^22}", "");
    for r in &results {
        let mut total = 0.0;
        for m in MACHINE_COUNTS {
            let scheduler = SchedulerConfig {
                machines: Some(m),
                ..SchedulerConfig::default()
            };
            for (job, outcome) in jobs.iter().zip(&r.outcomes) {
                total += simulate_jct(job, outcome, &scheduler).reduction_percent();
            }
        }
        println!(
            "{:8} {:12.1}",
            r.name,
            total / (jobs.len() * MACHINE_COUNTS.len()) as f64
        );
    }
}
