//! Extension experiment (paper §8 future work): cross-job transfer
//! learning. A donor latency model distilled from one completed job
//! warm-starts NURD's latency head on fresh jobs; the question is whether
//! it helps in the early checkpoints, where the scratch model has almost
//! no training data.

use nurd_core::{DonorModel, NurdConfig, NurdPredictor, TransferNurdPredictor};
use nurd_sim::{replay_job, ReplayConfig, ReplayOutcome};
use nurd_trace::{SuiteConfig, TraceStyle};

fn decile_series(outcomes: &[ReplayOutcome]) -> [f64; 10] {
    let mut series = [0.0f64; 10];
    for out in outcomes {
        for (s, v) in series.iter_mut().zip(out.f1_at_normalized_times(10)) {
            *s += v;
        }
    }
    for s in &mut series {
        *s /= outcomes.len() as f64;
    }
    series
}

fn main() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(13)
        .with_task_range(120, 220)
        .with_seed(0xE87);
    let jobs = nurd_trace::generate_suite(&cfg);
    // Job 0 is the completed donor; jobs 1.. are the online targets.
    let donor = DonorModel::from_job(&jobs[0], &NurdConfig::default()).expect("donor job distills");
    let targets = &jobs[1..];

    let replay = ReplayConfig::default();
    let mut scratch = Vec::new();
    let mut transfer = Vec::new();
    for job in targets {
        let mut a = NurdPredictor::new(NurdConfig::default());
        scratch.push(replay_job(job, &mut a, &replay));
        let mut b = TransferNurdPredictor::new(NurdConfig::default(), donor.clone());
        transfer.push(replay_job(job, &mut b, &replay));
    }

    println!(
        "Extension: cross-job transfer learning ({} target jobs, 1 donor job).",
        targets.len()
    );
    println!("\nmean F1 at normalized-time deciles:");
    print!("{:10}", "variant");
    for p in 1..=10 {
        print!(" {:>5.1}", p as f64 / 10.0);
    }
    println!();
    for (name, outcomes) in [("NURD", &scratch), ("NURD-TL", &transfer)] {
        print!("{name:10}");
        for v in decile_series(outcomes) {
            print!(" {v:5.2}");
        }
        println!();
    }

    let f1 = |outs: &[ReplayOutcome]| -> f64 {
        outs.iter().map(|o| o.confusion.f1()).sum::<f64>() / outs.len() as f64
    };
    println!(
        "\nend-of-job F1: NURD {:.3} vs NURD-TL {:.3}",
        f1(&scratch),
        f1(&transfer)
    );
    println!(
        "(the transfer head shares NURD's propensity/calibration; only the\n\
         latency model is warm-started, so gains concentrate early)"
    );
}
