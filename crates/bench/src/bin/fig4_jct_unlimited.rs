//! Figures 4 and 5: average job-completion-time reduction with unlimited
//! machines (Algorithm 2); `--trace` selects the figure.

use nurd_bench::{evaluate_all, HarnessOptions};
use nurd_sim::{simulate_jct, ReplayConfig, SchedulerConfig};

fn main() {
    let opts = HarnessOptions::from_args();
    eprintln!(
        "[fig4/5] {} suite: {} jobs, unlimited machines",
        opts.style_label(),
        opts.jobs
    );
    let jobs = opts.build_suite();
    let methods = opts.selected_methods();
    let results = evaluate_all(&methods, &jobs, &ReplayConfig::default(), opts.threads);

    println!();
    println!(
        "Figure {} ({} trace): reduction in job completion time, unlimited machines ({} jobs).",
        if opts.style_label() == "Google" { 4 } else { 5 },
        opts.style_label(),
        jobs.len()
    );
    println!("{:8} {:>12}", "Method", "Reduction(%)");
    println!("{:-^22}", "");
    let scheduler = SchedulerConfig::default();
    for r in &results {
        let mut total = 0.0;
        for (job, outcome) in jobs.iter().zip(&r.outcomes) {
            total += simulate_jct(job, outcome, &scheduler).reduction_percent();
        }
        println!("{:8} {:12.1}", r.name, total / jobs.len() as f64);
    }
}
