//! Ablation: straggler-threshold robustness. The paper (§6) tests p70–p95
//! and reports that p90 is representative and NURD is robust across the
//! range; this sweep reproduces that claim.

use nurd_core::{NurdConfig, NurdPredictor};
use nurd_sim::{replay_job, MethodSummary, ReplayConfig};
use nurd_trace::{SuiteConfig, TraceStyle};

fn main() {
    let cfg = SuiteConfig::new(TraceStyle::Google)
        .with_jobs(16)
        .with_task_range(120, 250)
        .with_seed(0xAB1F);
    let jobs = nurd_trace::generate_suite(&cfg);

    println!("Ablation: latency-threshold quantile (16 mixed Google-style jobs).");
    println!("{:>9} {:>6} {:>6} {:>6}", "quantile", "TPR", "FPR", "F1");
    for quantile in [0.70, 0.75, 0.80, 0.85, 0.90, 0.95] {
        let replay = ReplayConfig {
            quantile,
            ..ReplayConfig::default()
        };
        let confusions: Vec<_> = jobs
            .iter()
            .map(|job| {
                let mut p = NurdPredictor::new(NurdConfig::default());
                replay_job(job, &mut p, &replay).confusion
            })
            .collect();
        let s = MethodSummary::from_confusions(&confusions);
        println!("{quantile:9.2} {:6.2} {:6.2} {:6.3}", s.tpr, s.fpr, s.f1);
    }
    println!("\nThe paper reports p90 as representative of p70-p95; the F1 level\nshould stay in a narrow band across the sweep.");
}
