//! Figures 6 and 7: job-completion-time reduction as a function of the
//! machine-pool size (Algorithm 3); `--trace` selects the figure.

use nurd_bench::{evaluate_all, HarnessOptions};
use nurd_sim::{simulate_jct, ReplayConfig, SchedulerConfig};

/// The paper sweeps 100..=1000 machines in steps of 100.
const MACHINE_COUNTS: [usize; 10] = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];

fn main() {
    let opts = HarnessOptions::from_args();
    eprintln!(
        "[fig6/7] {} suite: {} jobs, machine sweep",
        opts.style_label(),
        opts.jobs
    );
    let jobs = opts.build_suite();
    let methods = opts.selected_methods();
    let results = evaluate_all(&methods, &jobs, &ReplayConfig::default(), opts.threads);

    println!();
    println!(
        "Figure {} ({} trace): JCT reduction vs number of machines ({} jobs).",
        if opts.style_label() == "Google" { 6 } else { 7 },
        opts.style_label(),
        jobs.len()
    );
    print!("{:8}", "Method");
    for m in MACHINE_COUNTS {
        print!(" {m:>6}");
    }
    println!();
    println!("{:-^78}", "");
    for r in &results {
        print!("{:8}", r.name);
        for m in MACHINE_COUNTS {
            let scheduler = SchedulerConfig {
                machines: Some(m),
                ..SchedulerConfig::default()
            };
            let mut total = 0.0;
            for (job, outcome) in jobs.iter().zip(&r.outcomes) {
                total += simulate_jct(job, outcome, &scheduler).reduction_percent();
            }
            print!(" {:6.1}", total / jobs.len() as f64);
        }
        println!();
    }
}
