//! Interleaved multi-job event streams — the fleet-scale workload shape
//! `nurd-serve` ingests.
//!
//! One replay drives one job; a datacenter runs many at once. This module
//! lowers a suite of [`JobTrace`]s into a single stream of
//! [`TaskEvent`]s whose jobs interleave the way concurrent jobs do on a
//! shared cluster, while preserving the one ordering guarantee the
//! serving engine needs: **per-job event order is checkpoint order**.
//! Cross-job order is irrelevant to the engine's output (that is its
//! determinism contract, property-tested in `nurd-serve`), so three
//! interleavings are provided: the canonical time-ordered merge
//! ([`fleet_events`]), a streaming merge with staggered job arrivals and
//! departures carrying `JobStart`/`JobEnd` lifecycle markers
//! ([`staggered_fleet_events`]), and a seeded random merge for
//! adversarial shuffling in tests ([`interleave_events`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nurd_data::{job_events, job_stream, JobSpec, JobTrace, TaskEvent};

/// Lowers every job into events and merges them into one stream ordered
/// by `(event time, job id, per-job sequence)` — the interleaving a
/// shared cluster clock would produce, deterministically tie-broken.
/// Returns the per-job [`JobSpec`]s (admission metadata) alongside.
///
/// `threshold_quantile` sets each job's `τ_stra` from its own latency
/// distribution (the paper's p90 protocol at `0.9`).
#[must_use]
pub fn fleet_events(jobs: &[JobTrace], threshold_quantile: f64) -> (Vec<JobSpec>, Vec<TaskEvent>) {
    let mut specs = Vec::with_capacity(jobs.len());
    let mut tagged: Vec<(f64, u64, usize, TaskEvent)> = Vec::new();
    for job in jobs {
        let (spec, events) = job_events(job, threshold_quantile);
        specs.push(spec);
        for (seq, ev) in events.into_iter().enumerate() {
            tagged.push((ev.time(), ev.job(), seq, ev));
        }
    }
    // Stable key: time, then job id, then the job's own sequence — the
    // last component keeps per-job order even among equal-time events
    // (a checkpoint's Progress/Finished batch and its Barrier all carry
    // the checkpoint time).
    tagged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    (specs, tagged.into_iter().map(|(_, _, _, ev)| ev).collect())
}

/// Lowers every job into its *streaming* form ([`job_stream`]: events
/// bracketed by `JobStart` / `JobEnd`) and merges them into one fleet
/// stream with **staggered arrivals and departures**: each job is given
/// a seeded arrival offset drawn uniformly from `[0, spread)`, and the
/// merge orders events by `(arrival offset + event time, job id, per-job
/// sequence)`. Jobs therefore enter the stream at different times — a
/// job's `JobStart` may arrive long after another job finalized — which
/// is exactly the workload shape a long-lived `nurd-serve` engine
/// ingests (mid-stream admission, per-job finalization).
///
/// Offsets shift only the *merge order*, never the events themselves:
/// every event keeps its job-relative `τ_run` time, so per-job replay
/// semantics (thresholds, warmup, revelation) are untouched and the
/// engine's determinism contract applies verbatim. Same `seed` ⇒ same
/// stream; `spread = 0.0` degenerates to simultaneous arrivals.
///
/// `threshold_quantile` sets each job's `τ_stra` from its own latency
/// distribution (the paper's p90 protocol at `0.9`). Admission metadata
/// travels in the stream's `JobStart` events, so unlike [`fleet_events`]
/// no spec list is returned — a consumer that needs specs out of band
/// can build them with [`JobSpec::of_trace`].
#[must_use]
pub fn staggered_fleet_events(
    jobs: &[JobTrace],
    threshold_quantile: f64,
    spread: f64,
    seed: u64,
) -> Vec<TaskEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tagged: Vec<(f64, u64, usize, TaskEvent)> = Vec::new();
    for job in jobs {
        let offset = if spread > 0.0 {
            rng.gen_range(0.0..spread)
        } else {
            0.0
        };
        for (seq, ev) in job_stream(job, threshold_quantile).into_iter().enumerate() {
            tagged.push((offset + ev.time(), ev.job(), seq, ev));
        }
    }
    tagged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    tagged.into_iter().map(|(_, _, _, ev)| ev).collect()
}

/// Like [`staggered_fleet_events`], but arrival offsets follow a
/// **diurnal, bursty** intensity instead of a uniform one — the arrival
/// shape of the Alibaba cluster traces, where submissions cluster around
/// daily load peaks. The intensity over one `period` is
/// `λ(t) ∝ 1 + burstiness · sin(2π t / period)`; each job's offset is
/// drawn by inverse-transform sampling of that intensity (bisection on
/// its closed-form CDF), so `burstiness = 0.0` is exactly the uniform
/// stagger of [`staggered_fleet_events`] with `spread = period`, and
/// higher values pile arrivals onto the peak — a burst of concurrent
/// `JobStart`s followed by a quiet trough.
///
/// Offsets still shift only the merge order (per-job replay semantics
/// untouched); same `seed` ⇒ same stream.
///
/// # Panics
///
/// Panics if `burstiness` is outside `[0, 1]` (the intensity must stay
/// nonnegative) or `period` is negative.
#[must_use]
pub fn diurnal_fleet_events(
    jobs: &[JobTrace],
    threshold_quantile: f64,
    period: f64,
    burstiness: f64,
    seed: u64,
) -> Vec<TaskEvent> {
    assert!(
        (0.0..=1.0).contains(&burstiness),
        "burstiness must be in [0, 1]"
    );
    assert!(period >= 0.0, "period must be nonnegative");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tagged: Vec<(f64, u64, usize, TaskEvent)> = Vec::new();
    for job in jobs {
        let offset = if period > 0.0 {
            diurnal_offset(rng.gen_range(0.0..1.0), period, burstiness)
        } else {
            0.0
        };
        for (seq, ev) in job_stream(job, threshold_quantile).into_iter().enumerate() {
            tagged.push((offset + ev.time(), ev.job(), seq, ev));
        }
    }
    tagged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    tagged.into_iter().map(|(_, _, _, ev)| ev).collect()
}

/// Inverse-transform sample of the diurnal intensity: solves
/// `CDF(t) = u` by bisection, where the unnormalized CDF of
/// `1 + b · sin(2π t / T)` is `t + b·T/(2π) · (1 − cos(2π t / T))`.
fn diurnal_offset(u: f64, period: f64, burstiness: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let cdf = |t: f64| t + burstiness * period / tau * (1.0 - (tau * t / period).cos());
    let target = u * cdf(period);
    let (mut lo, mut hi) = (0.0f64, period);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Randomly merges per-job event streams while preserving each stream's
/// internal order: at every step one nonempty stream is chosen uniformly
/// and its next event is emitted. Same `seed` ⇒ same interleaving. This
/// is the adversarial counterpart to [`fleet_events`] — any such merge
/// must produce the identical `EngineReport`.
#[must_use]
pub fn interleave_events(mut streams: Vec<Vec<TaskEvent>>, seed: u64) -> Vec<TaskEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; streams.len()];
    let mut merged = Vec::with_capacity(total);
    let mut live: Vec<usize> = (0..streams.len())
        .filter(|&i| !streams[i].is_empty())
        .collect();
    while !live.is_empty() {
        let pick = rng.gen_range(0..live.len());
        let s = live[pick];
        merged.push(std::mem::replace(
            &mut streams[s][cursors[s]],
            TaskEvent::Barrier {
                job: 0,
                ordinal: 0,
                time: 0.0,
            },
        ));
        cursors[s] += 1;
        if cursors[s] == streams[s].len() {
            live.swap_remove(pick);
        }
    }
    merged
}

/// Partitions a fleet across `producers` **producer threads**: jobs are
/// split round-robin into disjoint groups, and each group's
/// lifecycle-bracketed streams ([`nurd_data::job_stream`]) are merged by
/// a seeded [`interleave_events`] (seed offset per producer), so even a
/// single producer's stream is multiplexed. This is the workload shape
/// `nurd-serve`'s concurrent ingestion expects: one producer owns each
/// job's stream (per-job order is the engine's contract), while
/// cross-producer interleaving is left to the thread scheduler. Used by
/// the service-mode property tests, the `serve_throughput` producers
/// sweep, and `examples/fleet_monitor`.
#[must_use]
pub fn producer_streams(
    jobs: &[JobTrace],
    producers: usize,
    threshold_quantile: f64,
    seed: u64,
) -> Vec<Vec<TaskEvent>> {
    let producers = producers.max(1);
    (0..producers)
        .map(|p| {
            let mine: Vec<Vec<TaskEvent>> = jobs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % producers == p)
                .map(|(_, job)| job_stream(job, threshold_quantile))
                .collect();
            interleave_events(mine, seed.wrapping_add(p as u64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SuiteConfig, TraceStyle};

    fn suite() -> Vec<JobTrace> {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(3)
            .with_task_range(20, 30)
            .with_checkpoints(5)
            .with_seed(77);
        crate::generate_suite(&cfg)
    }

    /// Per-job subsequence of `events`, with barrier/checkpoint ordinals.
    fn per_job_ordinals(events: &[TaskEvent], job: u64) -> Vec<usize> {
        events
            .iter()
            .filter(|e| e.job() == job)
            .filter_map(|e| match e {
                TaskEvent::Barrier { ordinal, .. } => Some(*ordinal),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn fleet_merge_preserves_per_job_order_and_time_order() {
        let jobs = suite();
        let (specs, events) = fleet_events(&jobs, 0.9);
        assert_eq!(specs.len(), 3);
        for w in events.windows(2) {
            assert!(w[0].time() <= w[1].time(), "stream not time-ordered");
        }
        for spec in &specs {
            assert_eq!(
                per_job_ordinals(&events, spec.job),
                (0..spec.checkpoints).collect::<Vec<_>>()
            );
        }
        let total: usize = jobs
            .iter()
            .map(|j| {
                // submissions + barriers + one Progress-or-Finished per
                // task per checkpoint, minus post-completion silence.
                nurd_data::job_events(j, 0.9).1.len()
            })
            .sum();
        assert_eq!(events.len(), total);
    }

    #[test]
    fn random_interleave_preserves_each_stream_order() {
        let jobs = suite();
        let streams: Vec<Vec<TaskEvent>> = jobs
            .iter()
            .map(|j| nurd_data::job_events(j, 0.9).1)
            .collect();
        let originals: Vec<Vec<TaskEvent>> = streams.clone();
        let merged = interleave_events(streams, 0xFEED);
        for (i, job) in jobs.iter().enumerate() {
            let sub: Vec<&TaskEvent> = merged.iter().filter(|e| e.job() == job.job_id()).collect();
            assert_eq!(sub.len(), originals[i].len());
            for (a, b) in sub.iter().zip(&originals[i]) {
                assert_eq!(**a, *b, "job {} order disturbed", job.job_id());
            }
        }
    }

    #[test]
    fn producer_streams_partition_jobs_and_preserve_per_job_order() {
        let jobs = suite();
        let streams = producer_streams(&jobs, 2, 0.9, 7);
        assert_eq!(streams.len(), 2);
        // Disjoint cover: every job's full bracketed stream appears in
        // exactly one producer's stream, in original order.
        for job in &jobs {
            let reference = job_stream(job, 0.9);
            let owners: Vec<&Vec<TaskEvent>> = streams
                .iter()
                .filter(|s| s.iter().any(|e| e.job() == job.job_id()))
                .collect();
            assert_eq!(
                owners.len(),
                1,
                "job {} not owned by exactly one",
                job.job_id()
            );
            let sub: Vec<&TaskEvent> = owners[0]
                .iter()
                .filter(|e| e.job() == job.job_id())
                .collect();
            assert_eq!(sub.len(), reference.len());
            for (a, b) in sub.iter().zip(&reference) {
                assert_eq!(**a, *b, "job {} order disturbed", job.job_id());
            }
        }
        // producers > jobs leaves the extras empty, never panics.
        let wide = producer_streams(&jobs, 5, 0.9, 7);
        assert_eq!(wide.iter().filter(|s| !s.is_empty()).count(), 3);
    }

    #[test]
    fn staggered_stream_carries_lifecycle_markers_in_per_job_order() {
        let jobs = suite();
        let events = staggered_fleet_events(&jobs, 0.9, 100.0, 42);
        for job in &jobs {
            let sub: Vec<&TaskEvent> = events.iter().filter(|e| e.job() == job.job_id()).collect();
            assert!(
                matches!(sub.first(), Some(TaskEvent::JobStart { spec }) if spec.job == job.job_id()),
                "job {} does not open with JobStart",
                job.job_id()
            );
            assert!(
                matches!(sub.last(), Some(TaskEvent::JobEnd { .. })),
                "job {} does not close with JobEnd",
                job.job_id()
            );
            // Per-job order is exactly the canonical job_stream.
            let canonical = nurd_data::job_stream(job, 0.9);
            assert_eq!(sub.len(), canonical.len());
            for (a, b) in sub.iter().zip(&canonical) {
                assert_eq!(**a, *b, "job {} order disturbed", job.job_id());
            }
        }
    }

    #[test]
    fn staggered_arrivals_actually_stagger_and_are_seed_deterministic() {
        let jobs = suite();
        let staggered = staggered_fleet_events(&jobs, 0.9, 1e6, 7);
        // With a spread dwarfing every job duration, streams barely
        // overlap: some job's JobStart comes after another's JobEnd.
        let first_end = staggered
            .iter()
            .position(|e| matches!(e, TaskEvent::JobEnd { .. }))
            .expect("some job ends");
        let late_start = staggered[first_end..]
            .iter()
            .any(|e| matches!(e, TaskEvent::JobStart { .. }));
        assert!(late_start, "spread 1e6 produced no mid-stream arrival");
        assert_eq!(staggered, staggered_fleet_events(&jobs, 0.9, 1e6, 7));
        assert_ne!(staggered, staggered_fleet_events(&jobs, 0.9, 1e6, 8));
        // Zero spread degenerates to simultaneous arrivals and still
        // carries every event.
        let simultaneous = staggered_fleet_events(&jobs, 0.9, 0.0, 7);
        assert_eq!(simultaneous.len(), staggered.len());
    }

    #[test]
    fn diurnal_stream_is_deterministic_and_bursty() {
        let jobs = suite();
        let a = diurnal_fleet_events(&jobs, 0.9, 500.0, 0.9, 7);
        assert_eq!(a, diurnal_fleet_events(&jobs, 0.9, 500.0, 0.9, 7));
        // Per-job order still matches the canonical stream.
        for job in &jobs {
            let sub: Vec<&TaskEvent> = a.iter().filter(|e| e.job() == job.job_id()).collect();
            let canonical = job_stream(job, 0.9);
            assert_eq!(sub.len(), canonical.len());
            for (x, y) in sub.iter().zip(&canonical) {
                assert_eq!(**x, *y);
            }
        }
        // Zero burstiness with the same seed reproduces the uniform
        // stagger exactly (same draws, identity intensity).
        assert_eq!(
            diurnal_fleet_events(&jobs, 0.9, 500.0, 0.0, 7)
                .iter()
                .map(TaskEvent::job)
                .collect::<Vec<_>>(),
            staggered_fleet_events(&jobs, 0.9, 500.0, 7)
                .iter()
                .map(TaskEvent::job)
                .collect::<Vec<_>>()
        );
        // High burstiness concentrates offsets near the intensity peak:
        // with many jobs the spread of offsets shrinks vs uniform. Proxy
        // check: the bisection inverse maps the median draw near the
        // peak quarter of the period.
        let t = super::diurnal_offset(0.5, 1000.0, 1.0);
        assert!(
            t < 400.0,
            "median arrival should land before midperiod, got {t}"
        );
    }

    #[test]
    fn interleave_is_deterministic_per_seed() {
        let jobs = suite();
        let streams = || {
            jobs.iter()
                .map(|j| nurd_data::job_events(j, 0.9).1)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            interleave_events(streams(), 7),
            interleave_events(streams(), 7)
        );
        assert_ne!(
            interleave_events(streams(), 7),
            interleave_events(streams(), 8),
            "different seeds should interleave differently"
        );
    }
}
