//! Feature time-series synthesis.
//!
//! Each task's features derive from its latent [`TaskPlan`]: interference
//! shows up in CPU-share and CPI/MAI features, data skew in memory/disk
//! features (which ramp up as the input loads), evictions as counter steps,
//! and opaque stragglers look nominal. Decoy tasks get large burst (MAX*)
//! values without being slow. Feature values *evolve over checkpoints* and
//! freeze when the task finishes, exactly as the paper's simulator replays
//! the real traces.

use rand::Rng;

use crate::config::TraceStyle;
use crate::dist;
use crate::latency::{StragglerCause, TaskPlan};

/// The 15 Google task features of Table 1 in the paper, as
/// `(name, description)`.
pub const GOOGLE_FEATURES: [(&str, &str); 15] = [
    ("MCU", "Mean CPU usage"),
    ("MAXCPU", "Maximum CPU usage"),
    ("SCPU", "Sampled CPU usage"),
    ("CMU", "Canonical memory usage"),
    ("AMU", "Assigned memory usage"),
    ("MAXMU", "Maximum memory usage"),
    ("UPC", "Unmapped page cache memory usage"),
    ("TPC", "Total page cache memory usage"),
    ("MIO", "Mean disk I/O time"),
    ("MAXIO", "Maximum disk I/O time"),
    ("MDK", "Mean local disk space used"),
    ("CPI", "Cycles per instruction"),
    ("MAI", "Memory accesses per instruction"),
    ("EV", "Number of times task is evicted"),
    ("FL", "Number of times task fails"),
];

/// The 4 Alibaba instance features of Table 2 in the paper.
pub const ALIBABA_FEATURES: [(&str, &str); 4] = [
    ("cpu_avg", "Avg. CPU numbers of instance running"),
    ("cpu_max", "Max. CPU numbers of instance running"),
    ("mem_avg", "Avg. normalized memory of instance running"),
    ("mem_max", "Max. normalized memory of instance running"),
];

/// Job-level feature baselines: every job gets its own operating point,
/// reflecting the paper's observation that jobs are unique and need
/// per-job models.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JobBaselines {
    cpu: f64,
    mem: f64,
    io: f64,
    cpi: f64,
    upc: f64,
    mdk: f64,
    mai: f64,
}

impl JobBaselines {
    pub(crate) fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        JobBaselines {
            cpu: dist::uniform(rng, 0.25, 0.55),
            mem: dist::uniform(rng, 0.10, 0.30),
            io: dist::uniform(rng, 0.05, 0.20),
            cpi: dist::uniform(rng, 0.9, 1.6),
            upc: dist::uniform(rng, 0.01, 0.05),
            mdk: dist::uniform(rng, 0.05, 0.25),
            mai: dist::uniform(rng, 0.005, 0.02),
        }
    }
}

/// Smoothstep ramp: 0 below `0`, 1 above `1`, cubic in between.
fn smoothstep(x: f64) -> f64 {
    let x = x.clamp(0.0, 1.0);
    x * x * (3.0 - 2.0 * x)
}

/// Per-task latent draws that stay fixed across checkpoints.
struct TaskLatents {
    /// Final mean CPU share (starved under interference).
    mcu: f64,
    /// Final CPI (inflated under interference).
    cpi: f64,
    /// Final MAI (inflated under interference).
    mai: f64,
    /// Memory scale (∝ work, so data skew shows here).
    mem: f64,
    /// Disk I/O scale (∝ work).
    io: f64,
    /// Disk space scale (∝ work).
    mdk: f64,
    /// Page-cache scale.
    upc: f64,
    /// CPU burst multiplier for MAXCPU (large for decoys).
    burst_cpu: f64,
    /// Memory burst multiplier for MAXMU.
    burst_mem: f64,
    /// I/O burst multiplier for MAXIO.
    burst_io: f64,
    /// TPC/UPC ratio.
    tpc_ratio: f64,
    /// AMU/CMU ratio.
    amu_ratio: f64,
    /// Progress points (fraction of task lifetime) of eviction events.
    eviction_times: Vec<f64>,
    /// Progress points of failure events.
    failure_times: Vec<f64>,
}

fn draw_latents<R: Rng + ?Sized>(rng: &mut R, plan: &TaskPlan, base: &JobBaselines) -> TaskLatents {
    // Decoys carry a straggler-like signature *without* the latency
    // penalty: a cache-insensitive task on a busy machine, or a large input
    // processed efficiently. This is the paper's §3.2 point made concrete —
    // feature-space outliers are not latency outliers — and it is what
    // caps pure outlier detection and forces models to use latencies.
    let (decoy_interf, decoy_skew) = if plan.decoy {
        let strength = dist::uniform(rng, 0.5, 1.8);
        if rng.gen_bool(0.5) {
            (strength, 1.0)
        } else {
            (0.0, 1.0 + strength)
        }
    } else {
        (0.0, 1.0)
    };
    let interf = match plan.cause {
        Some(StragglerCause::Interference) => plan.signature,
        _ => decoy_interf,
    };
    // Interference tasks' visibility is governed by their signature alone
    // (plan.slow already contains the straggler factor — adding it again
    // would double-count); non-stragglers leak mild machine heterogeneity.
    let machine_load = if interf > 0.0 {
        interf
    } else {
        (plan.slow - 1.0).min(0.3)
    };
    let noise = |rng: &mut R, sigma: f64| dist::lognormal(rng, 1.0, sigma);

    let effective_work = plan.work * decoy_skew;
    let mcu = (base.cpu * (1.0 - 0.40 * interf.min(1.4) / 1.4) * noise(rng, 0.10)).max(0.01);
    let cpi = base.cpi * (1.0 + 0.85 * machine_load) * noise(rng, 0.08);
    let mai = base.mai * (1.0 + 0.65 * machine_load) * noise(rng, 0.10);
    let mem = base.mem * effective_work.powf(0.85) * noise(rng, 0.10);
    let io = base.io * effective_work * noise(rng, 0.12);
    let mdk = base.mdk * effective_work * noise(rng, 0.10);
    let upc = base.upc * effective_work.powf(0.6) * noise(rng, 0.15);

    let (burst_cpu, burst_mem, burst_io, tpc_extra) = if plan.decoy {
        (
            dist::uniform(rng, 1.2, 2.6),
            dist::uniform(rng, 0.9, 2.0),
            dist::uniform(rng, 1.0, 2.2),
            dist::uniform(rng, 2.0, 3.5),
        )
    } else {
        (
            dist::uniform(rng, 0.15, 0.50),
            dist::uniform(rng, 0.12, 0.40),
            dist::uniform(rng, 0.20, 0.60),
            1.0,
        )
    };

    let mut eviction_times: Vec<f64> = (0..plan.evictions)
        .map(|_| dist::uniform(rng, 0.05, 0.45))
        .collect();
    eviction_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    // Rare failures unrelated to straggling; evictions often co-occur with
    // one failure event.
    let mut failure_times = Vec::new();
    if rng.gen_bool(0.03) {
        failure_times.push(dist::uniform(rng, 0.1, 0.9));
    }
    if plan.evictions > 0 && rng.gen_bool(0.5) {
        failure_times.push(dist::uniform(rng, 0.1, 0.9));
    }

    TaskLatents {
        mcu,
        cpi,
        mai,
        mem,
        io,
        mdk,
        upc,
        burst_cpu,
        burst_mem,
        burst_io,
        tpc_ratio: dist::uniform(rng, 2.0, 4.0) * tpc_extra,
        amu_ratio: dist::uniform(rng, 1.10, 1.35),
        eviction_times,
        failure_times,
    }
}

/// Generates a task's feature snapshots at every checkpoint time.
///
/// Snapshots freeze once the task finishes (`t >= plan.latency`), matching
/// how a monitoring system stops updating a completed task's counters.
pub(crate) fn task_feature_series<R: Rng + ?Sized>(
    rng: &mut R,
    style: TraceStyle,
    plan: &TaskPlan,
    base: &JobBaselines,
    checkpoint_times: &[f64],
) -> Vec<Vec<f64>> {
    let latents = draw_latents(rng, plan, base);
    let mut snapshots = Vec::with_capacity(checkpoint_times.len());
    let mut frozen: Option<Vec<f64>> = None;
    for &t in checkpoint_times {
        let progress = (t / plan.latency).min(1.0);
        if let Some(done) = &frozen {
            snapshots.push(done.clone());
            continue;
        }
        let snap = match style {
            TraceStyle::Google => google_snapshot(rng, plan, &latents, progress),
            TraceStyle::Alibaba => alibaba_snapshot(rng, plan, &latents, progress),
        };
        if progress >= 1.0 {
            frozen = Some(snap.clone());
        }
        snapshots.push(snap);
    }
    snapshots
}

/// Measurement noise that shrinks as a task accumulates samples.
fn obs_noise<R: Rng + ?Sized>(rng: &mut R, progress: f64) -> f64 {
    let sigma = 0.06 - 0.03 * progress;
    dist::lognormal(rng, 1.0, sigma.max(0.02))
}

fn google_snapshot<R: Rng + ?Sized>(
    rng: &mut R,
    _plan: &TaskPlan,
    l: &TaskLatents,
    p: f64,
) -> Vec<f64> {
    // CPU/CPI interference is visible from the start; memory and disk ramp
    // up as the input shard loads, saturating by ~30% of the task's
    // lifetime. The ramps are deliberately shallow: a mid-life running task
    // must look *similar* to a finished one, or the finished-vs-running
    // propensity model becomes a trivial progress detector instead of a
    // dissimilarity measure.
    let mem_ramp = 0.70 + 0.30 * smoothstep(p / 0.30);
    let io_ramp = 0.75 + 0.25 * smoothstep(p / 0.25);
    let max_ramp = 1.0 - 0.35 * (-5.0 * p).exp();

    let mcu = l.mcu * obs_noise(rng, p);
    let cmu = l.mem * mem_ramp * obs_noise(rng, p);
    let upc = l.upc * mem_ramp * obs_noise(rng, p);
    let mio = l.io * io_ramp * obs_noise(rng, p);
    let ev = l.eviction_times.iter().filter(|&&e| e <= p).count() as f64;
    let fl = l.failure_times.iter().filter(|&&e| e <= p).count() as f64;

    vec![
        mcu,
        l.mcu * (1.0 + l.burst_cpu * max_ramp),
        mcu * dist::lognormal(rng, 1.0, 0.05),
        cmu,
        cmu * l.amu_ratio,
        l.mem * (1.0 + l.burst_mem) * mem_ramp * max_ramp.max(0.5),
        upc,
        upc * l.tpc_ratio,
        mio,
        l.io * (1.0 + l.burst_io) * io_ramp * max_ramp.max(0.5),
        l.mdk * mem_ramp * obs_noise(rng, p),
        l.cpi * obs_noise(rng, p),
        l.mai * obs_noise(rng, p),
        ev,
        fl,
    ]
}

fn alibaba_snapshot<R: Rng + ?Sized>(
    rng: &mut R,
    plan: &TaskPlan,
    l: &TaskLatents,
    p: f64,
) -> Vec<f64> {
    // Alibaba's 4 features hide CPI, counters and disk entirely; the
    // interference signal is diluted (cpu numbers, not shares) and skew only
    // shows in memory.
    let interf = match plan.cause {
        Some(StragglerCause::Interference) => plan.signature,
        _ => 0.0,
    };
    let mem_ramp = 0.70 + 0.30 * smoothstep(p / 0.30);
    let max_ramp = 1.0 - 0.35 * (-5.0 * p).exp();
    let cpu_avg = (l.mcu * (1.0 + 0.12 * interf) * obs_noise(rng, p)).max(0.01);
    let mem_avg = l.mem * mem_ramp * obs_noise(rng, p);
    vec![
        cpu_avg,
        cpu_avg * (1.0 + l.burst_cpu * max_ramp),
        mem_avg,
        l.mem * (1.0 + l.burst_mem) * mem_ramp * max_ramp.max(0.5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::TaskPlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn nominal_plan(latency: f64) -> TaskPlan {
        TaskPlan {
            latency,
            work: 1.0,
            slow: 1.0,
            evictions: 0,
            cause: None,
            signature: 0.0,
            decoy: false,
        }
    }

    #[test]
    fn feature_tables_match_paper_counts() {
        assert_eq!(GOOGLE_FEATURES.len(), 15);
        assert_eq!(ALIBABA_FEATURES.len(), 4);
        assert_eq!(GOOGLE_FEATURES[0].0, "MCU");
        assert_eq!(ALIBABA_FEATURES[3].0, "mem_max");
    }

    #[test]
    fn series_has_one_snapshot_per_checkpoint() {
        let mut r = rng();
        let base = JobBaselines::sample(&mut r);
        let times = vec![10.0, 20.0, 30.0, 40.0];
        let s = task_feature_series(
            &mut r,
            TraceStyle::Google,
            &nominal_plan(25.0),
            &base,
            &times,
        );
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|snap| snap.len() == 15));
    }

    #[test]
    fn snapshots_freeze_after_finish() {
        let mut r = rng();
        let base = JobBaselines::sample(&mut r);
        let times = vec![10.0, 20.0, 30.0, 40.0];
        let s = task_feature_series(
            &mut r,
            TraceStyle::Google,
            &nominal_plan(15.0),
            &base,
            &times,
        );
        assert_eq!(s[1], s[2]);
        assert_eq!(s[2], s[3]);
        assert_ne!(s[0], s[1]);
    }

    #[test]
    fn interference_raises_cpi_and_lowers_mcu() {
        let mut r = rng();
        let base = JobBaselines::sample(&mut r);
        let times = vec![100.0];
        let mut mcu_normal = 0.0;
        let mut cpi_normal = 0.0;
        let mut mcu_interf = 0.0;
        let mut cpi_interf = 0.0;
        for _ in 0..200 {
            let s = task_feature_series(
                &mut r,
                TraceStyle::Google,
                &nominal_plan(50.0),
                &base,
                &times,
            );
            mcu_normal += s[0][0];
            cpi_normal += s[0][11];
            let plan = TaskPlan {
                cause: Some(StragglerCause::Interference),
                signature: 1.2,
                slow: 3.0,
                latency: 150.0,
                ..nominal_plan(150.0)
            };
            let s = task_feature_series(&mut r, TraceStyle::Google, &plan, &base, &times);
            mcu_interf += s[0][0];
            cpi_interf += s[0][11];
        }
        assert!(mcu_interf < 0.8 * mcu_normal);
        assert!(cpi_interf > 1.4 * cpi_normal);
    }

    #[test]
    fn data_skew_raises_memory_and_io() {
        let mut r = rng();
        let base = JobBaselines::sample(&mut r);
        let times = vec![1000.0]; // fully ramped
        let mut cmu_n = 0.0;
        let mut mio_n = 0.0;
        let mut cmu_s = 0.0;
        let mut mio_s = 0.0;
        for _ in 0..200 {
            let s = task_feature_series(
                &mut r,
                TraceStyle::Google,
                &nominal_plan(50.0),
                &base,
                &times,
            );
            cmu_n += s[0][3];
            mio_n += s[0][8];
            let plan = TaskPlan {
                cause: Some(StragglerCause::DataSkew),
                signature: 1.2,
                work: 4.0,
                latency: 200.0,
                ..nominal_plan(200.0)
            };
            let s = task_feature_series(&mut r, TraceStyle::Google, &plan, &base, &times);
            cmu_s += s[0][3];
            mio_s += s[0][8];
        }
        assert!(cmu_s > 2.0 * cmu_n);
        assert!(mio_s > 2.5 * mio_n);
    }

    #[test]
    fn eviction_counters_step_with_progress() {
        let mut r = rng();
        let base = JobBaselines::sample(&mut r);
        let plan = TaskPlan {
            cause: Some(StragglerCause::Eviction),
            evictions: 3,
            latency: 100.0,
            ..nominal_plan(100.0)
        };
        let times = vec![5.0, 50.0, 95.0, 100.0];
        let s = task_feature_series(&mut r, TraceStyle::Google, &plan, &base, &times);
        let ev: Vec<f64> = s.iter().map(|snap| snap[13]).collect();
        assert!(ev.windows(2).all(|w| w[0] <= w[1]), "EV must be monotone");
        assert_eq!(ev[3], 3.0);
    }

    #[test]
    fn decoys_have_inflated_max_features() {
        let mut r = rng();
        let base = JobBaselines::sample(&mut r);
        let times = vec![1000.0];
        let mut ratio_normal = 0.0;
        let mut ratio_decoy = 0.0;
        for _ in 0..200 {
            let s = task_feature_series(
                &mut r,
                TraceStyle::Google,
                &nominal_plan(50.0),
                &base,
                &times,
            );
            ratio_normal += s[0][1] / s[0][0];
            let plan = TaskPlan {
                decoy: true,
                ..nominal_plan(50.0)
            };
            let s = task_feature_series(&mut r, TraceStyle::Google, &plan, &base, &times);
            ratio_decoy += s[0][1] / s[0][0];
        }
        assert!(ratio_decoy > 1.5 * ratio_normal);
    }

    #[test]
    fn opaque_straggler_looks_nominal() {
        let mut r = rng();
        let base = JobBaselines::sample(&mut r);
        let times = vec![1000.0];
        let mut cpi_n = 0.0;
        let mut cpi_o = 0.0;
        for _ in 0..300 {
            let s = task_feature_series(
                &mut r,
                TraceStyle::Google,
                &nominal_plan(50.0),
                &base,
                &times,
            );
            cpi_n += s[0][11];
            let plan = TaskPlan {
                cause: Some(StragglerCause::Opaque),
                signature: 0.0,
                latency: 300.0,
                ..nominal_plan(300.0)
            };
            let s = task_feature_series(&mut r, TraceStyle::Google, &plan, &base, &times);
            cpi_o += s[0][11];
        }
        let ratio = cpi_o / cpi_n;
        assert!((0.9..1.1).contains(&ratio), "opaque CPI ratio {ratio}");
    }

    #[test]
    fn alibaba_snapshot_is_four_wide_and_positive() {
        let mut r = rng();
        let base = JobBaselines::sample(&mut r);
        let times = vec![10.0, 60.0];
        let s = task_feature_series(
            &mut r,
            TraceStyle::Alibaba,
            &nominal_plan(40.0),
            &base,
            &times,
        );
        assert!(s.iter().all(|snap| snap.len() == 4));
        assert!(s.iter().flatten().all(|&v| v > 0.0));
    }

    #[test]
    fn smoothstep_endpoints() {
        assert_eq!(smoothstep(-1.0), 0.0);
        assert_eq!(smoothstep(0.0), 0.0);
        assert_eq!(smoothstep(1.0), 1.0);
        assert_eq!(smoothstep(2.0), 1.0);
        assert!((smoothstep(0.5) - 0.5).abs() < 1e-12);
    }
}
