//! Suite-level generation configuration.

use crate::node::NodeModelConfig;

/// Which production trace family to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceStyle {
    /// Google 2011 cluster traces: 15 features per task (Table 1 of the
    /// paper), jobs of 100+ tasks.
    Google,
    /// Alibaba 2017/2018 traces: 4 features per instance (Table 2), much
    /// weaker feature signal.
    Alibaba,
}

/// Mixture over straggler causes; weights need not sum to one (they are
/// normalized internally).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CauseMix {
    /// Machine-level interference: CPU starvation, cache contention. Shows
    /// in CPU-share and CPI-like features.
    pub interference: f64,
    /// Input data skew: a task gets a larger shard. Shows in memory/disk
    /// features.
    pub data_skew: f64,
    /// Eviction/restart cycles. Shows in counter features (Google only).
    pub eviction: f64,
    /// Opaque slowness with no feature signature — every method's false
    /// negatives live here.
    pub opaque: f64,
}

impl Default for CauseMix {
    fn default() -> Self {
        CauseMix {
            interference: 0.40,
            data_skew: 0.32,
            eviction: 0.18,
            opaque: 0.10,
        }
    }
}

impl CauseMix {
    /// Normalized weights `[interference, data_skew, eviction, opaque]`.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative.
    #[must_use]
    pub fn normalized(&self) -> [f64; 4] {
        let w = [
            self.interference,
            self.data_skew,
            self.eviction,
            self.opaque,
        ];
        assert!(w.iter().all(|&v| v >= 0.0), "cause weights must be >= 0");
        let total: f64 = w.iter().sum();
        assert!(total > 0.0, "at least one cause weight must be positive");
        [w[0] / total, w[1] / total, w[2] / total, w[3] / total]
    }
}

/// Configuration for generating a suite of jobs.
///
/// Build with [`SuiteConfig::new`] and the `with_*` methods:
///
/// ```
/// use nurd_trace::{SuiteConfig, TraceStyle};
///
/// let cfg = SuiteConfig::new(TraceStyle::Alibaba)
///     .with_jobs(10)
///     .with_task_range(100, 200)
///     .with_seed(99);
/// assert_eq!(cfg.jobs, 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteConfig {
    /// Trace family to imitate.
    pub style: TraceStyle,
    /// Number of jobs in the suite.
    pub jobs: usize,
    /// Minimum tasks per job (the paper filters to ≥ 100).
    pub tasks_min: usize,
    /// Maximum tasks per job.
    pub tasks_max: usize,
    /// Checkpoints per job.
    pub checkpoints: usize,
    /// Fraction of tasks planted as stragglers (p90 labeling will select
    /// approximately the top decile regardless; this controls the gap).
    pub straggler_fraction: f64,
    /// Fraction of non-stragglers given bursty decoy features.
    pub decoy_fraction: f64,
    /// Mixture over straggler causes.
    pub cause_mix: CauseMix,
    /// Fraction of jobs drawn from the long-tailed latency family (the rest
    /// are close-tailed).
    pub long_tail_fraction: f64,
    /// How far stragglers overshoot the body: each family's latency
    /// multiplier range `(lo, hi)` is rescaled to
    /// `1 + (x − 1) · severity`. `1.0` (the default) reproduces the
    /// family's native ranges **bit-for-bit** — same RNG stream, same
    /// traces; `0.0` collapses stragglers into the body (multiplier 1);
    /// values above `1.0` exaggerate the tail. The mitigation experiments
    /// sweep this knob to control how much a clone can possibly save.
    pub straggler_severity: f64,
    /// Optional machine axis: a seeded fleet of nodes with per-node
    /// health, task placement, and correlated latency factors for
    /// co-located tasks (see [`NodeModelConfig`]). `None` (the default)
    /// is **bit-identical** to the pre-node-model generator — no extra
    /// RNG draws, no placement metadata, no node feature columns.
    pub node_model: Option<NodeModelConfig>,
    /// Master RNG seed; each job derives its own stream from it.
    pub seed: u64,
}

impl SuiteConfig {
    /// Defaults sized for the paper-shaped experiments: 60 jobs of 120–360
    /// tasks, 30 checkpoints.
    #[must_use]
    pub fn new(style: TraceStyle) -> Self {
        SuiteConfig {
            style,
            jobs: 60,
            tasks_min: 120,
            tasks_max: 360,
            checkpoints: 24,
            straggler_fraction: 0.11,
            decoy_fraction: 0.12,
            cause_mix: CauseMix::default(),
            long_tail_fraction: 0.5,
            straggler_severity: 1.0,
            node_model: None,
            seed: 0x5ed_c0de,
        }
    }

    /// Sets the number of jobs.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the per-job task count range (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds `max`.
    #[must_use]
    pub fn with_task_range(mut self, min: usize, max: usize) -> Self {
        assert!(min > 0 && min <= max, "need 0 < min <= max");
        self.tasks_min = min;
        self.tasks_max = max;
        self
    }

    /// Sets the number of checkpoints per job.
    #[must_use]
    pub fn with_checkpoints(mut self, checkpoints: usize) -> Self {
        self.checkpoints = checkpoints;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the planted straggler fraction.
    #[must_use]
    pub fn with_straggler_fraction(mut self, fraction: f64) -> Self {
        self.straggler_fraction = fraction;
        self
    }

    /// Sets the decoy (feature-outlier non-straggler) fraction.
    #[must_use]
    pub fn with_decoy_fraction(mut self, fraction: f64) -> Self {
        self.decoy_fraction = fraction;
        self
    }

    /// Sets the cause mixture.
    #[must_use]
    pub fn with_cause_mix(mut self, mix: CauseMix) -> Self {
        self.cause_mix = mix;
        self
    }

    /// Sets the fraction of long-tailed jobs.
    #[must_use]
    pub fn with_long_tail_fraction(mut self, fraction: f64) -> Self {
        self.long_tail_fraction = fraction;
        self
    }

    /// Sets the straggler severity (latency-multiplier rescaling).
    ///
    /// # Panics
    ///
    /// Panics if `severity` is negative or not finite.
    #[must_use]
    pub fn with_straggler_severity(mut self, severity: f64) -> Self {
        assert!(
            severity.is_finite() && severity >= 0.0,
            "severity must be finite and >= 0"
        );
        self.straggler_severity = severity;
        self
    }

    /// Enables the node model (machine placement + correlated per-node
    /// straggler factors).
    #[must_use]
    pub fn with_node_model(mut self, model: NodeModelConfig) -> Self {
        self.node_model = Some(model);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_mix_normalizes() {
        let mix = CauseMix {
            interference: 2.0,
            data_skew: 1.0,
            eviction: 1.0,
            opaque: 0.0,
        };
        let w = mix.normalized();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert_eq!(w[3], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one cause weight")]
    fn cause_mix_rejects_all_zero() {
        let _ = CauseMix {
            interference: 0.0,
            data_skew: 0.0,
            eviction: 0.0,
            opaque: 0.0,
        }
        .normalized();
    }

    #[test]
    fn builder_chains() {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(3)
            .with_task_range(10, 20)
            .with_checkpoints(5)
            .with_seed(1)
            .with_straggler_fraction(0.2)
            .with_decoy_fraction(0.0)
            .with_long_tail_fraction(1.0);
        assert_eq!(cfg.jobs, 3);
        assert_eq!(cfg.tasks_min, 10);
        assert_eq!(cfg.checkpoints, 5);
        assert_eq!(cfg.long_tail_fraction, 1.0);
    }

    #[test]
    #[should_panic(expected = "need 0 < min <= max")]
    fn task_range_validated() {
        let _ = SuiteConfig::new(TraceStyle::Google).with_task_range(5, 2);
    }
}
