//! Job and suite generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nurd_data::{JobTrace, TaskRecord};

use crate::config::{SuiteConfig, TraceStyle};
use crate::dist;
use crate::features::{self, JobBaselines, ALIBABA_FEATURES, GOOGLE_FEATURES};
use crate::latency::{plan_job, LatencyFamily};

/// Generates one job deterministically from `(config, job_id)`.
///
/// The job's RNG stream is derived from the suite seed and the job id, so
/// individual jobs can be regenerated without the rest of the suite.
///
/// # Panics
///
/// Panics if `config.checkpoints == 0` or the task range is empty (the
/// builder validates these, so only hand-rolled configs can trip it).
#[must_use]
pub fn generate_job(config: &SuiteConfig, job_id: u64) -> JobTrace {
    generate_job_detailed(config, job_id).0
}

/// Like [`generate_job`], but also returns each task's latent
/// [`crate::TaskPlan`] (ground-truth cause, decoy flag, signature).
///
/// The plans are *generator metadata*: predictors never see them. They
/// exist for cause-stratified evaluation and for tests that need to assert
/// on planted structure.
///
/// # Panics
///
/// Same conditions as [`generate_job`].
#[must_use]
pub fn generate_job_detailed(
    config: &SuiteConfig,
    job_id: u64,
) -> (JobTrace, Vec<crate::TaskPlan>) {
    assert!(config.checkpoints > 0, "need at least one checkpoint");
    let mut rng = StdRng::seed_from_u64(config.seed ^ job_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));

    let n_tasks = rng.gen_range(config.tasks_min..=config.tasks_max);
    let median = dist::uniform(&mut rng, 60.0, 600.0);
    let family = LatencyFamily::sample_with_severity(
        &mut rng,
        config.long_tail_fraction,
        config.straggler_severity,
    );
    let plans = plan_job(
        &mut rng,
        n_tasks,
        median,
        &family,
        &config.cause_mix,
        config.straggler_fraction,
        config.decoy_fraction,
    );

    // Checkpoint schedule: regular time intervals over the job's lifetime
    // (the paper's traces record task metrics "at regular time
    // checkpoints"), padded slightly past the slowest task so the replay
    // observes every completion. Regular spacing matters behaviorally: the
    // first prediction then lands after a sizeable share of the body has
    // finished, giving the per-job models real training support.
    let max_latency = plans
        .iter()
        .map(|p| p.latency)
        .fold(f64::NEG_INFINITY, f64::max);
    let horizon = max_latency * 1.02;
    let checkpoint_times: Vec<f64> = (1..=config.checkpoints)
        .map(|k| horizon * k as f64 / config.checkpoints as f64)
        .collect();

    let baselines = JobBaselines::sample(&mut rng);
    let tasks: Vec<TaskRecord> = plans
        .iter()
        .enumerate()
        .map(|(id, plan)| {
            let series = features::task_feature_series(
                &mut rng,
                config.style,
                plan,
                &baselines,
                &checkpoint_times,
            );
            TaskRecord::new(id, plan.latency, series)
        })
        .collect();

    let feature_names: Vec<String> = match config.style {
        TraceStyle::Google => GOOGLE_FEATURES.iter().map(|(n, _)| (*n).into()).collect(),
        TraceStyle::Alibaba => ALIBABA_FEATURES.iter().map(|(n, _)| (*n).into()).collect(),
    };

    let trace = JobTrace::new(job_id, feature_names, checkpoint_times, tasks)
        .expect("generator produces structurally valid jobs");
    (trace, plans)
}

/// Generates the whole suite.
#[must_use]
pub fn generate_suite(config: &SuiteConfig) -> Vec<JobTrace> {
    (0..config.jobs as u64)
        .map(|job_id| generate_job(config, job_id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CauseMix;
    use proptest::prelude::*;

    fn tiny(style: TraceStyle) -> SuiteConfig {
        SuiteConfig::new(style)
            .with_jobs(2)
            .with_task_range(40, 60)
            .with_checkpoints(8)
            .with_seed(3)
    }

    #[test]
    fn google_job_shape() {
        let job = generate_job(&tiny(TraceStyle::Google), 0);
        assert_eq!(job.feature_dim(), 15);
        assert_eq!(job.checkpoint_count(), 8);
        assert!((40..=60).contains(&job.task_count()));
    }

    #[test]
    fn alibaba_job_shape() {
        let job = generate_job(&tiny(TraceStyle::Alibaba), 0);
        assert_eq!(job.feature_dim(), 4);
        assert_eq!(job.feature_names()[0], "cpu_avg");
    }

    #[test]
    fn deterministic_per_job_id() {
        let cfg = tiny(TraceStyle::Google);
        assert_eq!(generate_job(&cfg, 5), generate_job(&cfg, 5));
        assert_ne!(generate_job(&cfg, 5), generate_job(&cfg, 6));
    }

    #[test]
    fn final_checkpoint_covers_all_tasks() {
        let job = generate_job(&tiny(TraceStyle::Google), 1);
        let last = *job.checkpoint_times().last().unwrap();
        assert!(job.tasks().iter().all(|t| t.latency() <= last));
    }

    #[test]
    fn p90_threshold_separates_a_top_decile() {
        let cfg = tiny(TraceStyle::Google).with_task_range(200, 200);
        let job = generate_job(&cfg, 2);
        let thr = job.straggler_threshold(0.9);
        let stragglers = job.true_stragglers(thr).len();
        let frac = stragglers as f64 / job.task_count() as f64;
        assert!((0.05..=0.15).contains(&frac), "straggler fraction {frac}");
    }

    #[test]
    fn long_tail_jobs_have_threshold_below_half_max() {
        // Purely long-tailed suite: p90 ≪ max/2 (Figure 1 left).
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(6)
            .with_task_range(150, 200)
            .with_checkpoints(6)
            .with_long_tail_fraction(1.0)
            .with_seed(11);
        let mut below = 0;
        for job in generate_suite(&cfg) {
            if job.straggler_threshold(0.9) < 0.5 * job.max_latency() {
                below += 1;
            }
        }
        assert!(below >= 4, "only {below}/6 long-tail jobs below half-max");
    }

    #[test]
    fn close_tail_jobs_have_threshold_above_half_max() {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(6)
            .with_task_range(150, 200)
            .with_checkpoints(6)
            .with_long_tail_fraction(0.0)
            .with_seed(13);
        let mut above = 0;
        for job in generate_suite(&cfg) {
            if job.straggler_threshold(0.9) > 0.5 * job.max_latency() {
                above += 1;
            }
        }
        assert!(above >= 4, "only {above}/6 close-tail jobs above half-max");
    }

    #[test]
    fn suite_round_trips_through_csv() {
        let cfg = tiny(TraceStyle::Alibaba);
        let jobs = generate_suite(&cfg);
        let dir = std::env::temp_dir().join("nurd-trace-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("suite.csv");
        nurd_data::write_jobs_csv(&path, &jobs).unwrap();
        let parsed = nurd_data::read_jobs_csv(&path).unwrap();
        assert_eq!(parsed.len(), jobs.len());
        // Latencies and shapes survive the text round-trip exactly enough
        // for replay (floats print with full precision).
        assert_eq!(parsed[0].task_count(), jobs[0].task_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_features_are_finite() {
        let job = generate_job(&tiny(TraceStyle::Google), 7);
        for task in job.tasks() {
            for snap in task.snapshots() {
                assert!(snap.iter().all(|v| v.is_finite()));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any seed yields a structurally valid job with ~10% stragglers.
        #[test]
        fn prop_generator_valid_for_any_seed(seed in 0u64..10_000) {
            let cfg = SuiteConfig::new(TraceStyle::Google)
                .with_jobs(1)
                .with_task_range(80, 120)
                .with_checkpoints(10)
                .with_seed(seed);
            let job = generate_job(&cfg, 0);
            let thr = job.straggler_threshold(0.9);
            let frac = job.true_stragglers(thr).len() as f64 / job.task_count() as f64;
            prop_assert!(frac > 0.0 && frac < 0.25);
            prop_assert!(job.warmup_checkpoint(0.04) < job.checkpoint_count());
        }

        /// Cause mixes with a single cause never plant other causes.
        #[test]
        fn prop_single_cause_mix(seed in 0u64..1000) {
            let cfg = SuiteConfig::new(TraceStyle::Google)
                .with_jobs(1)
                .with_task_range(50, 80)
                .with_checkpoints(5)
                .with_seed(seed)
                .with_cause_mix(CauseMix {
                    interference: 1.0,
                    data_skew: 0.0,
                    eviction: 0.0,
                    opaque: 0.0,
                });
            // EV counters can only come from evictions, which this mix forbids
            // (modulo the unconditional rare failures, which use FL not EV).
            let job = generate_job(&cfg, 0);
            for task in job.tasks() {
                let last = task.snapshots().last().unwrap();
                prop_assert_eq!(last[13], 0.0);
            }
        }
    }
}
