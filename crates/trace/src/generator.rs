//! Job and suite generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nurd_data::{JobTrace, TaskRecord};

use crate::config::{SuiteConfig, TraceStyle};
use crate::dist;
use crate::features::{self, JobBaselines, ALIBABA_FEATURES, GOOGLE_FEATURES};
use crate::latency::{plan_job, LatencyFamily};
use crate::node::NodeModel;

/// Names of the feature columns the node-model overlay appends (in
/// order): co-resident task count on the task's node, and the node's
/// rolling straggler rate among its finished tasks.
pub const NODE_FEATURES: [&str; 2] = ["node_coresident", "node_strag_rate"];

/// Generates one job deterministically from `(config, job_id)`.
///
/// The job's RNG stream is derived from the suite seed and the job id, so
/// individual jobs can be regenerated without the rest of the suite.
///
/// # Panics
///
/// Panics if `config.checkpoints == 0` or the task range is empty (the
/// builder validates these, so only hand-rolled configs can trip it).
#[must_use]
pub fn generate_job(config: &SuiteConfig, job_id: u64) -> JobTrace {
    generate_job_detailed(config, job_id).0
}

/// Like [`generate_job`], but also returns each task's latent
/// [`crate::TaskPlan`] (ground-truth cause, decoy flag, signature).
///
/// The plans are *generator metadata*: predictors never see them. They
/// exist for cause-stratified evaluation and for tests that need to assert
/// on planted structure.
///
/// # Panics
///
/// Same conditions as [`generate_job`].
#[must_use]
pub fn generate_job_detailed(
    config: &SuiteConfig,
    job_id: u64,
) -> (JobTrace, Vec<crate::TaskPlan>) {
    assert!(config.checkpoints > 0, "need at least one checkpoint");
    let mut rng = StdRng::seed_from_u64(config.seed ^ job_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));

    let n_tasks = rng.gen_range(config.tasks_min..=config.tasks_max);
    let median = dist::uniform(&mut rng, 60.0, 600.0);
    let family = LatencyFamily::sample_with_severity(
        &mut rng,
        config.long_tail_fraction,
        config.straggler_severity,
    );
    let mut plans = plan_job(
        &mut rng,
        n_tasks,
        median,
        &family,
        &config.cause_mix,
        config.straggler_fraction,
        config.decoy_fraction,
    );

    // Checkpoint schedule: regular time intervals over the job's lifetime
    // (the paper's traces record task metrics "at regular time
    // checkpoints"), padded slightly past the slowest task so the replay
    // observes every completion. Regular spacing matters behaviorally: the
    // first prediction then lands after a sizeable share of the body has
    // finished, giving the per-job models real training support.
    let max_latency = plans
        .iter()
        .map(|p| p.latency)
        .fold(f64::NEG_INFINITY, f64::max);
    let horizon = max_latency * 1.02;
    let checkpoint_times: Vec<f64> = (1..=config.checkpoints)
        .map(|k| horizon * k as f64 / config.checkpoints as f64)
        .collect();

    let baselines = JobBaselines::sample(&mut rng);
    let tasks: Vec<TaskRecord> = plans
        .iter()
        .enumerate()
        .map(|(id, plan)| {
            let series = features::task_feature_series(
                &mut rng,
                config.style,
                plan,
                &baselines,
                &checkpoint_times,
            );
            TaskRecord::new(id, plan.latency, series)
        })
        .collect();

    let mut feature_names: Vec<String> = match config.style {
        TraceStyle::Google => GOOGLE_FEATURES.iter().map(|(n, _)| (*n).into()).collect(),
        TraceStyle::Alibaba => ALIBABA_FEATURES.iter().map(|(n, _)| (*n).into()).collect(),
    };

    // The node model is a pure overlay: the base stream above never saw
    // it, so a `None` model is bit-identical to the pre-node-model
    // generator. When enabled, co-located tasks are stretched by their
    // node's factor, the checkpoint schedule is re-derived (same formula
    // over the new max latency), snapshots are re-frozen at each task's
    // *new* finishing checkpoint, and two node feature columns are
    // appended (no extra RNG draws anywhere on this path).
    let placement = config.node_model.as_ref().map(|nm| {
        let model = NodeModel::build(nm, config.straggler_severity);
        (model.placement(job_id, n_tasks), model)
    });
    let (tasks, checkpoint_times, placement) = match placement {
        None => (tasks, checkpoint_times, None),
        Some((placement, model)) => {
            for (plan, &node) in plans.iter_mut().zip(&placement) {
                plan.latency *= model.factor(node);
            }
            let max_latency = plans
                .iter()
                .map(|p| p.latency)
                .fold(f64::NEG_INFINITY, f64::max);
            let horizon = max_latency * 1.02;
            let new_times: Vec<f64> = (1..=config.checkpoints)
                .map(|k| horizon * k as f64 / config.checkpoints as f64)
                .collect();

            // Per-node bookkeeping for the derived columns.
            let coresident: Vec<f64> = placement
                .iter()
                .map(|&n| placement.iter().filter(|&&m| m == n).count() as f64)
                .collect();
            let threshold = quantile(plans.iter().map(|p| p.latency).collect(), 0.9);
            // finishing ordinal of each task under the new schedule
            let fin_at: Vec<usize> = plans
                .iter()
                .map(|p| new_times.partition_point(|&t| t < p.latency))
                .collect();
            // rate[k][node] = straggler share among node's tasks finished
            // by checkpoint k (0 while none have finished).
            let node_count = model.node_count() as usize;
            let mut rate = vec![vec![0.0f64; node_count]; config.checkpoints];
            for (k, row) in rate.iter_mut().enumerate() {
                for (node, slot) in row.iter_mut().enumerate() {
                    let mut fin = 0u32;
                    let mut strag = 0u32;
                    for (t, plan) in plans.iter().enumerate() {
                        if placement[t] as usize == node && fin_at[t] <= k {
                            fin += 1;
                            if plan.latency >= threshold {
                                strag += 1;
                            }
                        }
                    }
                    if fin > 0 {
                        *slot = f64::from(strag) / f64::from(fin);
                    }
                }
            }

            let tasks: Vec<TaskRecord> = tasks
                .iter()
                .enumerate()
                .map(|(t, task)| {
                    let kstar = fin_at[t].min(config.checkpoints - 1);
                    let node = placement[t] as usize;
                    let series: Vec<Vec<f64>> = (0..config.checkpoints)
                        .map(|k| {
                            let e = k.min(kstar);
                            let mut snap = task.snapshot(e).to_vec();
                            snap.push(coresident[t]);
                            snap.push(rate[e][node]);
                            snap
                        })
                        .collect();
                    TaskRecord::new(t, plans[t].latency, series)
                })
                .collect();
            feature_names.extend(NODE_FEATURES.iter().map(|n| (*n).to_string()));
            (tasks, new_times, Some(placement))
        }
    };

    let trace = JobTrace::new(job_id, feature_names, checkpoint_times, tasks)
        .expect("generator produces structurally valid jobs");
    let trace = match placement {
        Some(nodes) => trace
            .with_nodes(nodes)
            .expect("placement covers every task"),
        None => trace,
    };
    (trace, plans)
}

/// Interpolated latency quantile (the same order-statistic interpolation
/// [`JobTrace::straggler_threshold`] uses, applied before the trace
/// object exists).
fn quantile(mut values: Vec<f64>, q: f64) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        values[lo]
    } else {
        let frac = pos - lo as f64;
        values[lo] * (1.0 - frac) + values[hi] * frac
    }
}

/// Generates the whole suite.
#[must_use]
pub fn generate_suite(config: &SuiteConfig) -> Vec<JobTrace> {
    (0..config.jobs as u64)
        .map(|job_id| generate_job(config, job_id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CauseMix;
    use proptest::prelude::*;

    fn tiny(style: TraceStyle) -> SuiteConfig {
        SuiteConfig::new(style)
            .with_jobs(2)
            .with_task_range(40, 60)
            .with_checkpoints(8)
            .with_seed(3)
    }

    #[test]
    fn google_job_shape() {
        let job = generate_job(&tiny(TraceStyle::Google), 0);
        assert_eq!(job.feature_dim(), 15);
        assert_eq!(job.checkpoint_count(), 8);
        assert!((40..=60).contains(&job.task_count()));
    }

    #[test]
    fn alibaba_job_shape() {
        let job = generate_job(&tiny(TraceStyle::Alibaba), 0);
        assert_eq!(job.feature_dim(), 4);
        assert_eq!(job.feature_names()[0], "cpu_avg");
    }

    #[test]
    fn deterministic_per_job_id() {
        let cfg = tiny(TraceStyle::Google);
        assert_eq!(generate_job(&cfg, 5), generate_job(&cfg, 5));
        assert_ne!(generate_job(&cfg, 5), generate_job(&cfg, 6));
    }

    #[test]
    fn final_checkpoint_covers_all_tasks() {
        let job = generate_job(&tiny(TraceStyle::Google), 1);
        let last = *job.checkpoint_times().last().unwrap();
        assert!(job.tasks().iter().all(|t| t.latency() <= last));
    }

    #[test]
    fn p90_threshold_separates_a_top_decile() {
        let cfg = tiny(TraceStyle::Google).with_task_range(200, 200);
        let job = generate_job(&cfg, 2);
        let thr = job.straggler_threshold(0.9);
        let stragglers = job.true_stragglers(thr).len();
        let frac = stragglers as f64 / job.task_count() as f64;
        assert!((0.05..=0.15).contains(&frac), "straggler fraction {frac}");
    }

    #[test]
    fn long_tail_jobs_have_threshold_below_half_max() {
        // Purely long-tailed suite: p90 ≪ max/2 (Figure 1 left).
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(6)
            .with_task_range(150, 200)
            .with_checkpoints(6)
            .with_long_tail_fraction(1.0)
            .with_seed(11);
        let mut below = 0;
        for job in generate_suite(&cfg) {
            if job.straggler_threshold(0.9) < 0.5 * job.max_latency() {
                below += 1;
            }
        }
        assert!(below >= 4, "only {below}/6 long-tail jobs below half-max");
    }

    #[test]
    fn close_tail_jobs_have_threshold_above_half_max() {
        let cfg = SuiteConfig::new(TraceStyle::Google)
            .with_jobs(6)
            .with_task_range(150, 200)
            .with_checkpoints(6)
            .with_long_tail_fraction(0.0)
            .with_seed(13);
        let mut above = 0;
        for job in generate_suite(&cfg) {
            if job.straggler_threshold(0.9) > 0.5 * job.max_latency() {
                above += 1;
            }
        }
        assert!(above >= 4, "only {above}/6 close-tail jobs above half-max");
    }

    #[test]
    fn suite_round_trips_through_csv() {
        let cfg = tiny(TraceStyle::Alibaba);
        let jobs = generate_suite(&cfg);
        let dir = std::env::temp_dir().join("nurd-trace-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("suite.csv");
        nurd_data::write_jobs_csv(&path, &jobs).unwrap();
        let parsed = nurd_data::read_jobs_csv(&path).unwrap();
        assert_eq!(parsed.len(), jobs.len());
        // Latencies and shapes survive the text round-trip exactly enough
        // for replay (floats print with full precision).
        assert_eq!(parsed[0].task_count(), jobs[0].task_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_features_are_finite() {
        let job = generate_job(&tiny(TraceStyle::Google), 7);
        for task in job.tasks() {
            for snap in task.snapshots() {
                assert!(snap.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn node_model_overlay_places_stretches_and_appends_columns() {
        use crate::node::{NodeModel, NodeModelConfig};
        let nm = NodeModelConfig::new(6).with_unhealthy(1, 1).with_seed(0x11);
        let base_cfg = tiny(TraceStyle::Google);
        let node_cfg = base_cfg.clone().with_node_model(nm);
        let base = generate_job(&base_cfg, 0);
        let noded = generate_job(&node_cfg, 0);

        // Placement exists, covers every task, and the derived columns
        // are appended after the base feature set.
        let placement = noded.node_placement().expect("placement attached");
        assert_eq!(placement.len(), noded.task_count());
        assert_eq!(noded.feature_dim(), base.feature_dim() + 2);
        assert_eq!(
            &noded.feature_names()[base.feature_dim()..],
            &["node_coresident", "node_strag_rate"]
        );

        // Tasks on unhealthy nodes are stretched by exactly their node's
        // factor; healthy-node tasks keep their base latency.
        let model = NodeModel::build(&nm, 1.0);
        for (t, task) in noded.tasks().iter().enumerate() {
            let factor = model.factor(placement[t]);
            let expect = base.tasks()[t].latency() * factor;
            assert!(
                (task.latency() - expect).abs() < 1e-9,
                "task {t} latency {} != base*factor {expect}",
                task.latency()
            );
        }

        // Frozen-after-completion holds for the rebuilt snapshots.
        for task in noded.tasks() {
            let kstar = noded
                .checkpoint_times()
                .iter()
                .position(|&ct| ct >= task.latency())
                .expect("horizon covers every task");
            for k in kstar..noded.checkpoint_count() {
                assert_eq!(task.snapshot(k), task.snapshot(kstar));
            }
        }

        // The sick node's rolling straggler rate ends high; an all-healthy
        // node's stays lower. Use the last checkpoint's column value.
        let sick = model.sick_nodes()[0];
        let last = noded.checkpoint_count() - 1;
        let rate_col = base.feature_dim() + 1;
        let sick_task = (0..noded.task_count()).find(|&t| placement[t] == sick);
        if let Some(t) = sick_task {
            let rate = noded.tasks()[t].snapshot(last)[rate_col];
            // The p90 threshold rises with the stretched tail, so not
            // every sick-node task ends above it — but a clear plurality
            // does, far above the ~10% fleet-wide base rate.
            assert!(rate > 0.3, "sick node rate {rate} should be elevated");
        }
    }

    #[test]
    fn disabled_node_model_is_bit_identical_to_default_config() {
        // `node_model: None` must not perturb a single RNG draw.
        let cfg = tiny(TraceStyle::Google);
        let mut explicit = cfg.clone();
        explicit.node_model = None;
        assert_eq!(generate_job(&cfg, 3), generate_job(&explicit, 3));
        let job = generate_job(&cfg, 3);
        assert!(job.node_placement().is_none());
        assert_eq!(job.feature_dim(), 15);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any seed yields a structurally valid job with ~10% stragglers.
        #[test]
        fn prop_generator_valid_for_any_seed(seed in 0u64..10_000) {
            let cfg = SuiteConfig::new(TraceStyle::Google)
                .with_jobs(1)
                .with_task_range(80, 120)
                .with_checkpoints(10)
                .with_seed(seed);
            let job = generate_job(&cfg, 0);
            let thr = job.straggler_threshold(0.9);
            let frac = job.true_stragglers(thr).len() as f64 / job.task_count() as f64;
            prop_assert!(frac > 0.0 && frac < 0.25);
            prop_assert!(job.warmup_checkpoint(0.04) < job.checkpoint_count());
        }

        /// Cause mixes with a single cause never plant other causes.
        #[test]
        fn prop_single_cause_mix(seed in 0u64..1000) {
            let cfg = SuiteConfig::new(TraceStyle::Google)
                .with_jobs(1)
                .with_task_range(50, 80)
                .with_checkpoints(5)
                .with_seed(seed)
                .with_cause_mix(CauseMix {
                    interference: 1.0,
                    data_skew: 0.0,
                    eviction: 0.0,
                    opaque: 0.0,
                });
            // EV counters can only come from evictions, which this mix forbids
            // (modulo the unconditional rare failures, which use FL not EV).
            let job = generate_job(&cfg, 0);
            for task in job.tasks() {
                let last = task.snapshots().last().unwrap();
                prop_assert_eq!(last[13], 0.0);
            }
        }
    }
}
