//! Per-job latency model: latency families, straggler causes, task plans.

use rand::Rng;

use crate::config::CauseMix;
use crate::dist;

/// Why a planted straggler is slow. The cause determines which features (if
/// any) carry its signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StragglerCause {
    /// Machine-level contention: the task is starved of CPU and suffers
    /// cache interference. Visible in CPU-share and CPI features from the
    /// start of execution.
    Interference,
    /// The task received a larger input shard. Visible in memory/disk
    /// features, ramping up as the input loads.
    DataSkew,
    /// The task was evicted and restarted. Visible as counter steps
    /// (Google traces only — Alibaba's 4 features hide it).
    Eviction,
    /// Slow for reasons invisible to monitoring. No feature signature.
    Opaque,
}

/// The two latency shapes of Figure 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyFamily {
    /// Stragglers land far above the body (threshold < half the maximum
    /// normalized latency — Figure 1 left). Strong feature signatures.
    LongTail {
        /// Log-space σ of the body log-normal.
        body_sigma: f64,
        /// Straggler latency multiplier range.
        factor: (f64, f64),
    },
    /// Stragglers sit just above the body (threshold > half the maximum —
    /// Figure 1 right). Weak feature signatures.
    CloseTail {
        /// Log-space σ of the body log-normal.
        body_sigma: f64,
        /// Straggler latency multiplier range.
        factor: (f64, f64),
    },
}

impl LatencyFamily {
    /// Draws a family for a job: long-tailed with probability
    /// `long_tail_fraction`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, long_tail_fraction: f64) -> Self {
        Self::sample_with_severity(rng, long_tail_fraction, 1.0)
    }

    /// Like [`LatencyFamily::sample`], but rescales each family's
    /// straggler multiplier range `(lo, hi)` to `1 + (x − 1) · severity`.
    ///
    /// `severity = 1.0` is the identity **bit-for-bit**: `1 + (x − 1)` is
    /// exact in f64 for the ranges used here, and the rescaling draws no
    /// extra random numbers, so the RNG stream — and therefore every
    /// downstream trace — is unchanged from [`LatencyFamily::sample`].
    /// `0.0` collapses stragglers into the body; `> 1.0` stretches the
    /// tail.
    pub fn sample_with_severity<R: Rng + ?Sized>(
        rng: &mut R,
        long_tail_fraction: f64,
        severity: f64,
    ) -> Self {
        let scale =
            |(lo, hi): (f64, f64)| (1.0 + (lo - 1.0) * severity, 1.0 + (hi - 1.0) * severity);
        if rng.gen_bool(long_tail_fraction.clamp(0.0, 1.0)) {
            LatencyFamily::LongTail {
                body_sigma: dist::uniform(rng, 0.28, 0.42),
                factor: scale((2.5, 6.0)),
            }
        } else {
            LatencyFamily::CloseTail {
                body_sigma: dist::uniform(rng, 0.35, 0.50),
                factor: scale((1.4, 1.9)),
            }
        }
    }

    /// Exponent coupling the input-shard size to latency. Long-tailed jobs
    /// are noise-dominant (latency mostly idiosyncratic); close-tailed jobs
    /// are work-dominant — their wide latency body *is* feature-predictable,
    /// which is what makes their top decile a continuum rather than a
    /// separate population (Figure 1 right).
    #[must_use]
    pub fn work_exponent(&self) -> f64 {
        match self {
            LatencyFamily::LongTail { .. } => 0.35,
            LatencyFamily::CloseTail { .. } => 0.55,
        }
    }

    /// Log-space σ of the per-task work (input shard size) distribution.
    #[must_use]
    pub fn work_sigma(&self) -> f64 {
        match self {
            LatencyFamily::LongTail { .. } => self.body_sigma() * 0.45,
            LatencyFamily::CloseTail { .. } => self.body_sigma() * 0.60,
        }
    }

    /// Log-space σ of the idiosyncratic latency noise.
    #[must_use]
    pub fn noise_sigma(&self) -> f64 {
        match self {
            LatencyFamily::LongTail { .. } => self.body_sigma() * 0.70,
            LatencyFamily::CloseTail { .. } => self.body_sigma() * 0.65,
        }
    }

    /// Whether this is the long-tailed family.
    #[must_use]
    pub fn is_long_tail(&self) -> bool {
        matches!(self, LatencyFamily::LongTail { .. })
    }

    /// Log-space σ of the body distribution.
    #[must_use]
    pub fn body_sigma(&self) -> f64 {
        match self {
            LatencyFamily::LongTail { body_sigma, .. }
            | LatencyFamily::CloseTail { body_sigma, .. } => *body_sigma,
        }
    }

    /// Draws a straggler latency multiplier.
    pub fn straggler_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let (lo, hi) = match self {
            LatencyFamily::LongTail { factor, .. } | LatencyFamily::CloseTail { factor, .. } => {
                *factor
            }
        };
        dist::uniform(rng, lo, hi)
    }

    /// How strongly straggler causes shift the feature space, relative to
    /// the straggler factor. Long-tail stragglers are very distinct in
    /// feature space; close-tail ones only mildly so. This is the coupling
    /// NURD's centroid calibration (ρ) exploits.
    #[must_use]
    pub fn signature_strength(&self, factor: f64) -> f64 {
        match self {
            LatencyFamily::LongTail { .. } => ((factor - 1.0) / 1.5).clamp(0.8, 2.2),
            LatencyFamily::CloseTail { .. } => ((factor - 1.0) / 2.0).clamp(0.08, 0.45),
        }
    }
}

/// The latent plan for one task, from which both its latency and its feature
/// time series derive.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskPlan {
    /// Final latency in seconds.
    pub latency: f64,
    /// Relative input-shard size (data skew multiplies it).
    pub work: f64,
    /// Machine slowdown multiplier (interference raises it).
    pub slow: f64,
    /// Number of eviction/restart events.
    pub evictions: u32,
    /// Straggler cause, if the task was planted as a straggler.
    pub cause: Option<StragglerCause>,
    /// Signature strength in [0, ~1.6]; how visible the cause is.
    pub signature: f64,
    /// Whether the task is a bursty feature-space decoy (fast but odd).
    pub decoy: bool,
}

/// Plans all tasks of one job.
///
/// `median` is the job's body median latency; `straggler_fraction` of tasks
/// are planted as stragglers with causes drawn from `mix`; `decoy_fraction`
/// of the remaining tasks get decoy features.
pub fn plan_job<R: Rng + ?Sized>(
    rng: &mut R,
    n_tasks: usize,
    median: f64,
    family: &LatencyFamily,
    mix: &CauseMix,
    straggler_fraction: f64,
    decoy_fraction: f64,
) -> Vec<TaskPlan> {
    let weights = mix.normalized();
    let mut plans = Vec::with_capacity(n_tasks);
    for _ in 0..n_tasks {
        // Body latent variables shared by stragglers and non-stragglers.
        // The family controls how strongly the input shard drives latency
        // (see [`LatencyFamily::work_exponent`]); the remainder is
        // idiosyncratic noise invisible to monitoring.
        let work = dist::lognormal(rng, 1.0, family.work_sigma());
        let slow = 1.0 + dist::normal(rng, 0.0, 0.04).abs();
        let noise = dist::lognormal(rng, 1.0, family.noise_sigma());
        let mut latency = median * work.powf(family.work_exponent()) * slow * noise;
        let mut evictions = 0u32;
        let mut cause = None;
        let mut signature = 0.0;
        let mut work_out = work;
        let mut slow_out = slow;

        if rng.gen_bool(straggler_fraction.clamp(0.0, 1.0)) {
            let factor = family.straggler_factor(rng);
            let c = draw_cause(rng, &weights);
            signature = family.signature_strength(factor);
            match c {
                StragglerCause::Interference => slow_out = slow * factor,
                StragglerCause::DataSkew => work_out = work * factor,
                StragglerCause::Eviction => {
                    evictions = 1 + (factor / 2.0).floor() as u32;
                }
                StragglerCause::Opaque => signature = 0.0,
            }
            latency *= factor;
            cause = Some(c);
        }

        let decoy = cause.is_none() && rng.gen_bool(decoy_fraction.clamp(0.0, 1.0));
        plans.push(TaskPlan {
            latency,
            work: work_out,
            slow: slow_out,
            evictions,
            cause,
            signature,
            decoy,
        });
    }
    plans
}

fn draw_cause<R: Rng + ?Sized>(rng: &mut R, weights: &[f64; 4]) -> StragglerCause {
    let mut target = rng.gen_range(0.0..1.0);
    let causes = [
        StragglerCause::Interference,
        StragglerCause::DataSkew,
        StragglerCause::Eviction,
        StragglerCause::Opaque,
    ];
    for (cause, &w) in causes.iter().zip(weights) {
        if target < w {
            return *cause;
        }
        target -= w;
    }
    StragglerCause::Opaque
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn long_tail_factors_exceed_close_tail() {
        let mut r = rng();
        let long = LatencyFamily::LongTail {
            body_sigma: 0.3,
            factor: (2.5, 6.0),
        };
        let close = LatencyFamily::CloseTail {
            body_sigma: 0.2,
            factor: (1.3, 1.75),
        };
        for _ in 0..50 {
            assert!(long.straggler_factor(&mut r) >= 2.5);
            assert!(close.straggler_factor(&mut r) < 1.75);
        }
    }

    #[test]
    fn signature_strength_couples_to_family() {
        let long = LatencyFamily::LongTail {
            body_sigma: 0.3,
            factor: (2.5, 6.0),
        };
        let close = LatencyFamily::CloseTail {
            body_sigma: 0.2,
            factor: (1.3, 1.75),
        };
        assert!(long.signature_strength(4.0) > close.signature_strength(1.5));
        assert!(close.signature_strength(1.5) <= 0.45);
    }

    #[test]
    fn plan_plants_requested_straggler_share() {
        let mut r = rng();
        let family = LatencyFamily::LongTail {
            body_sigma: 0.3,
            factor: (2.5, 6.0),
        };
        let plans = plan_job(
            &mut r,
            2000,
            100.0,
            &family,
            &CauseMix::default(),
            0.11,
            0.08,
        );
        let stragglers = plans.iter().filter(|p| p.cause.is_some()).count();
        let frac = stragglers as f64 / 2000.0;
        assert!((0.07..0.16).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn stragglers_are_slower_on_average() {
        let mut r = rng();
        let family = LatencyFamily::LongTail {
            body_sigma: 0.3,
            factor: (2.5, 6.0),
        };
        let plans = plan_job(
            &mut r,
            3000,
            100.0,
            &family,
            &CauseMix::default(),
            0.1,
            0.05,
        );
        let (mut s_sum, mut s_n, mut b_sum, mut b_n) = (0.0, 0, 0.0, 0);
        for p in &plans {
            if p.cause.is_some() {
                s_sum += p.latency;
                s_n += 1;
            } else {
                b_sum += p.latency;
                b_n += 1;
            }
        }
        assert!(s_sum / s_n as f64 > 2.0 * (b_sum / b_n as f64));
    }

    #[test]
    fn decoys_never_overlap_stragglers() {
        let mut r = rng();
        let family = LatencyFamily::CloseTail {
            body_sigma: 0.2,
            factor: (1.3, 1.75),
        };
        let plans = plan_job(&mut r, 1000, 50.0, &family, &CauseMix::default(), 0.2, 0.2);
        assert!(plans.iter().all(|p| !(p.decoy && p.cause.is_some())));
        assert!(plans.iter().any(|p| p.decoy));
    }

    #[test]
    fn eviction_cause_sets_counters() {
        let mut r = rng();
        let family = LatencyFamily::LongTail {
            body_sigma: 0.3,
            factor: (2.5, 6.0),
        };
        let mix = CauseMix {
            interference: 0.0,
            data_skew: 0.0,
            eviction: 1.0,
            opaque: 0.0,
        };
        let plans = plan_job(&mut r, 500, 100.0, &family, &mix, 0.3, 0.0);
        for p in plans.iter().filter(|p| p.cause.is_some()) {
            assert_eq!(p.cause, Some(StragglerCause::Eviction));
            assert!(p.evictions >= 1);
        }
    }

    #[test]
    fn opaque_stragglers_have_zero_signature() {
        let mut r = rng();
        let family = LatencyFamily::LongTail {
            body_sigma: 0.3,
            factor: (2.5, 6.0),
        };
        let mix = CauseMix {
            interference: 0.0,
            data_skew: 0.0,
            eviction: 0.0,
            opaque: 1.0,
        };
        let plans = plan_job(&mut r, 300, 100.0, &family, &mix, 0.5, 0.0);
        for p in plans.iter().filter(|p| p.cause.is_some()) {
            assert_eq!(p.signature, 0.0);
        }
    }

    #[test]
    fn severity_one_is_bit_identical_to_plain_sample() {
        for seed in 0..20 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let plain = LatencyFamily::sample(&mut a, 0.5);
            let scaled = LatencyFamily::sample_with_severity(&mut b, 0.5, 1.0);
            assert_eq!(plain, scaled, "seed {seed}");
            // The RNG streams stayed in lockstep too.
            assert_eq!(
                a.gen_range(0.0..1.0f64),
                b.gen_range(0.0..1.0f64),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn severity_rescales_factor_ranges() {
        let mut r = rng();
        // severity 0 collapses every multiplier to exactly 1.0.
        let flat = LatencyFamily::sample_with_severity(&mut r, 1.0, 0.0);
        assert_eq!(flat.straggler_factor(&mut r), 1.0);
        // severity 2 doubles the overshoot: LongTail (2.5, 6.0) → (4, 11).
        let harsh = LatencyFamily::sample_with_severity(&mut r, 1.0, 2.0);
        for _ in 0..50 {
            let f = harsh.straggler_factor(&mut r);
            assert!((4.0..11.0).contains(&f), "factor {f}");
        }
    }

    #[test]
    fn family_sampling_respects_fraction() {
        let mut r = rng();
        let all_long: Vec<bool> = (0..50)
            .map(|_| LatencyFamily::sample(&mut r, 1.0).is_long_tail())
            .collect();
        assert!(all_long.iter().all(|&b| b));
        let none_long: Vec<bool> = (0..50)
            .map(|_| LatencyFamily::sample(&mut r, 0.0).is_long_tail())
            .collect();
        assert!(none_long.iter().all(|&b| !b));
    }
}
