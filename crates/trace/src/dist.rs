//! Distribution samplers built on `rand`'s uniform source.
//!
//! `rand_distr` is not in the sanctioned dependency set, so the handful of
//! distributions the generator needs are implemented directly.

use rand::Rng;

/// Sample from `N(mu, sigma²)` via the Box–Muller transform.
///
/// # Panics
///
/// Panics if `sigma` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    // Guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mu + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample from a log-normal with the given **median** (`e^mu`) and log-space
/// standard deviation `sigma`.
///
/// # Panics
///
/// Panics if `median` is non-positive or `sigma` negative.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "median must be positive");
    (normal(rng, median.ln(), sigma)).exp()
}

/// Sample from a Pareto distribution with minimum `scale` and shape `alpha`
/// (smaller `alpha` = heavier tail).
///
/// # Panics
///
/// Panics if `scale` or `alpha` is non-positive.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, scale: f64, alpha: f64) -> f64 {
    assert!(
        scale > 0.0 && alpha > 0.0,
        "scale and alpha must be positive"
    );
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    scale / u.powf(1.0 / alpha)
}

/// Uniform sample in `[lo, hi)` (degenerate `lo == hi` returns `lo`).
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "lo must not exceed hi");
    if lo == hi {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = nurd_data_free_mean(&samples);
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut r = rng();
        let mut samples: Vec<f64> = (0..20_001).map(|_| lognormal(&mut r, 10.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 10.0).abs() < 0.5, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(pareto(&mut r, 5.0, 2.0) >= 5.0);
        }
    }

    #[test]
    fn pareto_heavier_tail_with_smaller_alpha() {
        let mut r = rng();
        let p99 = |alpha: f64, r: &mut StdRng| {
            let mut s: Vec<f64> = (0..10_000).map(|_| pareto(r, 1.0, alpha)).collect();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[9_900]
        };
        let heavy = p99(1.0, &mut r);
        let light = p99(4.0, &mut r);
        assert!(heavy > light, "heavy {heavy} <= light {light}");
    }

    #[test]
    fn uniform_bounds_and_degenerate() {
        let mut r = rng();
        for _ in 0..100 {
            let v = uniform(&mut r, 2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
        assert_eq!(uniform(&mut r, 5.0, 5.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn normal_rejects_negative_sigma() {
        let _ = normal(&mut rng(), 0.0, -1.0);
    }

    fn nurd_data_free_mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
