//! The fleet's machine axis: a seeded set of nodes with per-node health
//! states, task placement, and correlated straggler factors.
//!
//! Production stragglers are rarely i.i.d. across tasks — the dominant
//! failure mode is a *sick machine* slowing every task placed on it
//! (Guard's premise; the Alibaba traces show the same node-correlated
//! tails). [`NodeModel`] reproduces that: each node is healthy, degraded,
//! or sick, and carries a latency multiplier applied to every co-located
//! task. The model is an **overlay** on the base generator — when
//! [`crate::SuiteConfig::node_model`] is `None` the base RNG stream is
//! untouched and traces are bit-identical to the pre-node-model
//! generator; when enabled, all node-model draws come from a separate
//! seeded stream so the base job structure (task counts, causes, decoys,
//! feature signatures) is *still* the same.
//!
//! Severity composition: per-node multipliers are rescaled by the suite's
//! `straggler_severity` through the same monotone map the latency
//! families use (`1 + (x − 1) · severity`), so rescaling never reorders
//! nodes by sickness — property-tested in this module.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stream-splitting constant for per-job placement draws, so placement
/// never shares a stream with the base generator's per-job RNG.
const PLACEMENT_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// One node's health state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeHealth {
    /// Nominal: co-located tasks run at their planned latency.
    Healthy,
    /// Mildly impaired (contention, failing disk): co-located tasks are
    /// stretched by a factor drawn from
    /// [`NodeModelConfig::degraded_factor`].
    Degraded,
    /// Seriously impaired: co-located tasks are stretched by a factor
    /// drawn from [`NodeModelConfig::sick_factor`] — the machine every
    /// placed task straggles on.
    Sick,
}

/// Configuration for the fleet's node model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeModelConfig {
    /// Number of machines in the fleet.
    pub nodes: u32,
    /// How many of them are sick.
    pub sick_nodes: u32,
    /// How many of them are degraded.
    pub degraded_nodes: u32,
    /// Latency-multiplier range `(lo, hi)` for sick nodes (before
    /// severity rescaling).
    pub sick_factor: (f64, f64),
    /// Latency-multiplier range `(lo, hi)` for degraded nodes.
    pub degraded_factor: (f64, f64),
    /// Seed for the node model's own RNG stream (health assignment,
    /// factor draws, per-job placement). Independent of the suite seed so
    /// enabling the model never perturbs base-generator draws.
    pub seed: u64,
}

impl Default for NodeModelConfig {
    fn default() -> Self {
        NodeModelConfig {
            nodes: 16,
            sick_nodes: 1,
            degraded_nodes: 3,
            sick_factor: (3.0, 5.0),
            degraded_factor: (1.25, 1.8),
            seed: 0x0de_5eed,
        }
    }
}

impl NodeModelConfig {
    /// A fleet of `nodes` machines with defaults for everything else.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(nodes: u32) -> Self {
        assert!(nodes > 0, "fleet needs at least one node");
        NodeModelConfig {
            nodes,
            ..NodeModelConfig::default()
        }
    }

    /// Sets how many nodes are sick / degraded.
    ///
    /// # Panics
    ///
    /// Panics if `sick + degraded` exceeds the fleet size.
    #[must_use]
    pub fn with_unhealthy(mut self, sick: u32, degraded: u32) -> Self {
        assert!(
            sick + degraded <= self.nodes,
            "unhealthy nodes exceed fleet size"
        );
        self.sick_nodes = sick;
        self.degraded_nodes = degraded;
        self
    }

    /// Sets the node-model seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The realized fleet: per-node health and latency multipliers, built
/// deterministically from a [`NodeModelConfig`] and the suite's straggler
/// severity.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeModel {
    health: Vec<NodeHealth>,
    factors: Vec<f64>,
    config: NodeModelConfig,
}

impl NodeModel {
    /// Realizes the fleet: a seeded permutation picks which node ids are
    /// sick/degraded, raw multipliers are drawn per unhealthy node, and
    /// `severity` rescales them via `1 + (x − 1) · severity` (the same
    /// map [`crate::LatencyFamily`] uses, so severity means the same
    /// thing on both axes). The raw draws are severity-independent, which
    /// is what makes rescaling order-preserving.
    #[must_use]
    pub fn build(config: &NodeModelConfig, severity: f64) -> Self {
        let n = config.nodes as usize;
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Fisher–Yates over node ids: the permutation's prefix is sick,
        // the next run degraded, the rest healthy.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut health = vec![NodeHealth::Healthy; n];
        for &node in order.iter().take(config.sick_nodes as usize) {
            health[node] = NodeHealth::Sick;
        }
        for &node in order
            .iter()
            .skip(config.sick_nodes as usize)
            .take(config.degraded_nodes as usize)
        {
            health[node] = NodeHealth::Degraded;
        }

        let factors = health
            .iter()
            .map(|h| {
                let raw = match h {
                    NodeHealth::Healthy => 1.0,
                    NodeHealth::Degraded => {
                        rng.gen_range(config.degraded_factor.0..config.degraded_factor.1)
                    }
                    NodeHealth::Sick => rng.gen_range(config.sick_factor.0..config.sick_factor.1),
                };
                1.0 + (raw - 1.0) * severity
            })
            .collect();
        NodeModel {
            health,
            factors,
            config: *config,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.config.nodes
    }

    /// Health state of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the fleet.
    #[must_use]
    pub fn health(&self, node: u32) -> NodeHealth {
        self.health[node as usize]
    }

    /// Latency multiplier applied to tasks on `node` (1.0 for healthy).
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the fleet.
    #[must_use]
    pub fn factor(&self, node: u32) -> f64 {
        self.factors[node as usize]
    }

    /// All per-node factors, node-id order.
    #[must_use]
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// Ids of the sick nodes, ascending.
    #[must_use]
    pub fn sick_nodes(&self) -> Vec<u32> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| **h == NodeHealth::Sick)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Uniform task placement for one job, from the node model's own
    /// per-job stream (independent of the base generator's per-job RNG).
    #[must_use]
    pub fn placement(&self, job_id: u64, n_tasks: usize) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ job_id.wrapping_mul(PLACEMENT_SALT) ^ 0x1ACE_D0DE,
        );
        (0..n_tasks)
            .map(|_| rng.gen_range(0..self.config.nodes as usize) as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NodeModelConfig {
        NodeModelConfig::new(8)
            .with_unhealthy(1, 2)
            .with_seed(0xBAD)
    }

    #[test]
    fn build_is_deterministic_and_counts_match() {
        let a = NodeModel::build(&cfg(), 1.0);
        let b = NodeModel::build(&cfg(), 1.0);
        assert_eq!(a, b);
        assert_eq!(a.sick_nodes().len(), 1);
        let degraded = (0..8)
            .filter(|&n| a.health(n) == NodeHealth::Degraded)
            .count();
        assert_eq!(degraded, 2);
        for n in 0..8 {
            match a.health(n) {
                NodeHealth::Healthy => assert_eq!(a.factor(n), 1.0),
                NodeHealth::Degraded => assert!(a.factor(n) > 1.0 && a.factor(n) < 2.0),
                NodeHealth::Sick => assert!(a.factor(n) >= 3.0),
            }
        }
    }

    #[test]
    fn placement_is_deterministic_per_job_and_in_range() {
        let model = NodeModel::build(&cfg(), 1.0);
        let p1 = model.placement(3, 100);
        assert_eq!(p1, model.placement(3, 100));
        assert_ne!(p1, model.placement(4, 100));
        assert!(p1.iter().all(|&n| n < 8));
    }

    #[test]
    fn severity_rescaling_preserves_factor_ordering() {
        let lo = NodeModel::build(&cfg(), 0.5);
        let hi = NodeModel::build(&cfg(), 2.0);
        let rank = |m: &NodeModel| {
            let mut ids: Vec<u32> = (0..8).collect();
            ids.sort_by(|&a, &b| m.factor(a).total_cmp(&m.factor(b)).then(a.cmp(&b)));
            ids
        };
        assert_eq!(rank(&lo), rank(&hi));
        assert_eq!(lo.sick_nodes(), hi.sick_nodes());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Severity rescaling on a node-correlated fleet never
            /// reorders nodes by their straggler factor: the map
            /// `1 + (x − 1)·s` is monotone in `x` for any `s > 0`, and
            /// the raw draws are severity-independent. This is the
            /// severity/node-model composition contract.
            #[test]
            fn prop_severity_preserves_per_node_factor_ordering(
                seed in 0u64..10_000,
                sev_a in 0.1f64..4.0,
                sev_b in 0.1f64..4.0,
            ) {
                let cfg = NodeModelConfig::new(12)
                    .with_unhealthy(2, 4)
                    .with_seed(seed);
                let a = NodeModel::build(&cfg, sev_a);
                let b = NodeModel::build(&cfg, sev_b);
                prop_assert_eq!(a.sick_nodes(), b.sick_nodes());
                let rank = |m: &NodeModel| {
                    let mut ids: Vec<u32> = (0..12).collect();
                    ids.sort_by(|&x, &y| {
                        m.factor(x).total_cmp(&m.factor(y)).then(x.cmp(&y))
                    });
                    ids
                };
                prop_assert_eq!(rank(&a), rank(&b));
                // Unhealthy nodes stay strictly above healthy ones at any
                // positive severity.
                for n in 0..12 {
                    if a.health(n) == NodeHealth::Healthy {
                        prop_assert_eq!(a.factor(n), 1.0);
                    } else {
                        prop_assert!(a.factor(n) > 1.0);
                    }
                }
            }
        }
    }
}
