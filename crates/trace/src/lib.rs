//! Synthetic production-trace substrate for the NURD reproduction.
//!
//! The paper evaluates on the Google 2011 and Alibaba 2017/2018 cluster
//! traces, which cannot ship with this repository. This crate generates
//! synthetic traces that preserve the properties the paper's evaluation
//! exercises (see `DESIGN.md` §3 for the substitution argument):
//!
//! * **p90 stragglers** — the top latency decile per job, with a
//!   controllable gap above the body;
//! * **heterogeneous latency shapes** — long-tailed jobs (straggler latency
//!   far above the threshold, Figure 1 left) and close-tailed jobs
//!   (threshold above half the maximum latency, Figure 1 right);
//! * **cause-dependent feature signatures** — machine interference shows in
//!   CPU/CPI features, data skew in memory/disk features, evictions in
//!   counter features, and *opaque* stragglers show nothing;
//! * **feature-space decoys** — bursty but fast tasks that fool pure
//!   outlier detection;
//! * **weaker Alibaba features** — only 4 columns, hiding eviction and
//!   microarchitectural signals entirely.
//!
//! # Example
//!
//! ```
//! use nurd_trace::{SuiteConfig, TraceStyle};
//!
//! let config = SuiteConfig::new(TraceStyle::Google).with_jobs(2).with_seed(7);
//! let jobs = nurd_trace::generate_suite(&config);
//! assert_eq!(jobs.len(), 2);
//! assert_eq!(jobs[0].feature_dim(), 15);
//! ```

mod config;
mod dist;
mod features;
mod fleet;
mod generator;
mod latency;
mod node;

pub use config::{CauseMix, SuiteConfig, TraceStyle};
pub use dist::{lognormal, normal, pareto, uniform};
pub use features::{ALIBABA_FEATURES, GOOGLE_FEATURES};
pub use fleet::{
    diurnal_fleet_events, fleet_events, interleave_events, producer_streams, staggered_fleet_events,
};
pub use generator::{generate_job, generate_job_detailed, generate_suite, NODE_FEATURES};
pub use latency::{LatencyFamily, StragglerCause, TaskPlan};
pub use node::{NodeHealth, NodeModel, NodeModelConfig};
