//! The streaming engine: sharded dispatch, mid-stream admission,
//! per-job finalization, back-pressure, parallel drains, reports.

use nurd_data::{JobSpec, OnlinePredictor, TaskEvent};
use nurd_runtime::ThreadPool;
use nurd_sim::ReplayOutcome;

use crate::lifecycle::{FinalizeReason, JobPhase, OverloadCounters, OverloadPolicy};
use crate::shard::Shard;

/// Builds a fresh predictor for an admitted job — the serving analogue of
/// the per-job factories in `nurd-baselines`' method registry. Invoked by
/// a shard drain when it encounters the job's
/// [`TaskEvent::JobStart`], so it must be `Sync` (drains run in
/// parallel).
pub type PredictorFactory = Box<dyn Fn(&JobSpec) -> Box<dyn OnlinePredictor + Send> + Send + Sync>;

/// Engine tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Number of shards jobs are hashed across. Each shard is drained by
    /// one pool task, so this bounds the engine's parallelism; it never
    /// affects its output.
    pub shards: usize,
    /// Warmup quorum before a job's predictions start, as a fraction of
    /// its tasks (the paper's 4% — must match the replay config when
    /// comparing reports against `nurd_sim::replay_job`).
    pub warmup_fraction: f64,
    /// Per-shard ingress queue bound. `None` (the default) is unbounded;
    /// `Some(n)` makes [`Engine::push`] apply the [`OverloadPolicy`] once
    /// a shard holds `n` undrained events.
    pub queue_capacity: Option<usize>,
    /// What to do with a push to a full shard queue (see
    /// [`OverloadPolicy`]; only the default `Block` is lossless).
    pub overload: OverloadPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            warmup_fraction: 0.04,
            queue_capacity: None,
            overload: OverloadPolicy::Block,
        }
    }
}

/// Everything the engine measured for one job, emitted when the job
/// finalizes. `outcome` is bit-for-bit the [`ReplayOutcome`] a sequential
/// `nurd_sim::replay_job` of the same job with the same predictor
/// configuration produces — the engine's central correctness contract,
/// preserved for jobs that arrive and depart mid-stream.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job identifier.
    pub job: u64,
    /// Checkpoints at which the predictor was actually invoked.
    pub checkpoints_scored: usize,
    /// What ended the job's stream (deterministic per stream — safe to
    /// compare across shard counts and interleavings).
    pub finalized: FinalizeReason,
    /// Protocol scoring, identical to sequential replay.
    pub outcome: ReplayOutcome,
}

/// The engine's final output: per-job reports in job-id order. Equal
/// (`PartialEq`) across *any* shard count and *any* event interleaving of
/// the same per-job streams — the determinism property test in
/// `tests/determinism.rs` enforces exactly this (the overload counters
/// stay zero under the lossless default config; a lossy overload policy
/// is the one way to forfeit the property, and the counters are how an
/// operator sees that it happened).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Reports of jobs still unreported at [`Engine::finish`] —
    /// everything not already handed out by [`Engine::take_finalized`] —
    /// ascending job id.
    pub jobs: Vec<JobReport>,
    /// Total events ingested, lifecycle events included. Orphans (events
    /// for never-admitted jobs) and stale events (events arriving after
    /// their job finalized) are counted here and in [`EngineStats`] but
    /// applied to no job.
    pub events: usize,
    /// Fleet-wide overload *losses* (zero under the unbounded default
    /// and under the lossless `Block` policy; nonzero exactly when a
    /// lossy policy dropped events and forfeited determinism for the
    /// affected jobs). Blocked-push counts are scheduling-dependent and
    /// therefore live in [`EngineStats::blocked_pushes`], not here.
    pub overload: OverloadCounters,
}

impl EngineReport {
    /// The report of job `job`, if this report carries it.
    #[must_use]
    pub fn job(&self, job: u64) -> Option<&JobReport> {
        self.jobs.iter().find(|r| r.job == job)
    }

    /// Mean end-of-job F1 across jobs (macro average, as in Table 3).
    #[must_use]
    pub fn macro_f1(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|r| r.outcome.confusion.f1())
            .sum::<f64>()
            / self.jobs.len() as f64
    }
}

/// Scheduling-dependent diagnostics — deliberately **not** part of
/// [`EngineReport`], because per-shard load varies with the shard count
/// while the report must not. `docs/OPERATIONS.md` explains how to read
/// each counter in production.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Configured shard count.
    pub shards: usize,
    /// *Live* (admitted, not yet finalized) jobs per shard — this is the
    /// engine's resident-memory footprint, and it shrinks as jobs
    /// finalize.
    pub jobs_per_shard: Vec<usize>,
    /// Events ingested per shard (orphans and stale events included).
    pub events_per_shard: Vec<usize>,
    /// Jobs finalized so far, fleet-wide.
    pub finalized_jobs: usize,
    /// Events whose job was never admitted (counted, then dropped).
    pub orphan_events: usize,
    /// Events that arrived after their job finalized (counted, then
    /// dropped). A canonical stream produces a benign tail of these when
    /// a job finalizes early because every task finished; after an
    /// explicit `JobEnd` they indicate a misbehaving producer.
    pub stale_events: usize,
    /// Structurally invalid events rejected during application: unknown
    /// task id, feature width differing from the job's
    /// [`JobSpec::feature_dim`], duplicate completion, or a barrier that
    /// is not the job's next expected ordinal (e.g. a duplicate from
    /// at-least-once delivery). Rejection protects the contract both
    /// ways: no malformed event can panic a drain, and no replayed
    /// barrier can re-score a closed checkpoint.
    pub rejected_events: usize,
    /// Pushes that found a full queue under [`OverloadPolicy::Block`]
    /// and drained the shard inline before enqueueing. Lossless, but
    /// scheduling-dependent (varies with shard count and drain timing),
    /// hence here and not in [`EngineReport`].
    pub blocked_pushes: usize,
    /// Overload loss accounting (see [`OverloadCounters`]).
    pub overload: OverloadCounters,
}

/// A multi-job **streaming** straggler-prediction engine.
///
/// Events are [pushed](Engine::push) in any cross-job interleaving
/// (per-job order must be checkpoint order, bracketed by
/// [`TaskEvent::JobStart`] / [`TaskEvent::JobEnd`]), and
/// [`Engine::drain`] applies everything queued — each shard on its own
/// `nurd-runtime` task, in parallel. Jobs are admitted *mid-stream* when
/// a drain first sees their `JobStart` (which carries the [`JobSpec`] —
/// there is no up-front registry), and finalized individually when their
/// stream ends, at which point their entire state is dropped and their
/// [`JobReport`] becomes available to [`Engine::take_finalized`].
/// Because a job's entire state lives in exactly one shard (job id hash)
/// and shards share nothing, the engine's output is independent of shard
/// count, drain batching, and cross-job interleaving.
///
/// # Example
///
/// Admission → drain → finalization, all through the stream:
///
/// ```
/// use nurd_runtime::ThreadPool;
/// use nurd_serve::{Engine, EngineConfig, FinalizeReason, JobPhase};
/// # use nurd_data::{Checkpoint, JobSpec, OnlinePredictor, TaskEvent};
/// # struct Never;
/// # impl OnlinePredictor for Never {
/// #     fn name(&self) -> &str { "NEVER" }
/// #     fn predict(&mut self, _: &Checkpoint<'_>) -> Vec<usize> { Vec::new() }
/// # }
///
/// let pool = ThreadPool::new(2);
/// let mut engine = Engine::new(EngineConfig::default(), Box::new(|_| Box::new(Never)));
///
/// // 1. Admission travels in the stream — no up-front registry.
/// engine.push(TaskEvent::JobStart {
///     spec: JobSpec { job: 1, threshold: 100.0, task_count: 2, feature_dim: 1, checkpoints: 1 },
/// });
/// engine.push(TaskEvent::Barrier { job: 1, ordinal: 0, time: 50.0 });
///
/// // 2. Drain applies the queued events (admits, scores, finalizes).
/// engine.drain(&pool);
/// assert_eq!(engine.job_phase(1), Some(JobPhase::Finalized));
///
/// // 3. The job's report is available mid-stream, long before finish.
/// let done = engine.take_finalized();
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].finalized, FinalizeReason::StreamComplete);
///
/// // finish() reports only jobs not already taken.
/// assert!(engine.finish(&pool).jobs.is_empty());
/// ```
pub struct Engine {
    config: EngineConfig,
    factory: PredictorFactory,
    shards: Vec<Shard>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("shards", &self.shards)
            .finish()
    }
}

impl Engine {
    /// Creates an engine; `factory` builds one fresh predictor per
    /// admitted job (shard count is clamped to ≥ 1).
    #[must_use]
    pub fn new(config: EngineConfig, factory: PredictorFactory) -> Self {
        let shards = config.shards.max(1);
        Engine {
            shards: (0..shards)
                .map(|_| Shard::new(config.warmup_fraction))
                .collect(),
            config,
            factory,
        }
    }

    /// The shard a job id hashes to (SplitMix64 finalizer — job ids are
    /// often sequential, and a plain modulo would then stripe neighbors
    /// onto neighboring shards *and* collide under power-of-two counts).
    #[must_use]
    pub fn shard_of(&self, job: u64) -> usize {
        let mut z = job.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.shards.len() as u64) as usize
    }

    /// Convenience admission for callers that hold specs out of band: it
    /// simply pushes a [`TaskEvent::JobStart`] carrying `spec`, so
    /// admission stays FIFO-ordered with the job's other queued events
    /// (and is subject to the same overload policy). A stream that
    /// carries its own `JobStart` events does not need this.
    pub fn admit(&mut self, spec: JobSpec) {
        self.push(TaskEvent::JobStart { spec });
    }

    /// Enqueues one event on its job's shard (cheap: a hash plus a queue
    /// push; all model work happens in [`Engine::drain`]). The event's
    /// job must have a [`TaskEvent::JobStart`] earlier in its stream — an
    /// event drained before its job's admission is an orphan (counted,
    /// dropped, and *not* replayed by a later admission).
    ///
    /// If the shard's queue is at [`EngineConfig::queue_capacity`], the
    /// configured [`OverloadPolicy`] applies: `Block` drains the shard on
    /// this thread and then enqueues (lossless back-pressure),
    /// `ShedOldest` evicts the oldest queued event, `RejectNew` drops
    /// `event`. All three are counted — losses in
    /// [`EngineStats::overload`], blocked pushes in
    /// [`EngineStats::blocked_pushes`].
    pub fn push(&mut self, event: TaskEvent) {
        let idx = self.shard_of(event.job());
        if let Some(capacity) = self.config.queue_capacity {
            if self.shards[idx].queued() >= capacity.max(1) {
                match self.config.overload {
                    OverloadPolicy::Block => {
                        let shard = &mut self.shards[idx];
                        shard.blocked_pushes += 1;
                        shard.drain(&self.factory);
                    }
                    OverloadPolicy::ShedOldest => self.shards[idx].shed_oldest(),
                    OverloadPolicy::RejectNew => {
                        self.shards[idx].overload.rejected_ingress += 1;
                        return;
                    }
                }
            }
        }
        self.shards[idx].enqueue(event);
    }

    /// Enqueues a batch of events.
    pub fn push_all(&mut self, events: impl IntoIterator<Item = TaskEvent>) {
        for event in events {
            self.push(event);
        }
    }

    /// Applies every queued event: shards with pending work each become
    /// one pool task (the calling thread participates). May be called any
    /// number of times at any batching — per-job results are identical,
    /// provided every event was pushed after its job's `JobStart` (an
    /// early push only survives to a later admission while it sits
    /// undrained; see [`Engine::push`]).
    pub fn drain(&mut self, pool: &ThreadPool) {
        let factory = &self.factory;
        let pending: Vec<&mut Shard> = self.shards.iter_mut().filter(|s| s.queued() > 0).collect();
        if pending.is_empty() {
            return;
        }
        pool.scope(|scope| {
            for shard in pending {
                scope.spawn(move || shard.drain(factory));
            }
        });
    }

    /// Takes the reports of jobs finalized since the last take (job-id
    /// order) — the mid-stream observation channel. A report taken here
    /// is *not* repeated by [`Engine::finish`].
    pub fn take_finalized(&mut self) -> Vec<JobReport> {
        let mut reports: Vec<JobReport> = self
            .shards
            .iter_mut()
            .flat_map(Shard::take_finalized)
            .collect();
        reports.sort_by_key(|r| r.job);
        reports
    }

    /// Where `job` sits in its lifecycle, judging by *drained* state
    /// (`None` = never admitted, or its `JobStart` is still queued).
    #[must_use]
    pub fn job_phase(&self, job: u64) -> Option<JobPhase> {
        self.shards[self.shard_of(job)].phase_of(job)
    }

    /// Scheduling diagnostics (see [`EngineStats`]).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            shards: self.shards.len(),
            jobs_per_shard: self.shards.iter().map(Shard::job_count).collect(),
            events_per_shard: self.shards.iter().map(|s| s.events_processed).collect(),
            finalized_jobs: self.shards.iter().map(Shard::finalized_count).sum(),
            orphan_events: self.shards.iter().map(|s| s.orphan_events).sum(),
            stale_events: self.shards.iter().map(|s| s.stale_events).sum(),
            rejected_events: self.shards.iter().map(|s| s.rejected_events).sum(),
            blocked_pushes: self.shards.iter().map(|s| s.blocked_pushes).sum(),
            overload: self.overload(),
        }
    }

    fn overload(&self) -> OverloadCounters {
        self.shards
            .iter()
            .fold(OverloadCounters::default(), |acc, s| acc.merged(s.overload))
    }

    /// Drains outstanding events, finalizes every still-live job (reason
    /// [`FinalizeReason::EngineFinish`]) and produces the final report:
    /// all not-yet-taken per-job results in ascending job-id order.
    #[must_use]
    pub fn finish(mut self, pool: &ThreadPool) -> EngineReport {
        self.drain(pool);
        let overload = self.overload();
        let mut jobs: Vec<JobReport> = self
            .shards
            .iter_mut()
            .flat_map(Shard::finish_reports)
            .collect();
        jobs.sort_by_key(|r| r.job);
        let events = self.shards.iter().map(|s| s.events_processed).sum();
        EngineReport {
            jobs,
            events,
            overload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_data::Checkpoint;

    /// Flags every running task at its first scored checkpoint.
    struct FlagAll;
    impl OnlinePredictor for FlagAll {
        fn name(&self) -> &str {
            "ALL"
        }
        fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
            checkpoint.running.iter().map(|r| r.id).collect()
        }
    }

    fn factory() -> PredictorFactory {
        Box::new(|_| Box::new(FlagAll))
    }

    fn spec(job: u64) -> JobSpec {
        JobSpec {
            job,
            threshold: 10.0,
            task_count: 3,
            feature_dim: 1,
            checkpoints: 2,
        }
    }

    fn tiny_events(job: u64) -> Vec<TaskEvent> {
        vec![
            TaskEvent::Submitted { job, task: 0 },
            TaskEvent::Submitted { job, task: 1 },
            TaskEvent::Submitted { job, task: 2 },
            TaskEvent::Finished {
                job,
                task: 0,
                ordinal: 0,
                time: 4.0,
                features: vec![0.1],
                latency: 2.0,
            },
            TaskEvent::Progress {
                job,
                task: 1,
                ordinal: 0,
                time: 4.0,
                features: vec![0.5],
            },
            TaskEvent::Progress {
                job,
                task: 2,
                ordinal: 0,
                time: 4.0,
                features: vec![0.9],
            },
            TaskEvent::Barrier {
                job,
                ordinal: 0,
                time: 4.0,
            },
            TaskEvent::Finished {
                job,
                task: 1,
                ordinal: 1,
                time: 8.0,
                features: vec![0.5],
                latency: 6.0,
            },
            TaskEvent::Progress {
                job,
                task: 2,
                ordinal: 1,
                time: 8.0,
                features: vec![0.9],
            },
            TaskEvent::Barrier {
                job,
                ordinal: 1,
                time: 8.0,
            },
        ]
    }

    #[test]
    fn flags_stick_and_reports_sort_by_job_id() {
        let pool = ThreadPool::new(2);
        let mut engine = Engine::new(
            EngineConfig {
                shards: 3,
                ..EngineConfig::default()
            },
            factory(),
        );
        for job in [9u64, 2, 5] {
            engine.admit(spec(job));
            engine.push_all(tiny_events(job));
        }
        let report = engine.finish(&pool);
        assert_eq!(
            report.jobs.iter().map(|r| r.job).collect::<Vec<_>>(),
            vec![2, 5, 9]
        );
        for r in &report.jobs {
            // Task 0 finished before warmup (1 task quorum at ckpt 0);
            // tasks 1 and 2 were running at the first scored checkpoint
            // and FlagAll flags both, permanently.
            assert_eq!(r.outcome.flagged_at[0], None);
            assert_eq!(r.outcome.flagged_at[1], Some(0));
            assert_eq!(r.outcome.flagged_at[2], Some(0));
            // Flagged task 1 finished under the threshold: false positive;
            // task 2 never finished in-stream: counted a straggler.
            assert_eq!(r.outcome.confusion.false_positives, 1);
            assert_eq!(r.outcome.confusion.true_positives, 1);
            // The last declared barrier closed the stream.
            assert_eq!(r.finalized, FinalizeReason::StreamComplete);
        }
        // 10 task events + 1 JobStart per job.
        assert_eq!(report.events, 33);
        assert_eq!(report.overload, OverloadCounters::default());
    }

    #[test]
    fn orphan_events_are_counted_not_fatal() {
        let pool = ThreadPool::new(1);
        let mut engine = Engine::new(EngineConfig::default(), factory());
        engine.admit(spec(1));
        engine.push_all(tiny_events(1));
        engine.push(TaskEvent::Barrier {
            job: 999,
            ordinal: 0,
            time: 1.0,
        });
        engine.drain(&pool);
        assert_eq!(engine.stats().orphan_events, 1);
        let report = engine.finish(&pool);
        assert_eq!(report.jobs.len(), 1);
    }

    #[test]
    fn malformed_events_are_rejected_not_fatal() {
        let pool = ThreadPool::new(1);
        let clean = {
            let mut engine = Engine::new(EngineConfig::default(), factory());
            engine.admit(spec(1));
            engine.push_all(tiny_events(1));
            engine.finish(&pool)
        };
        let mut engine = Engine::new(EngineConfig::default(), factory());
        engine.admit(spec(1));
        let mut events = tiny_events(1);
        // Ragged snapshot (spec says feature_dim = 1) and an unknown task
        // id, inserted before the first barrier...
        events.insert(
            3,
            TaskEvent::Progress {
                job: 1,
                task: 1,
                ordinal: 0,
                time: 4.0,
                features: vec![0.5, 0.5, 0.5],
            },
        );
        events.insert(4, TaskEvent::Submitted { job: 1, task: 99 });
        // ...plus a duplicate completion and a replayed barrier *before*
        // the final barrier, while the job is still live.
        let last = events.len() - 1;
        events.insert(
            last,
            TaskEvent::Finished {
                job: 1,
                task: 0,
                ordinal: 1,
                time: 8.0,
                features: vec![0.1],
                latency: 2.0,
            },
        );
        events.insert(
            last + 1,
            TaskEvent::Barrier {
                job: 1,
                ordinal: 0,
                time: 4.0,
            },
        );
        engine.push_all(events);
        engine.drain(&pool);
        assert_eq!(engine.stats().rejected_events, 4);
        let report = engine.finish(&pool);
        // The four bad events changed nothing: same outcome as a clean run.
        assert_eq!(report.jobs[0].outcome, clean.jobs[0].outcome);
        assert_eq!(
            report.jobs[0].checkpoints_scored, clean.jobs[0].checkpoints_scored,
            "replayed barrier must not re-score a closed checkpoint"
        );
    }

    #[test]
    fn shard_hash_is_stable_and_in_range() {
        let engine = Engine::new(
            EngineConfig {
                shards: 8,
                ..EngineConfig::default()
            },
            factory(),
        );
        for job in 0..100u64 {
            let s = engine.shard_of(job);
            assert!(s < 8);
            assert_eq!(s, engine.shard_of(job));
        }
        // The finalizer spreads sequential ids (not all in one shard).
        let shards: std::collections::HashSet<usize> =
            (0..100u64).map(|j| engine.shard_of(j)).collect();
        assert!(shards.len() >= 4, "sequential ids clumped: {shards:?}");
    }

    #[test]
    fn drain_batching_does_not_change_the_report() {
        let pool = ThreadPool::new(2);
        let build = || Engine::new(EngineConfig::default(), factory());
        let mut one_shot = build();
        let mut batched = build();
        let events: Vec<TaskEvent> = [1u64, 2, 3, 4]
            .iter()
            .flat_map(|&j| {
                let mut stream = vec![TaskEvent::JobStart { spec: spec(j) }];
                stream.extend(tiny_events(j));
                stream
            })
            .collect();
        one_shot.push_all(events.clone());
        for chunk in events.chunks(7) {
            batched.push_all(chunk.to_vec());
            batched.drain(&pool);
        }
        assert_eq!(one_shot.finish(&pool), batched.finish(&pool));
    }

    #[test]
    fn finalization_frees_job_state_and_take_finalized_drains_reports() {
        let pool = ThreadPool::new(1);
        let mut engine = Engine::new(EngineConfig::default(), factory());
        engine.admit(spec(1));
        engine.push_all(tiny_events(1));
        engine.drain(&pool);
        // The last barrier finalized the job: no live state remains.
        let stats = engine.stats();
        assert_eq!(stats.jobs_per_shard.iter().sum::<usize>(), 0);
        assert_eq!(stats.finalized_jobs, 1);
        assert_eq!(engine.job_phase(1), Some(JobPhase::Finalized));
        let taken = engine.take_finalized();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].job, 1);
        assert!(engine.take_finalized().is_empty(), "take drains");
        // finish() does not repeat a taken report.
        assert!(engine.finish(&pool).jobs.is_empty());
    }
}
