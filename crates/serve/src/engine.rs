//! The multi-tenant engine: sharded dispatch, parallel drains, reports.

use nurd_data::{JobSpec, OnlinePredictor, TaskEvent};
use nurd_runtime::ThreadPool;
use nurd_sim::ReplayOutcome;

use crate::shard::Shard;

/// Builds a fresh predictor for an admitted job — the serving analogue of
/// the per-job factories in `nurd-baselines`' method registry.
pub type PredictorFactory = Box<dyn Fn(&JobSpec) -> Box<dyn OnlinePredictor + Send> + Send + Sync>;

/// Engine tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Number of shards jobs are hashed across. Each shard is drained by
    /// one pool task, so this bounds the engine's parallelism; it never
    /// affects its output.
    pub shards: usize,
    /// Warmup quorum before a job's predictions start, as a fraction of
    /// its tasks (the paper's 4% — must match the replay config when
    /// comparing reports against `nurd_sim::replay_job`).
    pub warmup_fraction: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            warmup_fraction: 0.04,
        }
    }
}

/// Everything the engine measured for one job. `outcome` is bit-for-bit
/// the [`ReplayOutcome`] a sequential `nurd_sim::replay_job` of the same
/// job with the same predictor configuration produces — the engine's
/// central correctness contract.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job identifier.
    pub job: u64,
    /// Checkpoints at which the predictor was actually invoked.
    pub checkpoints_scored: usize,
    /// Protocol scoring, identical to sequential replay.
    pub outcome: ReplayOutcome,
}

/// The engine's final output: per-job reports in job-id order. Equal
/// (`PartialEq`) across *any* shard count and *any* event interleaving of
/// the same per-job streams — the determinism property test in
/// `tests/determinism.rs` enforces exactly this.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Per-job results, ascending job id.
    pub jobs: Vec<JobReport>,
    /// Total events ingested — including orphans (events for never-
    /// admitted jobs), which are counted here and in
    /// [`EngineStats::orphan_events`] but applied to no job.
    pub events: usize,
}

impl EngineReport {
    /// The report of job `job`, if it was admitted.
    #[must_use]
    pub fn job(&self, job: u64) -> Option<&JobReport> {
        self.jobs.iter().find(|r| r.job == job)
    }

    /// Mean end-of-job F1 across jobs (macro average, as in Table 3).
    #[must_use]
    pub fn macro_f1(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|r| r.outcome.confusion.f1())
            .sum::<f64>()
            / self.jobs.len() as f64
    }
}

/// Scheduling-dependent diagnostics — deliberately **not** part of
/// [`EngineReport`], because per-shard load varies with the shard count
/// while the report must not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Configured shard count.
    pub shards: usize,
    /// Jobs admitted per shard.
    pub jobs_per_shard: Vec<usize>,
    /// Events ingested per shard (orphans included).
    pub events_per_shard: Vec<usize>,
    /// Events whose job was never admitted (counted, then dropped).
    pub orphan_events: usize,
    /// Structurally invalid events rejected during application: unknown
    /// task id, feature width differing from the job's
    /// [`JobSpec::feature_dim`], duplicate completion, or a barrier that
    /// is not the job's next expected ordinal (e.g. a duplicate from
    /// at-least-once delivery). Rejection protects the contract both
    /// ways: no malformed event can panic a drain, and no replayed
    /// barrier can re-score a closed checkpoint.
    pub rejected_events: usize,
}

/// A multi-job online straggler-prediction engine.
///
/// Jobs are [admitted](Engine::admit) with their [`JobSpec`], events are
/// [pushed](Engine::push) in any cross-job interleaving (per-job order
/// must be checkpoint order), and [`Engine::drain`] applies everything
/// queued — each shard on its own `nurd-runtime` task, in parallel.
/// Because a job's entire state lives in exactly one shard (job id hash)
/// and shards share nothing, the engine's output is independent of shard
/// count, drain batching, and cross-job interleaving.
///
/// # Example
///
/// ```
/// use nurd_serve::{Engine, EngineConfig};
/// use nurd_runtime::ThreadPool;
/// # use nurd_data::{JobSpec, Checkpoint, OnlinePredictor};
/// # struct Never;
/// # impl OnlinePredictor for Never {
/// #     fn name(&self) -> &str { "NEVER" }
/// #     fn predict(&mut self, _: &Checkpoint<'_>) -> Vec<usize> { Vec::new() }
/// # }
///
/// let pool = ThreadPool::new(2);
/// let mut engine = Engine::new(EngineConfig::default(), Box::new(|_| Box::new(Never)));
/// engine.admit(JobSpec { job: 1, threshold: 100.0, task_count: 2, feature_dim: 1, checkpoints: 1 });
/// engine.push(nurd_data::TaskEvent::Barrier { job: 1, ordinal: 0, time: 50.0 });
/// let report = engine.finish(&pool);
/// assert_eq!(report.jobs.len(), 1);
/// ```
pub struct Engine {
    config: EngineConfig,
    factory: PredictorFactory,
    shards: Vec<Shard>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("shards", &self.shards)
            .finish()
    }
}

impl Engine {
    /// Creates an engine; `factory` builds one fresh predictor per
    /// admitted job (shard count is clamped to ≥ 1).
    #[must_use]
    pub fn new(config: EngineConfig, factory: PredictorFactory) -> Self {
        let shards = config.shards.max(1);
        Engine {
            shards: (0..shards)
                .map(|_| Shard::new(config.warmup_fraction))
                .collect(),
            config,
            factory,
        }
    }

    /// The shard a job id hashes to (SplitMix64 finalizer — job ids are
    /// often sequential, and a plain modulo would then stripe neighbors
    /// onto neighboring shards *and* collide under power-of-two counts).
    #[must_use]
    pub fn shard_of(&self, job: u64) -> usize {
        let mut z = job.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.shards.len() as u64) as usize
    }

    /// Admits a job: builds its predictor (calling
    /// `OnlinePredictor::begin_stream`) and registers it with its shard.
    /// Must happen before the job's first event arrives; a job admitted
    /// twice is reset to a fresh predictor.
    pub fn admit(&mut self, spec: JobSpec) {
        let predictor = (self.factory)(&spec);
        let shard = self.shard_of(spec.job);
        self.shards[shard].admit(spec, predictor);
    }

    /// Enqueues one event on its job's shard (cheap: a hash plus a queue
    /// push; all model work happens in [`Engine::drain`]). The event's
    /// job must already be [admitted](Engine::admit) — an event that
    /// reaches a drain before its admission is an orphan (counted,
    /// dropped, and *not* replayed by a later admission).
    pub fn push(&mut self, event: TaskEvent) {
        let shard = self.shard_of(event.job());
        self.shards[shard].enqueue(event);
    }

    /// Enqueues a batch of events.
    pub fn push_all(&mut self, events: impl IntoIterator<Item = TaskEvent>) {
        for event in events {
            self.push(event);
        }
    }

    /// Applies every queued event: shards with pending work each become
    /// one pool task (the calling thread participates). May be called any
    /// number of times at any batching — the final report is identical,
    /// provided every event was pushed after its job's admission (an
    /// early push only survives to a later admission while it sits
    /// undrained; see [`Engine::push`]).
    pub fn drain(&mut self, pool: &ThreadPool) {
        let pending: Vec<&mut Shard> = self.shards.iter_mut().filter(|s| s.queued() > 0).collect();
        if pending.is_empty() {
            return;
        }
        pool.scope(|scope| {
            for shard in pending {
                scope.spawn(move || shard.drain());
            }
        });
    }

    /// Scheduling diagnostics (see [`EngineStats`]).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            shards: self.shards.len(),
            jobs_per_shard: self.shards.iter().map(Shard::job_count).collect(),
            events_per_shard: self.shards.iter().map(|s| s.events_processed).collect(),
            orphan_events: self.shards.iter().map(|s| s.orphan_events).sum(),
            rejected_events: self.shards.iter().map(|s| s.rejected_events).sum(),
        }
    }

    /// Drains outstanding events and produces the final report (per-job
    /// results in ascending job-id order).
    #[must_use]
    pub fn finish(mut self, pool: &ThreadPool) -> EngineReport {
        self.drain(pool);
        let mut jobs: Vec<JobReport> = self.shards.iter().flat_map(Shard::reports).collect();
        jobs.sort_by_key(|r| r.job);
        let events = self.shards.iter().map(|s| s.events_processed).sum();
        EngineReport { jobs, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_data::Checkpoint;

    /// Flags every running task at its first scored checkpoint.
    struct FlagAll;
    impl OnlinePredictor for FlagAll {
        fn name(&self) -> &str {
            "ALL"
        }
        fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
            checkpoint.running.iter().map(|r| r.id).collect()
        }
    }

    fn factory() -> PredictorFactory {
        Box::new(|_| Box::new(FlagAll))
    }

    fn spec(job: u64) -> JobSpec {
        JobSpec {
            job,
            threshold: 10.0,
            task_count: 3,
            feature_dim: 1,
            checkpoints: 2,
        }
    }

    fn tiny_events(job: u64) -> Vec<TaskEvent> {
        vec![
            TaskEvent::Submitted { job, task: 0 },
            TaskEvent::Submitted { job, task: 1 },
            TaskEvent::Submitted { job, task: 2 },
            TaskEvent::Finished {
                job,
                task: 0,
                ordinal: 0,
                time: 4.0,
                features: vec![0.1],
                latency: 2.0,
            },
            TaskEvent::Progress {
                job,
                task: 1,
                ordinal: 0,
                time: 4.0,
                features: vec![0.5],
            },
            TaskEvent::Progress {
                job,
                task: 2,
                ordinal: 0,
                time: 4.0,
                features: vec![0.9],
            },
            TaskEvent::Barrier {
                job,
                ordinal: 0,
                time: 4.0,
            },
            TaskEvent::Finished {
                job,
                task: 1,
                ordinal: 1,
                time: 8.0,
                features: vec![0.5],
                latency: 6.0,
            },
            TaskEvent::Progress {
                job,
                task: 2,
                ordinal: 1,
                time: 8.0,
                features: vec![0.9],
            },
            TaskEvent::Barrier {
                job,
                ordinal: 1,
                time: 8.0,
            },
        ]
    }

    #[test]
    fn flags_stick_and_reports_sort_by_job_id() {
        let pool = ThreadPool::new(2);
        let mut engine = Engine::new(
            EngineConfig {
                shards: 3,
                warmup_fraction: 0.04,
            },
            factory(),
        );
        for job in [9u64, 2, 5] {
            engine.admit(spec(job));
            engine.push_all(tiny_events(job));
        }
        let report = engine.finish(&pool);
        assert_eq!(
            report.jobs.iter().map(|r| r.job).collect::<Vec<_>>(),
            vec![2, 5, 9]
        );
        for r in &report.jobs {
            // Task 0 finished before warmup (1 task quorum at ckpt 0);
            // tasks 1 and 2 were running at the first scored checkpoint
            // and FlagAll flags both, permanently.
            assert_eq!(r.outcome.flagged_at[0], None);
            assert_eq!(r.outcome.flagged_at[1], Some(0));
            assert_eq!(r.outcome.flagged_at[2], Some(0));
            // Flagged task 1 finished under the threshold: false positive;
            // task 2 never finished in-stream: counted a straggler.
            assert_eq!(r.outcome.confusion.false_positives, 1);
            assert_eq!(r.outcome.confusion.true_positives, 1);
        }
        assert_eq!(report.events, 30);
    }

    #[test]
    fn orphan_events_are_counted_not_fatal() {
        let pool = ThreadPool::new(1);
        let mut engine = Engine::new(EngineConfig::default(), factory());
        engine.admit(spec(1));
        engine.push_all(tiny_events(1));
        engine.push(TaskEvent::Barrier {
            job: 999,
            ordinal: 0,
            time: 1.0,
        });
        engine.drain(&pool);
        assert_eq!(engine.stats().orphan_events, 1);
        let report = engine.finish(&pool);
        assert_eq!(report.jobs.len(), 1);
    }

    #[test]
    fn malformed_events_are_rejected_not_fatal() {
        let pool = ThreadPool::new(1);
        let clean = {
            let mut engine = Engine::new(EngineConfig::default(), factory());
            engine.admit(spec(1));
            engine.push_all(tiny_events(1));
            engine.finish(&pool)
        };
        let mut engine = Engine::new(EngineConfig::default(), factory());
        engine.admit(spec(1));
        let mut events = tiny_events(1);
        // Ragged snapshot (spec says feature_dim = 1), an unknown task
        // id, a duplicate completion, and a replayed barrier.
        events.insert(
            3,
            TaskEvent::Progress {
                job: 1,
                task: 1,
                ordinal: 0,
                time: 4.0,
                features: vec![0.5, 0.5, 0.5],
            },
        );
        events.insert(4, TaskEvent::Submitted { job: 1, task: 99 });
        events.push(TaskEvent::Finished {
            job: 1,
            task: 0,
            ordinal: 1,
            time: 8.0,
            features: vec![0.1],
            latency: 2.0,
        });
        events.push(TaskEvent::Barrier {
            job: 1,
            ordinal: 0,
            time: 4.0,
        });
        engine.push_all(events);
        engine.drain(&pool);
        assert_eq!(engine.stats().rejected_events, 4);
        let report = engine.finish(&pool);
        // The four bad events changed nothing: same outcome as a clean run.
        assert_eq!(report.jobs[0].outcome, clean.jobs[0].outcome);
        assert_eq!(
            report.jobs[0].checkpoints_scored, clean.jobs[0].checkpoints_scored,
            "replayed barrier must not re-score a closed checkpoint"
        );
    }

    #[test]
    fn shard_hash_is_stable_and_in_range() {
        let engine = Engine::new(
            EngineConfig {
                shards: 8,
                warmup_fraction: 0.04,
            },
            factory(),
        );
        for job in 0..100u64 {
            let s = engine.shard_of(job);
            assert!(s < 8);
            assert_eq!(s, engine.shard_of(job));
        }
        // The finalizer spreads sequential ids (not all in one shard).
        let shards: std::collections::HashSet<usize> =
            (0..100u64).map(|j| engine.shard_of(j)).collect();
        assert!(shards.len() >= 4, "sequential ids clumped: {shards:?}");
    }

    #[test]
    fn drain_batching_does_not_change_the_report() {
        let pool = ThreadPool::new(2);
        let build = || {
            let mut e = Engine::new(EngineConfig::default(), factory());
            for job in [1u64, 2, 3, 4] {
                e.admit(spec(job));
            }
            e
        };
        let mut one_shot = build();
        let mut batched = build();
        let events: Vec<TaskEvent> = [1u64, 2, 3, 4]
            .iter()
            .flat_map(|&j| tiny_events(j))
            .collect();
        one_shot.push_all(events.clone());
        for chunk in events.chunks(7) {
            batched.push_all(chunk.to_vec());
            batched.drain(&pool);
        }
        assert_eq!(one_shot.finish(&pool), batched.finish(&pool));
    }
}
