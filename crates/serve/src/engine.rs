//! The streaming engine: sharded MPSC ingress, mid-stream admission,
//! per-job finalization, back-pressure, parallel drains, reports.
//!
//! The concurrency split (see [`crate`] docs for the full picture):
//!
//! * [`EngineCore`] *(crate-private)* — the shared state: one
//!   [`nurd_runtime::Channel`] ingress queue, one `Mutex<Shard>`, and one
//!   atomic [`ShardStats`](crate::shard::ShardStats) block per shard,
//!   plus the [`nurd_runtime::Notifier`] idle drain workers park on.
//! * [`EngineHandle`] — cloneable, `Send + Sync` producer handle;
//!   [`EngineHandle::push`] takes `&self` and is safe from any thread.
//! * [`Engine`] — the single-threaded compatibility shim over the same
//!   core (caller-driven [`Engine::drain_sync`] instead of a background
//!   service). New code should prefer [`EngineService`](crate::EngineService).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use std::sync::OnceLock;

use nurd_codec::Checkpointable;
use nurd_data::{ActionRecord, JobSpec, MitigationPolicy, OnlinePredictor, TaskEvent};
use nurd_runtime::{Channel, Notifier, ThreadPool, TrySendError};
use nurd_sim::ReplayOutcome;

use crate::lifecycle::{FinalizeReason, JobPhase, OverloadCounters, OverloadPolicy};
use crate::observer::HealthObserver;
use crate::persist::{snapshot_path, wal_path, DonorSeed, PersistenceConfig, RecoverError};
use crate::shard::{JobState, Shard, ShardStats};
use crate::snapshot::{write_snapshot_file, SnapshotData};
use crate::wal::WalWriter;

/// Builds a fresh predictor for an admitted job — the serving analogue of
/// the per-job factories in `nurd-baselines`' method registry. Invoked by
/// a shard drain when it encounters the job's
/// [`TaskEvent::JobStart`], so it must be `Sync` (drains run in
/// parallel, on background service workers and producer threads alike).
pub type PredictorFactory = Box<dyn Fn(&JobSpec) -> Box<dyn OnlinePredictor + Send> + Send + Sync>;

/// Builds a fresh [`MitigationPolicy`] for an admitted job — the
/// mitigation twin of [`PredictorFactory`]. Registered once per engine
/// via [`Engine::attach_mitigator`] /
/// [`EngineService::attach_mitigator`](crate::EngineService::attach_mitigator);
/// invoked by shard drains, so it must be `Sync`.
pub type MitigatorFactory = Box<dyn Fn(&JobSpec) -> Box<dyn MitigationPolicy + Send> + Send + Sync>;

/// Adaptive shard balancing: when a shard's ingress backlog stays above
/// [`BalanceConfig::backlog_threshold`], the drain loop grants that
/// shard's *oversized* jobs (≥ [`BalanceConfig::min_tasks`] tasks)
/// within-job parallelism via [`OnlinePredictor::set_parallelism`] —
/// fanning their model refits **and their barrier score batches** (once
/// the running set reaches the predictor's `parallel_score_min`, split
/// into lane-aligned chunks) across [`BalanceConfig::threads`] workers
/// of the shared [`nurd_runtime::global`] pool. This attacks the skew a
/// shard count cannot: one giant job pins one shard (a job never spans
/// shards — that is the determinism argument), so the only lever left is
/// making *that job's* checkpoint refits and barrier scoring faster.
///
/// Safe by construction: the parallel fit and scoring paths are
/// bit-identical across thread counts (property-tested in `nurd-ml`), so
/// flipping the grant on or off — at any moment, even mid-job — changes
/// wall-clock only, never a report. The grant is withdrawn (with
/// hysteresis, at half the threshold) once the backlog subsides, so a
/// healthy fleet pays nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalanceConfig {
    /// Ingress backlog (queued, undrained events on the shard) at or
    /// above which the grant switches on. Switches back off when the
    /// backlog falls to half this value. With a bounded queue
    /// ([`EngineConfig::queue_capacity`]) the backlog can never exceed
    /// the capacity, so the engine clamps this to half the capacity —
    /// otherwise a threshold above the bound would silently disable the
    /// feature. Balancing engages from the background drain loop; the
    /// [`Engine`] shim's caller-driven drains empty a shard in one pop
    /// and so observe no backlog to react to.
    pub backlog_threshold: usize,
    /// Only jobs with at least this many tasks receive the grant — tiny
    /// jobs' refits are too small to amortize fan-out overhead.
    pub min_tasks: usize,
    /// Threads granted per boosted job (`0` = every core of the machine,
    /// as in `nurd_ml::TreeConfig::n_threads`).
    pub threads: usize,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        BalanceConfig {
            backlog_threshold: 4096,
            min_tasks: 128,
            threads: 0,
        }
    }
}

/// Engine tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Number of shards jobs are hashed across. Each shard is drained by
    /// at most one worker at a time, so this bounds the engine's drain
    /// parallelism; it never affects its output.
    pub shards: usize,
    /// Warmup quorum before a job's predictions start, as a fraction of
    /// its tasks (the paper's 4% — must match the replay config when
    /// comparing reports against `nurd_sim::replay_job`).
    pub warmup_fraction: f64,
    /// Per-shard ingress queue bound. `None` (the default) is unbounded;
    /// `Some(n)` makes pushes apply the [`OverloadPolicy`] once a shard
    /// holds `n` undrained events (clamped to ≥ 1).
    pub queue_capacity: Option<usize>,
    /// What to do with a push to a full shard queue (see
    /// [`OverloadPolicy`]; only the default `Block` is lossless).
    pub overload: OverloadPolicy,
    /// Adaptive within-job parallelism for oversized jobs on backlogged
    /// shards. `None` (the default) never grants extra threads.
    pub balance: Option<BalanceConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            warmup_fraction: 0.04,
            queue_capacity: None,
            overload: OverloadPolicy::Block,
            balance: None,
        }
    }
}

/// Everything the engine measured for one job, emitted when the job
/// finalizes. `outcome` is bit-for-bit the [`ReplayOutcome`] a sequential
/// `nurd_sim::replay_job` of the same job with the same predictor
/// configuration produces — the engine's central correctness contract,
/// preserved for jobs that arrive and depart mid-stream and for events
/// pushed from many producer threads at once.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job identifier.
    pub job: u64,
    /// Checkpoints at which the predictor was actually invoked.
    pub checkpoints_scored: usize,
    /// What ended the job's stream (deterministic per stream — safe to
    /// compare across shard counts and interleavings).
    pub finalized: FinalizeReason,
    /// Protocol scoring, identical to sequential replay.
    pub outcome: ReplayOutcome,
    /// The mitigation actions committed for this job, decision order
    /// (empty when no mitigator was attached). Deterministic per stream:
    /// same seed + same policy ⇒ bit-identical at any shard count.
    pub actions: Vec<ActionRecord>,
}

impl Checkpointable for JobReport {
    fn encode(&self, enc: &mut nurd_codec::Encoder) {
        enc.put_u64(self.job);
        enc.put_usize(self.checkpoints_scored);
        self.finalized.encode(enc);
        self.outcome.encode(enc);
        self.actions.encode(enc);
    }

    fn decode(dec: &mut nurd_codec::Decoder<'_>) -> Result<Self, nurd_codec::CodecError> {
        Ok(JobReport {
            job: dec.take_u64()?,
            checkpoints_scored: dec.take_usize()?,
            finalized: Checkpointable::decode(dec)?,
            outcome: Checkpointable::decode(dec)?,
            actions: Checkpointable::decode(dec)?,
        })
    }
}

/// The engine's final output: per-job reports in job-id order. Equal
/// (`PartialEq`) across *any* shard count, *any* drain-worker count, and
/// *any* cross-job interleaving of the same per-job streams — the
/// determinism property tests in `tests/determinism.rs` and
/// `tests/service.rs` enforce exactly this (the overload counters stay
/// zero under the lossless default config; a lossy overload policy is
/// the one way to forfeit the property, and the counters are how an
/// operator sees that it happened).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Reports of jobs still unreported at shutdown ([`Engine::finish`] /
    /// [`EngineService::close`](crate::EngineService::close)) —
    /// everything not already handed out by `take_finalized` — ascending
    /// job id.
    pub jobs: Vec<JobReport>,
    /// Total events *applied* by drains, lifecycle events included.
    /// Orphans (events for never-admitted jobs) and stale events (events
    /// arriving after their job finalized) are counted here and in
    /// [`EngineStats`] but applied to no job; events a lossy overload
    /// policy dropped before any drain are **not** counted here — they
    /// are exactly [`OverloadCounters::lost_events`].
    pub events: usize,
    /// Fleet-wide overload *losses* (zero under the unbounded default
    /// and under the lossless `Block` policy; nonzero exactly when a
    /// lossy policy dropped events and forfeited determinism for the
    /// affected jobs). Blocked-push counts are scheduling-dependent and
    /// therefore live in [`EngineStats::blocked_pushes`], not here.
    pub overload: OverloadCounters,
}

impl EngineReport {
    /// The report of job `job`, if this report carries it.
    #[must_use]
    pub fn job(&self, job: u64) -> Option<&JobReport> {
        self.jobs.iter().find(|r| r.job == job)
    }

    /// Mean end-of-job F1 across jobs (macro average, as in Table 3).
    #[must_use]
    pub fn macro_f1(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|r| r.outcome.confusion.f1())
            .sum::<f64>()
            / self.jobs.len() as f64
    }
}

/// Scheduling-dependent diagnostics — deliberately **not** part of
/// [`EngineReport`], because per-shard load varies with the shard count
/// while the report must not. Snapshotted **without stopping the
/// service**: every counter is an atomic the push and drain paths bump
/// as they go, so [`EngineHandle::stats`] can be polled from a monitor
/// thread while producers push and drain workers drain.
/// `docs/OPERATIONS.md` explains how to read each counter in production.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Configured shard count.
    pub shards: usize,
    /// *Live* (admitted, not yet finalized) jobs per shard — this is the
    /// engine's resident-memory footprint, and it shrinks as jobs
    /// finalize.
    pub jobs_per_shard: Vec<usize>,
    /// Events *applied* per shard (orphans and stale events included).
    pub events_per_shard: Vec<usize>,
    /// Events pushed but not yet drained, per shard — the ingress
    /// backlog. This is the signal adaptive balancing watches
    /// ([`BalanceConfig`]) and the first thing to graph for a service:
    /// a monotonically growing backlog means drain capacity is short.
    pub backlog_per_shard: Vec<usize>,
    /// Jobs finalized so far, fleet-wide.
    pub finalized_jobs: usize,
    /// Events whose job was never admitted (counted, then dropped).
    pub orphan_events: usize,
    /// Events that arrived after their job finalized (counted, then
    /// dropped). A canonical stream produces a benign tail of these when
    /// a job finalizes early because every task finished; after an
    /// explicit `JobEnd` they indicate a misbehaving producer.
    pub stale_events: usize,
    /// Structurally invalid events rejected during application: unknown
    /// task id, feature width differing from the job's
    /// [`JobSpec::feature_dim`], duplicate completion, or a barrier that
    /// is not the job's next expected ordinal (e.g. a duplicate from
    /// at-least-once delivery). Rejection protects the contract both
    /// ways: no malformed event can panic a drain, and no replayed
    /// barrier can re-score a closed checkpoint.
    pub rejected_events: usize,
    /// Pushes that found a full queue under [`OverloadPolicy::Block`].
    /// In service mode the producer then *slept* until a drain made room
    /// (a true blocking send); under the [`Engine`] shim it drained the
    /// shard inline. Lossless either way, but scheduling-dependent,
    /// hence here and not in [`EngineReport`].
    pub blocked_pushes: usize,
    /// Times adaptive balancing switched within-job parallelism on for
    /// a backlogged shard (see [`BalanceConfig`]; zero when disabled).
    pub balance_boosts: usize,
    /// Jobs quarantined because their predictor panicked during event
    /// application (see [`FinalizeReason::Poisoned`]). Any nonzero value
    /// is a predictor bug worth a page.
    pub poisoned_jobs: usize,
    /// Events appended to the write-ahead log by drains (zero on a
    /// non-persistent engine).
    pub wal_appended: usize,
    /// Events replayed from WAL segments at the last recovery (zero on a
    /// non-persistent engine or a fresh start).
    pub wal_replayed: usize,
    /// Snapshots written since this process started (close, explicit
    /// checkpoints, and the post-recovery snapshot all count).
    pub snapshots_written: usize,
    /// Invalid snapshot files skipped by the last recovery before a
    /// valid one was found. Nonzero means the newest snapshot was
    /// corrupt — triage with the runbook in `docs/OPERATIONS.md`.
    pub recovery_fallbacks: usize,
    /// `Clone` mitigation actions committed to job action logs (zero
    /// when no mitigator is attached). Read it together with the
    /// simulator's `clones_wasted` — the triage recipe is in
    /// `docs/OPERATIONS.md`.
    pub clones_issued: usize,
    /// `Quarantine` mitigation actions committed to job action logs.
    pub quarantines_issued: usize,
    /// Policy decisions the engine refused (target not running, already
    /// actioned, or clone budget exhausted). A high rate means the
    /// policy is over-asking — tune its threshold or budget.
    pub mitigation_suppressed: usize,
    /// Overload loss accounting (see [`OverloadCounters`]).
    pub overload: OverloadCounters,
}

/// How a push behaves when [`OverloadPolicy::Block`] meets a full queue:
/// sleep on the channel (service mode — a background drain worker will
/// make room) or drain the shard on the pushing thread (shim mode —
/// there is no one else to do it).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockMode {
    Sleep,
    DrainInline,
}

/// One shard's triple: the MPSC ingress queue, the guarded state, and
/// the live counters. Producers touch `ingress` and the push-side stats;
/// whichever worker wins `state` applies events — popping and applying
/// under the lock is what keeps per-shard application order equal to
/// channel FIFO order no matter how many workers drain.
struct ShardCell {
    ingress: Channel<TaskEvent>,
    state: Mutex<Shard>,
    stats: ShardStats,
}

/// The persistence half of a durable engine: its configuration, the
/// current snapshot/WAL generation, and the persistence counters
/// surfaced through [`EngineStats`].
pub(crate) struct PersistHandle {
    pub(crate) config: PersistenceConfig,
    /// Generation the live WAL segments write to; the next snapshot is
    /// `generation + 1` and rotates the WALs there with it.
    generation: AtomicU64,
    pub(crate) wal_appended: AtomicUsize,
    pub(crate) wal_replayed: AtomicUsize,
    pub(crate) snapshots_written: AtomicUsize,
    pub(crate) recovery_fallbacks: AtomicUsize,
}

/// The shared heart of the engine — everything [`EngineHandle`],
/// [`Engine`], and [`EngineService`](crate::EngineService) operate on.
/// Crate-private: users hold it only through those three types.
pub(crate) struct EngineCore {
    config: EngineConfig,
    factory: PredictorFactory,
    /// Builds each admitted job's mitigation policy; unset = scorer-only
    /// mode. Write-once (`OnceLock`) so drains can read it lock-free.
    mitigator: OnceLock<MitigatorFactory>,
    /// Fleet-level node-health listener fed by drains (finalized jobs,
    /// scored barriers); unset = no observation. Write-once like the
    /// mitigator, and bit-invisible to reports by construction.
    observer: OnceLock<Arc<dyn HealthObserver>>,
    cells: Vec<ShardCell>,
    /// Idle drain workers (and quiescence waiters) park here; every
    /// accepted push and every productive drain batch unparks.
    notifier: Notifier,
    /// `Some` on durable engines (see [`PersistHandle`]).
    persist: Option<PersistHandle>,
}

impl EngineCore {
    pub(crate) fn new(mut config: EngineConfig, factory: PredictorFactory) -> Self {
        let shards = config.shards.max(1);
        if let (Some(capacity), Some(balance)) = (config.queue_capacity, &mut config.balance) {
            // A bounded shard's backlog is capped at `capacity`, so an
            // over-threshold would never fire: clamp to half capacity
            // (engage while the queue is filling, not only when full).
            balance.backlog_threshold = balance.backlog_threshold.min((capacity.max(1) / 2).max(1));
        }
        let cells = (0..shards)
            .map(|_| ShardCell {
                ingress: match config.queue_capacity {
                    Some(capacity) => Channel::bounded(capacity),
                    None => Channel::unbounded(),
                },
                state: Mutex::new(Shard::new(config.warmup_fraction)),
                stats: ShardStats::default(),
            })
            .collect();
        EngineCore {
            config,
            factory,
            mitigator: OnceLock::new(),
            observer: OnceLock::new(),
            cells,
            notifier: Notifier::new(),
            persist: None,
        }
    }

    /// Registers the engine's health observer (write-once; returns
    /// `false` if one is already attached). For observation parity with a
    /// never-restarted run, attach before pushing events — barriers
    /// scored before the attach were never observed.
    pub(crate) fn set_observer(&self, observer: Arc<dyn HealthObserver>) -> bool {
        let attached = self.observer.set(observer).is_ok();
        if attached {
            self.notifier.unpark();
        }
        attached
    }

    /// The attached observer as a trait object, for drains to hand into
    /// shard application.
    fn observer(&self) -> Option<&dyn HealthObserver> {
        self.observer.get().map(|o| &**o as &dyn HealthObserver)
    }

    /// Registers the engine's mitigator factory (write-once; returns
    /// `false` if one is already attached) and builds policies for any
    /// job admitted before the attach — which is how a recovered service
    /// re-arms mitigation for jobs resumed from a snapshot. For the
    /// bit-identical action-log guarantee, attach before pushing events:
    /// a job scored *between* admission and a late attach decides nothing
    /// at those barriers.
    pub(crate) fn set_mitigator(&self, mitigator: MitigatorFactory) -> bool {
        if self.mitigator.set(mitigator).is_err() {
            return false;
        }
        let mitigator = self.mitigator.get().expect("just set");
        for idx in 0..self.cells.len() {
            self.lock_shard(idx).attach_policies(mitigator);
        }
        self.notifier.unpark();
        true
    }

    /// A core whose shards write-ahead-log every drained event into
    /// `<dir>/wal-<generation>-<shard>.log` before applying it. The
    /// caller picks `generation` past every artifact already on disk
    /// (`File::create` truncates — a stale generation would eat history).
    pub(crate) fn new_persistent(
        config: EngineConfig,
        factory: PredictorFactory,
        persistence: PersistenceConfig,
        generation: u64,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(&persistence.dir)?;
        let mut core = EngineCore::new(config, factory);
        for (idx, cell) in core.cells.iter().enumerate() {
            let writer = WalWriter::create(
                wal_path(&persistence.dir, generation, idx),
                persistence.fsync,
                persistence.fault.clone(),
            )?;
            cell.state
                .lock()
                .expect("fresh shard lock")
                .install_wal(writer);
        }
        core.persist = Some(PersistHandle {
            config: persistence,
            generation: AtomicU64::new(generation),
            wal_appended: AtomicUsize::new(0),
            wal_replayed: AtomicUsize::new(0),
            snapshots_written: AtomicUsize::new(0),
            recovery_fallbacks: AtomicUsize::new(0),
        });
        Ok(core)
    }

    pub(crate) fn persist(&self) -> Option<&PersistHandle> {
        self.persist.as_ref()
    }

    pub(crate) fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// The shard a job id hashes to (SplitMix64 finalizer — job ids are
    /// often sequential, and a plain modulo would then stripe neighbors
    /// onto neighboring shards *and* collide under power-of-two counts).
    pub(crate) fn shard_of(&self, job: u64) -> usize {
        let mut z = job.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.cells.len() as u64) as usize
    }

    /// Enqueues one event on its job's shard, applying the configured
    /// overload policy when the queue is bounded and full. Returns
    /// whether the event was accepted (`false`: the ingress is closed,
    /// or `RejectNew` dropped it — which is also counted).
    ///
    /// Wake-up discipline: the steady-state push touches only its target
    /// shard's channel mutex. The global [`Notifier`] is bumped only on
    /// an **empty→non-empty transition** of the channel — a non-empty
    /// channel is already pending work no correctly parked worker can
    /// have missed (workers snapshot the epoch *before* scanning, and
    /// drains/observers unpark when they release a shard) — so producers
    /// do not serialize on the notifier or thundering-herd the workers.
    pub(crate) fn ingest(&self, event: TaskEvent, block: BlockMode) -> bool {
        let idx = self.shard_of(event.job());
        let cell = &self.cells[idx];
        // `None` = rejected; `Some(wake)` = accepted, `wake` is the
        // channel's empty→non-empty transition report.
        let accepted: Option<bool> = if self.config.queue_capacity.is_none() {
            // Unbounded: a send only fails once the ingress is closed.
            cell.ingress.send(event).ok()
        } else {
            match self.config.overload {
                OverloadPolicy::Block => match cell.ingress.try_send(event) {
                    Ok(wake) => Some(wake),
                    Err(TrySendError::Closed(_)) => None,
                    Err(TrySendError::Full(event)) => {
                        cell.stats.add(&cell.stats.blocked_pushes, 1);
                        match block {
                            // Real back-pressure: sleep until a drain
                            // worker pops; the channel wakes us. The
                            // defensive unpark costs nothing on this
                            // already-slow path.
                            BlockMode::Sleep => {
                                self.notifier.unpark();
                                cell.ingress.send(event).ok()
                            }
                            // Shim semantics (PR-4): the pushing thread
                            // does the shard's drain work itself.
                            BlockMode::DrainInline => {
                                let mut event = event;
                                let mut batch = Vec::new();
                                loop {
                                    self.drain_shard(idx, usize::MAX, true, &mut batch);
                                    match cell.ingress.try_send(event) {
                                        Ok(wake) => break Some(wake),
                                        Err(TrySendError::Closed(_)) => break None,
                                        Err(TrySendError::Full(back)) => event = back,
                                    }
                                }
                            }
                        }
                    }
                },
                OverloadPolicy::ShedOldest => match cell.ingress.send_evicting(event) {
                    Ok((wake, evicted)) => {
                        if evicted.is_some() {
                            cell.stats.add(&cell.stats.shed_events, 1);
                        }
                        Some(wake)
                    }
                    Err(_) => None,
                },
                OverloadPolicy::RejectNew => match cell.ingress.try_send(event) {
                    Ok(wake) => Some(wake),
                    Err(TrySendError::Full(_)) => {
                        cell.stats.add(&cell.stats.rejected_ingress, 1);
                        None
                    }
                    Err(TrySendError::Closed(_)) => None,
                },
            }
        };
        if accepted == Some(true) {
            self.notifier.unpark();
        }
        accepted.is_some()
    }

    /// Pops up to `max` events from shard `idx`'s ingress and applies
    /// them while holding the shard lock; returns how many were applied.
    /// `wait` selects a blocking lock (caller-driven drains, which must
    /// make progress) vs `try_lock` (service workers, which skip a shard
    /// another worker already holds and move on). Also runs the adaptive
    /// balancing decision against the backlog left behind.
    /// `batch` is the caller's reusable pop buffer (always left empty on
    /// return) — drain loops hand the same one in for every visit, so
    /// the hot path does no per-batch allocation after warm-up.
    pub(crate) fn drain_shard(
        &self,
        idx: usize,
        max: usize,
        wait: bool,
        batch: &mut Vec<TaskEvent>,
    ) -> usize {
        let cell = &self.cells[idx];
        if cell.ingress.is_empty() {
            return 0;
        }
        let mut shard: MutexGuard<'_, Shard> = if wait {
            cell.state.lock().expect("shard poisoned")
        } else {
            match cell.state.try_lock() {
                Ok(guard) => guard,
                Err(std::sync::TryLockError::WouldBlock) => return 0,
                Err(std::sync::TryLockError::Poisoned(_)) => panic!("shard poisoned"),
            }
        };
        debug_assert!(batch.is_empty());
        let taken = cell.ingress.recv_batch(batch, max);
        if taken == 0 {
            return 0;
        }
        if let Some(persist) = &self.persist {
            // Write-ahead: the batch reaches the log *before* any of it
            // is applied, under the same lock that orders application —
            // so WAL record order is exactly apply order. A failing disk
            // panics the drain worker on purpose: silently continuing
            // would un-log accepted events, and worker death is the
            // engine's observable-failure channel.
            let appended = shard
                .append_wal(&batch[..])
                .unwrap_or_else(|e| panic!("WAL append failed on shard {idx}: {e}"));
            persist.wal_appended.fetch_add(appended, Ordering::Relaxed);
        }
        // The backlog *left behind* after this pop: the adaptive-balance
        // signal, and the advisory load hint mitigation policies see.
        let backlog = cell.ingress.len();
        if let Some(balance) = &self.config.balance {
            // Decide on the leftover backlog: a queue that refills faster
            // than a whole batch drains is the sustained-overload signal
            // worth spending threads on.
            if backlog >= balance.backlog_threshold.max(1) {
                shard.set_parallelism(
                    if balance.threads == 0 {
                        nurd_runtime::global().threads()
                    } else {
                        balance.threads
                    },
                    balance.min_tasks,
                    &cell.stats,
                );
            } else if backlog <= balance.backlog_threshold / 2 {
                shard.set_parallelism(1, balance.min_tasks, &cell.stats);
            }
        }
        shard.apply_batch(
            batch.drain(..),
            &self.factory,
            self.mitigator.get(),
            self.observer(),
            backlog,
            &cell.stats,
        );
        drop(shard);
        // Unpark peers and quiescence waiters: more work may remain on
        // this shard, and watchers re-evaluate their condition on every
        // epoch bump.
        self.notifier.unpark();
        taken
    }

    /// Caller-driven drain of every shard to empty — the shim path. Each
    /// dirty shard becomes one pool task (the calling thread
    /// participates); blocking locks guarantee the post-condition
    /// `total_backlog() == 0` absent concurrent producers.
    pub(crate) fn drain_all(&self, pool: &ThreadPool) {
        let dirty: Vec<usize> = (0..self.cells.len())
            .filter(|&i| !self.cells[i].ingress.is_empty())
            .collect();
        if dirty.is_empty() {
            return;
        }
        pool.scope(|scope| {
            for idx in dirty {
                scope.spawn(move || {
                    let mut batch = Vec::new();
                    while self.drain_shard(idx, usize::MAX, true, &mut batch) > 0 {}
                });
            }
        });
    }

    /// Events pushed but not yet popped by any drain, fleet-wide.
    pub(crate) fn total_backlog(&self) -> usize {
        self.cells.iter().map(|c| c.ingress.len()).sum()
    }

    /// Closes every ingress channel: all later pushes fail, producers
    /// blocked in a send wake immediately, and queued events remain
    /// drainable. First step of every shutdown.
    pub(crate) fn close_ingress(&self) {
        for cell in &self.cells {
            cell.ingress.close();
        }
        self.notifier.unpark();
    }

    pub(crate) fn notifier(&self) -> &Notifier {
        &self.notifier
    }

    /// Observer-side shard lock: **poison-tolerant**. A drain worker
    /// that panicked mid-apply poisons its shard; observers
    /// (`take_finalized`, `job_phase`, quiescence settling, the final
    /// report) still want the readable parts — finalized reports,
    /// phases — rather than killing a monitor thread with a generic
    /// poisoned-lock panic. The *drain* paths in [`EngineCore::drain_shard`]
    /// deliberately stay poison-fatal: applying further events to a
    /// half-mutated `JobState` could silently corrupt reports, and the
    /// resulting worker death is what makes the failure observable.
    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, Shard> {
        self.cells[idx]
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Waits on each shard's lock once, so any event batch popped before
    /// this call has finished applying by the time it returns (used by
    /// quiescence checks after the channels report empty).
    pub(crate) fn settle_shards(&self) {
        for idx in 0..self.cells.len() {
            drop(self.lock_shard(idx));
        }
        // Same re-open as `take_finalized`.
        self.notifier.unpark();
    }

    pub(crate) fn take_finalized(&self) -> Vec<JobReport> {
        let mut reports: Vec<JobReport> = (0..self.cells.len())
            .flat_map(|i| self.lock_shard(i).take_finalized())
            .collect();
        reports.sort_by_key(|r| r.job);
        // A worker whose try_lock lost to this observer may have parked
        // believing the shard was unavailable; re-open the race now that
        // the locks are released (see `drain_shard`'s try_lock path).
        self.notifier.unpark();
        reports
    }

    pub(crate) fn job_phase(&self, job: u64) -> Option<JobPhase> {
        let phase = self.lock_shard(self.shard_of(job)).phase_of(job);
        // Same re-open as `take_finalized`: observers must not strand a
        // worker that lost its try_lock to them.
        self.notifier.unpark();
        phase
    }

    pub(crate) fn stats(&self) -> EngineStats {
        let load = |f: fn(&ShardStats) -> &std::sync::atomic::AtomicUsize| -> usize {
            self.cells
                .iter()
                .map(|c| f(&c.stats).load(Ordering::Relaxed))
                .sum()
        };
        EngineStats {
            shards: self.cells.len(),
            jobs_per_shard: self
                .cells
                .iter()
                .map(|c| c.stats.live_jobs.load(Ordering::Relaxed))
                .collect(),
            events_per_shard: self
                .cells
                .iter()
                .map(|c| c.stats.events_processed.load(Ordering::Relaxed))
                .collect(),
            backlog_per_shard: self.cells.iter().map(|c| c.ingress.len()).collect(),
            finalized_jobs: load(|s| &s.finalized_jobs),
            orphan_events: load(|s| &s.orphan_events),
            stale_events: load(|s| &s.stale_events),
            rejected_events: load(|s| &s.rejected_events),
            blocked_pushes: load(|s| &s.blocked_pushes),
            balance_boosts: load(|s| &s.balance_boosts),
            poisoned_jobs: load(|s| &s.poisoned_jobs),
            wal_appended: self
                .persist
                .as_ref()
                .map_or(0, |p| p.wal_appended.load(Ordering::Relaxed)),
            wal_replayed: self
                .persist
                .as_ref()
                .map_or(0, |p| p.wal_replayed.load(Ordering::Relaxed)),
            snapshots_written: self
                .persist
                .as_ref()
                .map_or(0, |p| p.snapshots_written.load(Ordering::Relaxed)),
            recovery_fallbacks: self
                .persist
                .as_ref()
                .map_or(0, |p| p.recovery_fallbacks.load(Ordering::Relaxed)),
            clones_issued: load(|s| &s.clones_issued),
            quarantines_issued: load(|s| &s.quarantines_issued),
            mitigation_suppressed: load(|s| &s.mitigation_suppressed),
            overload: self.overload(),
        }
    }

    fn overload(&self) -> OverloadCounters {
        self.cells
            .iter()
            .fold(OverloadCounters::default(), |acc, c| {
                acc.merged(c.stats.overload())
            })
    }

    /// Finalizes every still-live job ([`FinalizeReason::EngineFinish`])
    /// and assembles the final report. The caller must have reached
    /// quiescence first (no queued events, no drain in flight) — both
    /// shutdown paths guarantee it.
    pub(crate) fn finish_report(&self) -> EngineReport {
        let overload = self.overload();
        let mut jobs: Vec<JobReport> = (0..self.cells.len())
            .flat_map(|i| {
                let stats = &self.cells[i].stats;
                self.lock_shard(i).finish_reports(self.observer(), stats)
            })
            .collect();
        jobs.sort_by_key(|r| r.job);
        let events = self
            .cells
            .iter()
            .map(|c| c.stats.events_processed.load(Ordering::Relaxed))
            .sum();
        EngineReport {
            jobs,
            events,
            overload,
        }
    }

    // ---- persistence operations (no-ops / errors on a non-persistent
    // core; see `crate::persist` for the on-disk layout) ----

    /// Flushes + fsyncs every shard's WAL segment.
    pub(crate) fn flush_wals(&self) -> std::io::Result<()> {
        for idx in 0..self.cells.len() {
            self.lock_shard(idx).flush_wal()?;
        }
        self.notifier.unpark();
        Ok(())
    }

    /// Writes a new snapshot generation and rotates every WAL with it:
    /// each shard, under its lock, seals its current segment and opens
    /// `wal-<G+1>-<S>.log` at the same instant its state is captured —
    /// so the snapshot holds exactly the events of generations ≤ G and
    /// the new segments hold exactly the events after it. Then prunes
    /// generations beyond the retention window (snapshot-then-truncate
    /// compaction). Returns the new generation.
    pub(crate) fn write_snapshot(&self) -> std::io::Result<u64> {
        let persist = self
            .persist
            .as_ref()
            .expect("write_snapshot on a non-persistent engine");
        let new_gen = persist.generation.load(Ordering::Relaxed) + 1;
        let mut data = SnapshotData::default();
        for idx in 0..self.cells.len() {
            let cell = &self.cells[idx];
            let mut shard = self.lock_shard(idx);
            shard.rotate_wal(wal_path(&persist.config.dir, new_gen, idx))?;
            shard.capture_into(&mut data, &cell.stats);
        }
        // The observer's state rides the snapshot like the donor cache;
        // captured after the shard sweep, so it covers every observation
        // from events in WAL generations < new_gen (the WAL suffix past
        // this snapshot is re-observed on replay at recovery).
        data.observer = self
            .observer
            .get()
            .map_or_else(Vec::new, |o| o.snapshot_state());
        write_snapshot_file(&snapshot_path(&persist.config.dir, new_gen), &data)?;
        persist.generation.store(new_gen, Ordering::Relaxed);
        persist.snapshots_written.fetch_add(1, Ordering::Relaxed);
        crate::persist::prune_dir(&persist.config.dir, persist.config.retain_generations)?;
        self.notifier.unpark();
        Ok(new_gen)
    }

    /// Decodes a snapshot's job records and installs everything into the
    /// shards (jobs and ledgers routed by this engine's `shard_of`, so a
    /// recovery may change the shard count freely; fleet-wide counters
    /// land on shard 0). Returns `(resumed live jobs, finalized reports,
    /// donor seeds)`. Must run before drain workers start.
    pub(crate) fn install_snapshot(
        &self,
        data: SnapshotData,
    ) -> Result<(usize, usize, usize), RecoverError> {
        let mut jobs = Vec::with_capacity(data.jobs.len());
        for record in &data.jobs {
            let mut dec = nurd_codec::Decoder::new(record);
            jobs.push(JobState::decode(
                &mut dec,
                &self.factory,
                self.mitigator.get(),
                self.config.warmup_fraction,
            )?);
        }
        let resumed = jobs.len();
        for state in jobs {
            let idx = self.shard_of(state.job());
            let cell = &self.cells[idx];
            self.lock_shard(idx).adopt_job(state, &cell.stats);
        }
        let finalized = data.finalized.len();
        for report in data.finalized {
            let idx = self.shard_of(report.job);
            self.lock_shard(idx).adopt_finalized(report);
        }
        for job in data.finalized_ids {
            self.lock_shard(self.shard_of(job)).adopt_finalized_id(job);
        }
        for (job, count) in data.events_seen {
            self.lock_shard(self.shard_of(job))
                .adopt_events_seen(job, count);
        }
        let donors = data.donors.len();
        for seed in data.donors {
            self.lock_shard(0).adopt_donor(seed);
        }
        // Restore the observer's persisted state (no attached observer =
        // the blob is dropped, like donor seeds on a non-donating run; a
        // rejected blob is a typed error, never a half-restored observer).
        if !data.observer.is_empty() {
            if let Some(observer) = self.observer.get() {
                if !observer.restore_state(&data.observer) {
                    return Err(RecoverError::ObserverRestore);
                }
            }
        }
        let stats = &self.cells[0].stats;
        let c = data.counters;
        let put = |counter: &AtomicUsize, v: u64| {
            counter.fetch_add(v as usize, Ordering::Relaxed);
        };
        put(&stats.events_processed, c.events_processed);
        put(&stats.orphan_events, c.orphan_events);
        put(&stats.rejected_events, c.rejected_events);
        put(&stats.stale_events, c.stale_events);
        put(&stats.finalized_jobs, c.finalized_jobs);
        put(&stats.poisoned_jobs, c.poisoned_jobs);
        put(&stats.shed_events, c.shed_events);
        put(&stats.rejected_ingress, c.rejected_ingress);
        put(&stats.clones_issued, c.clones_issued);
        put(&stats.quarantines_issued, c.quarantines_issued);
        put(&stats.mitigation_suppressed, c.mitigation_suppressed);
        Ok((resumed, finalized, donors))
    }

    /// Applies recovered WAL events in segment order (generation-major,
    /// the order the crashed engine applied them). Per-job order is
    /// preserved because each job's events land in exactly one shard's
    /// segment per generation. Must run before drain workers start.
    pub(crate) fn replay_recovered(&self, events: Vec<TaskEvent>) -> usize {
        let replayed = events.len();
        for event in events {
            let idx = self.shard_of(event.job());
            let cell = &self.cells[idx];
            self.lock_shard(idx).apply_batch(
                std::iter::once(event),
                &self.factory,
                self.mitigator.get(),
                self.observer(),
                0,
                &cell.stats,
            );
        }
        if let Some(persist) = &self.persist {
            persist.wal_replayed.fetch_add(replayed, Ordering::Relaxed);
        }
        replayed
    }

    /// Per-job durable-event counts, merged across shards — how much of
    /// each job's stream has been popped by drains (and is therefore in
    /// the WAL/snapshot trail on a persistent engine).
    pub(crate) fn events_seen(&self) -> BTreeMap<u64, u64> {
        let mut merged = BTreeMap::new();
        for idx in 0..self.cells.len() {
            let shard = self.lock_shard(idx);
            for (&job, &count) in shard.events_seen() {
                *merged.entry(job).or_insert(0) += count;
            }
        }
        merged
    }

    /// Donor-cache seeds currently held, merged across shards,
    /// signature order.
    pub(crate) fn donor_seeds(&self) -> Vec<DonorSeed> {
        let mut seeds: BTreeMap<u64, DonorSeed> = BTreeMap::new();
        for idx in 0..self.cells.len() {
            for seed in self.lock_shard(idx).donor_seeds() {
                seeds.insert(seed.signature, seed);
            }
        }
        seeds.into_values().collect()
    }
}

impl std::fmt::Debug for EngineCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCore")
            .field("config", &self.config)
            .field("backlog", &self.total_backlog())
            .finish()
    }
}

/// A cloneable, thread-safe handle onto a running engine — the producer
/// side of the ingestion service. Every method takes `&self`; clone one
/// handle per producer thread and push away. Obtained from
/// [`Engine::handle`] or [`EngineService::handle`](crate::EngineService::handle)
/// (the two differ only in what a full queue does under
/// [`OverloadPolicy::Block`]: the service handle sleeps — a true
/// blocking send — while the shim handle drains the shard inline,
/// because a shim engine has no background workers to make room).
#[derive(Clone)]
pub struct EngineHandle {
    core: Arc<EngineCore>,
    block: BlockMode,
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHandle").finish()
    }
}

impl EngineHandle {
    pub(crate) fn new(core: Arc<EngineCore>, block: BlockMode) -> Self {
        EngineHandle { core, block }
    }

    /// Enqueues one event on its job's shard (cheap: a hash plus a queue
    /// push; all model work happens in drains). Safe from any thread.
    /// The event's job must have a [`TaskEvent::JobStart`] earlier in
    /// *its own* stream, and one producer must own each job's stream (or
    /// producers must otherwise preserve per-job order) — cross-job
    /// interleaving across producers is unrestricted and cannot affect
    /// reports.
    ///
    /// Returns whether the event was accepted: `false` once the engine
    /// is closing, or when [`OverloadPolicy::RejectNew`] drops it at a
    /// full queue (also counted in [`EngineStats`]). Under
    /// [`OverloadPolicy::Block`] a push to a full shard *blocks* until a
    /// drain makes room — the lossless policy never returns `false` for
    /// capacity.
    pub fn push(&self, event: TaskEvent) -> bool {
        self.core.ingest(event, self.block)
    }

    /// Pushes a batch of events in order; returns how many were accepted.
    pub fn push_all(&self, events: impl IntoIterator<Item = TaskEvent>) -> usize {
        let mut accepted = 0;
        for event in events {
            accepted += usize::from(self.push(event));
        }
        accepted
    }

    /// Convenience admission for callers that hold specs out of band:
    /// pushes a [`TaskEvent::JobStart`] carrying `spec`, so admission
    /// stays FIFO-ordered with the job's other pushed events (and is
    /// subject to the same overload policy).
    pub fn admit(&self, spec: JobSpec) -> bool {
        self.push(TaskEvent::JobStart { spec })
    }

    /// Takes the reports of jobs finalized since the last take (job-id
    /// order) — the mid-stream observation channel. Concurrent takers
    /// partition the reports: each report is handed out exactly once,
    /// and none is repeated by the shutdown report.
    pub fn take_finalized(&self) -> Vec<JobReport> {
        self.core.take_finalized()
    }

    /// Where `job` sits in its lifecycle, judging by *drained* state
    /// (`None` = never admitted, or its `JobStart` is still queued).
    #[must_use]
    pub fn job_phase(&self, job: u64) -> Option<JobPhase> {
        self.core.job_phase(job)
    }

    /// Live scheduling diagnostics (see [`EngineStats`]) — lock-free
    /// atomic reads, safe to poll from a monitor thread at any rate
    /// without stopping producers or drains.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.core.stats()
    }

    /// The shard a job id hashes to (stable across the engine's life).
    #[must_use]
    pub fn shard_of(&self, job: u64) -> usize {
        self.core.shard_of(job)
    }

    /// Attaches the engine's mitigator (see [`Engine::attach_mitigator`];
    /// write-once, `false` if one is already attached).
    pub fn attach_mitigator(&self, mitigator: MitigatorFactory) -> bool {
        self.core.set_mitigator(mitigator)
    }

    /// Attaches the engine's health observer (see
    /// [`Engine::attach_observer`]; write-once, `false` if one is
    /// already attached).
    pub fn attach_observer(&self, observer: Arc<dyn HealthObserver>) -> bool {
        self.core.set_observer(observer)
    }
}

/// The single-threaded engine shim: the PR-4-era caller-driven API over
/// the concurrent `EngineCore`. Prefer
/// [`EngineService`](crate::EngineService) for new code — it runs the
/// drain loop for you on background workers and gives every producer a
/// blocking [`EngineHandle::push`]. This wrapper remains for call sites
/// and tests written against the synchronous push → drain → observe
/// cycle; the migration is mechanical (`push` → [`Engine::push_sync`],
/// `drain` → [`Engine::drain_sync`]), and all state-observing methods
/// ([`Engine::stats`], [`Engine::job_phase`], [`Engine::take_finalized`])
/// are unchanged.
///
/// # Example
///
/// Admission → drain → finalization, all through the stream:
///
/// ```
/// use nurd_runtime::ThreadPool;
/// use nurd_serve::{Engine, EngineConfig, FinalizeReason, JobPhase};
/// # use nurd_data::{Checkpoint, JobSpec, OnlinePredictor, TaskEvent};
/// # struct Never;
/// # impl OnlinePredictor for Never {
/// #     fn name(&self) -> &str { "NEVER" }
/// #     fn predict(&mut self, _: &Checkpoint<'_>) -> Vec<usize> { Vec::new() }
/// # }
///
/// let pool = ThreadPool::new(2);
/// let engine = Engine::new(EngineConfig::default(), Box::new(|_| Box::new(Never)));
///
/// // 1. Admission travels in the stream — no up-front registry.
/// engine.push_sync(TaskEvent::JobStart {
///     spec: JobSpec { job: 1, threshold: 100.0, task_count: 2, feature_dim: 1, checkpoints: 1 },
/// });
/// engine.push_sync(TaskEvent::Barrier { job: 1, ordinal: 0, time: 50.0 });
///
/// // 2. Drain applies the queued events (admits, scores, finalizes).
/// engine.drain_sync(&pool);
/// assert_eq!(engine.job_phase(1), Some(JobPhase::Finalized));
///
/// // 3. The job's report is available mid-stream, long before finish.
/// let done = engine.take_finalized();
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].finalized, FinalizeReason::StreamComplete);
///
/// // finish() reports only jobs not already taken.
/// assert!(engine.finish(&pool).jobs.is_empty());
/// ```
pub struct Engine {
    core: Arc<EngineCore>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").field("core", &self.core).finish()
    }
}

impl Engine {
    /// Creates an engine in caller-driven mode; `factory` builds one
    /// fresh predictor per admitted job (shard count is clamped to ≥ 1).
    #[must_use]
    pub fn new(config: EngineConfig, factory: PredictorFactory) -> Self {
        Engine {
            core: Arc::new(EngineCore::new(config, factory)),
        }
    }

    /// A cloneable producer handle onto this engine. Even the shim is
    /// multi-producer capable — handle pushes are `&self` and
    /// thread-safe; under `Block` at capacity the *pushing* thread
    /// drains the shard inline (there are no background workers here).
    #[must_use]
    pub fn handle(&self) -> EngineHandle {
        EngineHandle::new(Arc::clone(&self.core), BlockMode::DrainInline)
    }

    /// The shard a job id hashes to.
    #[must_use]
    pub fn shard_of(&self, job: u64) -> usize {
        self.core.shard_of(job)
    }

    /// Convenience admission: see [`EngineHandle::admit`].
    pub fn admit(&self, spec: JobSpec) {
        self.push_sync(TaskEvent::JobStart { spec });
    }

    /// Attaches a mitigator: `mitigator` builds one fresh
    /// [`MitigationPolicy`] per admitted job, and from then on every
    /// scored barrier runs scores → policy → committed
    /// [`ActionRecord`]s (surfaced on each [`JobReport::actions`]).
    /// Write-once — returns `false` (and changes nothing) if a mitigator
    /// is already attached. Jobs admitted *before* the attach get a
    /// policy too, but barriers they already scored decided nothing; for
    /// the bit-identical action-log guarantee attach before pushing
    /// events (or recover with
    /// [`EngineService::recover_with_mitigator`](crate::EngineService::recover_with_mitigator)).
    pub fn attach_mitigator(&self, mitigator: MitigatorFactory) -> bool {
        self.core.set_mitigator(mitigator)
    }

    /// Attaches a fleet-level [`HealthObserver`]: from then on every
    /// finalized job (report, node placement, per-task straggler truth)
    /// and every scored barrier's scores are fed to it. Observation is
    /// bit-invisible to predictions and reports — the scored path is
    /// flag-identical by the predictor contract — and write-once:
    /// returns `false` (and changes nothing) if an observer is already
    /// attached. For parity with a never-restarted run, attach before
    /// pushing events; the recovery counterpart is
    /// [`EngineService::recover_with_observer`](crate::EngineService::recover_with_observer).
    pub fn attach_observer(&self, observer: Arc<dyn HealthObserver>) -> bool {
        self.core.set_observer(observer)
    }

    /// Enqueues one event (see [`EngineHandle::push`] for the stream
    /// contract). If the shard's queue is at capacity, the configured
    /// [`OverloadPolicy`] applies; `Block` drains the shard on this
    /// thread and then enqueues (lossless back-pressure, shim-style).
    pub fn push_sync(&self, event: TaskEvent) -> bool {
        self.core.ingest(event, BlockMode::DrainInline)
    }

    /// Enqueues a batch of events; returns how many were accepted.
    pub fn push_all_sync(&self, events: impl IntoIterator<Item = TaskEvent>) -> usize {
        let mut accepted = 0;
        for event in events {
            accepted += usize::from(self.push_sync(event));
        }
        accepted
    }

    /// Applies every queued event: shards with pending work each become
    /// one pool task (the calling thread participates). May be called any
    /// number of times at any batching — per-job results are identical,
    /// provided every event was pushed after its job's `JobStart` (an
    /// early push only survives to a later admission while it sits
    /// undrained; see [`EngineHandle::push`]).
    pub fn drain_sync(&self, pool: &ThreadPool) {
        self.core.drain_all(pool);
    }

    /// Deprecated alias of [`Engine::push_sync`].
    #[deprecated(note = "use push_sync, or EngineService + EngineHandle::push for service mode")]
    pub fn push(&mut self, event: TaskEvent) {
        self.push_sync(event);
    }

    /// Deprecated alias of [`Engine::push_all_sync`].
    #[deprecated(note = "use push_all_sync, or EngineService + EngineHandle for service mode")]
    pub fn push_all(&mut self, events: impl IntoIterator<Item = TaskEvent>) {
        self.push_all_sync(events);
    }

    /// Deprecated alias of [`Engine::drain_sync`].
    #[deprecated(note = "use drain_sync, or EngineService's background drain loop")]
    pub fn drain(&mut self, pool: &ThreadPool) {
        self.drain_sync(pool);
    }

    /// Takes the reports of jobs finalized since the last take (job-id
    /// order) — the mid-stream observation channel. A report taken here
    /// is *not* repeated by [`Engine::finish`].
    pub fn take_finalized(&self) -> Vec<JobReport> {
        self.core.take_finalized()
    }

    /// Where `job` sits in its lifecycle, judging by *drained* state
    /// (`None` = never admitted, or its `JobStart` is still queued).
    #[must_use]
    pub fn job_phase(&self, job: u64) -> Option<JobPhase> {
        self.core.job_phase(job)
    }

    /// Scheduling diagnostics (see [`EngineStats`]).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.core.stats()
    }

    /// Drains outstanding events, finalizes every still-live job (reason
    /// [`FinalizeReason::EngineFinish`]) and produces the final report:
    /// all not-yet-taken per-job results in ascending job-id order.
    /// Outstanding [`EngineHandle`]s see their pushes rejected from here
    /// on (the ingress closes first).
    #[must_use]
    pub fn finish(self, pool: &ThreadPool) -> EngineReport {
        self.core.close_ingress();
        self.core.drain_all(pool);
        self.core.finish_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nurd_data::Checkpoint;

    /// Flags every running task at its first scored checkpoint.
    struct FlagAll;
    impl OnlinePredictor for FlagAll {
        fn name(&self) -> &str {
            "ALL"
        }
        fn predict(&mut self, checkpoint: &Checkpoint<'_>) -> Vec<usize> {
            checkpoint.running.iter().map(|r| r.id).collect()
        }
    }

    fn factory() -> PredictorFactory {
        Box::new(|_| Box::new(FlagAll))
    }

    fn spec(job: u64) -> JobSpec {
        JobSpec {
            job,
            threshold: 10.0,
            task_count: 3,
            feature_dim: 1,
            checkpoints: 2,
        }
    }

    fn tiny_events(job: u64) -> Vec<TaskEvent> {
        vec![
            TaskEvent::Submitted { job, task: 0 },
            TaskEvent::Submitted { job, task: 1 },
            TaskEvent::Submitted { job, task: 2 },
            TaskEvent::Finished {
                job,
                task: 0,
                ordinal: 0,
                time: 4.0,
                features: vec![0.1],
                latency: 2.0,
            },
            TaskEvent::Progress {
                job,
                task: 1,
                ordinal: 0,
                time: 4.0,
                features: vec![0.5],
            },
            TaskEvent::Progress {
                job,
                task: 2,
                ordinal: 0,
                time: 4.0,
                features: vec![0.9],
            },
            TaskEvent::Barrier {
                job,
                ordinal: 0,
                time: 4.0,
            },
            TaskEvent::Finished {
                job,
                task: 1,
                ordinal: 1,
                time: 8.0,
                features: vec![0.5],
                latency: 6.0,
            },
            TaskEvent::Progress {
                job,
                task: 2,
                ordinal: 1,
                time: 8.0,
                features: vec![0.9],
            },
            TaskEvent::Barrier {
                job,
                ordinal: 1,
                time: 8.0,
            },
        ]
    }

    #[test]
    fn flags_stick_and_reports_sort_by_job_id() {
        let pool = ThreadPool::new(2);
        let engine = Engine::new(
            EngineConfig {
                shards: 3,
                ..EngineConfig::default()
            },
            factory(),
        );
        for job in [9u64, 2, 5] {
            engine.admit(spec(job));
            engine.push_all_sync(tiny_events(job));
        }
        let report = engine.finish(&pool);
        assert_eq!(
            report.jobs.iter().map(|r| r.job).collect::<Vec<_>>(),
            vec![2, 5, 9]
        );
        for r in &report.jobs {
            // Task 0 finished before warmup (1 task quorum at ckpt 0);
            // tasks 1 and 2 were running at the first scored checkpoint
            // and FlagAll flags both, permanently.
            assert_eq!(r.outcome.flagged_at[0], None);
            assert_eq!(r.outcome.flagged_at[1], Some(0));
            assert_eq!(r.outcome.flagged_at[2], Some(0));
            // Flagged task 1 finished under the threshold: false positive;
            // task 2 never finished in-stream: counted a straggler.
            assert_eq!(r.outcome.confusion.false_positives, 1);
            assert_eq!(r.outcome.confusion.true_positives, 1);
            // The last declared barrier closed the stream.
            assert_eq!(r.finalized, FinalizeReason::StreamComplete);
        }
        // 10 task events + 1 JobStart per job.
        assert_eq!(report.events, 33);
        assert_eq!(report.overload, OverloadCounters::default());
    }

    #[test]
    fn orphan_events_are_counted_not_fatal() {
        let pool = ThreadPool::new(1);
        let engine = Engine::new(EngineConfig::default(), factory());
        engine.admit(spec(1));
        engine.push_all_sync(tiny_events(1));
        engine.push_sync(TaskEvent::Barrier {
            job: 999,
            ordinal: 0,
            time: 1.0,
        });
        engine.drain_sync(&pool);
        assert_eq!(engine.stats().orphan_events, 1);
        let report = engine.finish(&pool);
        assert_eq!(report.jobs.len(), 1);
    }

    #[test]
    fn malformed_events_are_rejected_not_fatal() {
        let pool = ThreadPool::new(1);
        let clean = {
            let engine = Engine::new(EngineConfig::default(), factory());
            engine.admit(spec(1));
            engine.push_all_sync(tiny_events(1));
            engine.finish(&pool)
        };
        let engine = Engine::new(EngineConfig::default(), factory());
        engine.admit(spec(1));
        let mut events = tiny_events(1);
        // Ragged snapshot (spec says feature_dim = 1) and an unknown task
        // id, inserted before the first barrier...
        events.insert(
            3,
            TaskEvent::Progress {
                job: 1,
                task: 1,
                ordinal: 0,
                time: 4.0,
                features: vec![0.5, 0.5, 0.5],
            },
        );
        events.insert(4, TaskEvent::Submitted { job: 1, task: 99 });
        // ...plus a duplicate completion and a replayed barrier *before*
        // the final barrier, while the job is still live.
        let last = events.len() - 1;
        events.insert(
            last,
            TaskEvent::Finished {
                job: 1,
                task: 0,
                ordinal: 1,
                time: 8.0,
                features: vec![0.1],
                latency: 2.0,
            },
        );
        events.insert(
            last + 1,
            TaskEvent::Barrier {
                job: 1,
                ordinal: 0,
                time: 4.0,
            },
        );
        engine.push_all_sync(events);
        engine.drain_sync(&pool);
        assert_eq!(engine.stats().rejected_events, 4);
        let report = engine.finish(&pool);
        // The four bad events changed nothing: same outcome as a clean run.
        assert_eq!(report.jobs[0].outcome, clean.jobs[0].outcome);
        assert_eq!(
            report.jobs[0].checkpoints_scored, clean.jobs[0].checkpoints_scored,
            "replayed barrier must not re-score a closed checkpoint"
        );
    }

    #[test]
    fn shard_hash_is_stable_and_in_range() {
        let engine = Engine::new(
            EngineConfig {
                shards: 8,
                ..EngineConfig::default()
            },
            factory(),
        );
        for job in 0..100u64 {
            let s = engine.shard_of(job);
            assert!(s < 8);
            assert_eq!(s, engine.shard_of(job));
        }
        // The finalizer spreads sequential ids (not all in one shard).
        let shards: std::collections::HashSet<usize> =
            (0..100u64).map(|j| engine.shard_of(j)).collect();
        assert!(shards.len() >= 4, "sequential ids clumped: {shards:?}");
    }

    #[test]
    fn drain_batching_does_not_change_the_report() {
        let pool = ThreadPool::new(2);
        let build = || Engine::new(EngineConfig::default(), factory());
        let one_shot = build();
        let batched = build();
        let events: Vec<TaskEvent> = [1u64, 2, 3, 4]
            .iter()
            .flat_map(|&j| {
                let mut stream = vec![TaskEvent::JobStart { spec: spec(j) }];
                stream.extend(tiny_events(j));
                stream
            })
            .collect();
        one_shot.push_all_sync(events.clone());
        for chunk in events.chunks(7) {
            batched.push_all_sync(chunk.to_vec());
            batched.drain_sync(&pool);
        }
        assert_eq!(one_shot.finish(&pool), batched.finish(&pool));
    }

    #[test]
    fn finalization_frees_job_state_and_take_finalized_drains_reports() {
        let pool = ThreadPool::new(1);
        let engine = Engine::new(EngineConfig::default(), factory());
        engine.admit(spec(1));
        engine.push_all_sync(tiny_events(1));
        engine.drain_sync(&pool);
        // The last barrier finalized the job: no live state remains.
        let stats = engine.stats();
        assert_eq!(stats.jobs_per_shard.iter().sum::<usize>(), 0);
        assert_eq!(stats.finalized_jobs, 1);
        assert_eq!(engine.job_phase(1), Some(JobPhase::Finalized));
        let taken = engine.take_finalized();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].job, 1);
        assert!(engine.take_finalized().is_empty(), "take drains");
        // finish() does not repeat a taken report.
        assert!(engine.finish(&pool).jobs.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_aliases_still_work() {
        let pool = ThreadPool::new(1);
        let mut engine = Engine::new(EngineConfig::default(), factory());
        engine.push(TaskEvent::JobStart { spec: spec(1) });
        engine.push_all(tiny_events(1));
        engine.drain(&pool);
        assert_eq!(engine.job_phase(1), Some(JobPhase::Finalized));
    }

    #[test]
    fn shim_handle_pushes_from_other_threads() {
        let pool = ThreadPool::new(2);
        let engine = Engine::new(
            EngineConfig {
                shards: 2,
                ..EngineConfig::default()
            },
            factory(),
        );
        let producers: Vec<_> = [1u64, 2, 3]
            .into_iter()
            .map(|job| {
                let handle = engine.handle();
                std::thread::spawn(move || {
                    let mut stream = vec![TaskEvent::JobStart { spec: spec(job) }];
                    stream.extend(tiny_events(job));
                    handle.push_all(stream)
                })
            })
            .collect();
        let accepted: usize = producers.into_iter().map(|p| p.join().unwrap()).sum();
        assert_eq!(accepted, 33);
        let report = engine.finish(&pool);
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.events, 33);
    }

    #[test]
    fn handle_pushes_fail_after_finish_closed_the_ingress() {
        let pool = ThreadPool::new(1);
        let engine = Engine::new(EngineConfig::default(), factory());
        let handle = engine.handle();
        assert!(handle.admit(spec(1)));
        let _ = engine.finish(&pool);
        assert!(!handle.push(TaskEvent::Barrier {
            job: 1,
            ordinal: 0,
            time: 1.0,
        }));
    }
}
