//! Per-shard job state and the event application logic.

use std::collections::{BTreeMap, VecDeque};

use nurd_data::{
    Checkpoint, FinishedTask, JobSpec, OnlinePredictor, RunningTask, StreamContext, TaskEvent,
};
use nurd_sim::outcome_from_flags;

use crate::engine::JobReport;

/// What the shard knows about one task of one job.
#[derive(Debug, Default)]
struct TaskState {
    /// Latest feature snapshot (frozen once finished).
    features: Vec<f64>,
    /// `Some` once the task's `Finished` event arrived.
    latency: Option<f64>,
    /// Checkpoint ordinal at which the task was flagged a straggler.
    flagged_at: Option<usize>,
    /// Whether any snapshot has arrived (guards scoring a task the
    /// stream never described).
    seen: bool,
}

/// One job's online state inside a shard: the predictor plus exactly the
/// bookkeeping the replay protocol keeps — flagged tasks leave both the
/// finished and running views forever (their completions still count for
/// ground truth and warmup, never for training).
pub(crate) struct JobState {
    spec: JobSpec,
    predictor: Box<dyn OnlinePredictor + Send>,
    tasks: Vec<TaskState>,
    /// Tasks whose `Finished` event has arrived (including flagged ones —
    /// the warmup quorum counts every completion, as the replay does).
    finished_total: usize,
    /// First checkpoint at which the warmup quorum held.
    warmup_at: Option<usize>,
    /// Barriers processed so far (the next expected ordinal).
    barriers_seen: usize,
    /// Checkpoints at which the predictor was actually invoked.
    pub(crate) checkpoints_scored: usize,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("jobs", &self.jobs.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl JobState {
    fn new(spec: JobSpec, mut predictor: Box<dyn OnlinePredictor + Send>) -> Self {
        predictor.begin_stream(&StreamContext {
            threshold: spec.threshold,
            task_count: spec.task_count,
            feature_dim: spec.feature_dim,
        });
        let tasks = (0..spec.task_count).map(|_| TaskState::default()).collect();
        JobState {
            spec,
            predictor,
            tasks,
            finished_total: 0,
            warmup_at: None,
            barriers_seen: 0,
            checkpoints_scored: 0,
        }
    }

    /// The warmup quorum — the one shared definition
    /// ([`nurd_data::warmup_quorum`]) the replay simulator also uses, so
    /// engine and replay warmup timing can never drift apart.
    fn warmup_need(&self, fraction: f64) -> usize {
        nurd_data::warmup_quorum(self.spec.task_count, fraction)
    }

    /// Applies one event; returns `false` for a structurally invalid
    /// event (unknown task id, wrong feature width, duplicate completion,
    /// out-of-order barrier), which is **rejected** — counted by the
    /// shard, applied to nothing. Rejection is what keeps one malformed
    /// event of one job from panicking a drain that holds every job's
    /// state: a ragged snapshot would otherwise surface as a ragged
    /// checkpoint matrix deep inside the predictor.
    fn apply(&mut self, event: TaskEvent, warmup_fraction: f64) -> bool {
        match event {
            TaskEvent::Submitted { task, .. } => {
                let Some(state) = self.tasks.get_mut(task) else {
                    return false;
                };
                state.seen = true;
            }
            TaskEvent::Progress { task, features, .. } => {
                if features.len() != self.spec.feature_dim {
                    return false;
                }
                let Some(state) = self.tasks.get_mut(task) else {
                    return false;
                };
                // Progress for a flagged or finished task is stale
                // stream noise; the protocol ignores it.
                if state.flagged_at.is_none() && state.latency.is_none() {
                    state.features = features;
                    state.seen = true;
                }
            }
            TaskEvent::Finished {
                task,
                features,
                latency,
                ..
            } => {
                if features.len() != self.spec.feature_dim {
                    return false;
                }
                let Some(state) = self.tasks.get_mut(task) else {
                    return false;
                };
                if state.latency.is_some() {
                    return false; // duplicate completion
                }
                state.latency = Some(latency);
                self.finished_total += 1;
                // A flagged task's completion feeds ground truth and the
                // warmup quorum, but its features never (re-)enter the
                // training view.
                if state.flagged_at.is_none() {
                    state.features = features;
                    state.seen = true;
                }
            }
            TaskEvent::Barrier { ordinal, time, .. } => {
                return self.barrier(ordinal, time, warmup_fraction);
            }
        }
        true
    }

    /// Closes checkpoint `ordinal`: updates the warmup state and, inside
    /// the prediction window, assembles the checkpoint view and scores
    /// it. Rejects (returns `false`) any barrier that is not the next
    /// expected ordinal — re-scoring an already-closed checkpoint (e.g.
    /// a duplicate from at-least-once delivery) would silently diverge
    /// from sequential replay.
    fn barrier(&mut self, ordinal: usize, time: f64, warmup_fraction: f64) -> bool {
        if ordinal != self.barriers_seen {
            return false;
        }
        self.barriers_seen = ordinal + 1;
        if self.warmup_at.is_none() {
            let quorum = self.finished_total >= self.warmup_need(warmup_fraction);
            // Mirror `JobTrace::warmup_checkpoint`: if the quorum never
            // holds, the last checkpoint is the warmup point.
            if quorum || ordinal + 1 == self.spec.checkpoints {
                self.warmup_at = Some(ordinal);
            }
        }
        // Revelation rule: past `τ_stra`, survivors have revealed
        // themselves and prediction stops (see `nurd_sim::replay_job`).
        let predicting = self.warmup_at.is_some_and(|w| ordinal >= w) && time < self.spec.threshold;
        if !predicting {
            return true;
        }

        // Assemble the checkpoint exactly as the simulator does: task-id
        // order, flagged tasks in neither list, finished features frozen.
        let JobState {
            tasks, predictor, ..
        } = self;
        let mut finished = Vec::new();
        let mut running = Vec::new();
        for (id, state) in tasks.iter().enumerate() {
            if state.flagged_at.is_some() || !state.seen {
                continue;
            }
            match state.latency {
                Some(latency) => finished.push(FinishedTask {
                    id,
                    features: &state.features,
                    latency,
                }),
                None => running.push(RunningTask {
                    id,
                    features: &state.features,
                }),
            }
        }
        let running_ids: Vec<usize> = running.iter().map(|r| r.id).collect();
        let checkpoint = Checkpoint {
            ordinal,
            time,
            finished,
            running,
        };
        self.checkpoints_scored += 1;
        for id in predictor.predict(&checkpoint) {
            // Same guard as the simulator: only actually-running tasks
            // can be flagged.
            if running_ids.contains(&id) {
                self.tasks[id].flagged_at = Some(ordinal);
            }
        }
        true
    }

    /// Post-hoc scoring once the stream is exhausted. A task whose
    /// completion never arrived outlived the stream and is counted as a
    /// straggler (it certainly outlived `τ_stra` if the stream covered
    /// the job's horizon).
    fn report(&self) -> JobReport {
        let truth: Vec<bool> = self
            .tasks
            .iter()
            .map(|t| t.latency.is_none_or(|l| l >= self.spec.threshold))
            .collect();
        let flagged_at: Vec<Option<usize>> = self.tasks.iter().map(|t| t.flagged_at).collect();
        let outcome = outcome_from_flags(
            self.spec.threshold,
            self.warmup_at
                .unwrap_or_else(|| self.spec.checkpoints.saturating_sub(1)),
            self.spec.checkpoints,
            flagged_at,
            &truth,
        );
        JobReport {
            job: self.spec.job,
            checkpoints_scored: self.checkpoints_scored,
            outcome,
        }
    }
}

/// One shard of the engine: a disjoint set of jobs plus the queue of
/// their not-yet-applied events. Shards share nothing, which is the whole
/// determinism argument — see [`crate::Engine`].
pub(crate) struct Shard {
    jobs: BTreeMap<u64, JobState>,
    queue: VecDeque<TaskEvent>,
    warmup_fraction: f64,
    pub(crate) events_processed: usize,
    pub(crate) orphan_events: usize,
    pub(crate) rejected_events: usize,
}

impl Shard {
    pub(crate) fn new(warmup_fraction: f64) -> Self {
        Shard {
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            warmup_fraction,
            events_processed: 0,
            orphan_events: 0,
            rejected_events: 0,
        }
    }

    pub(crate) fn admit(&mut self, spec: JobSpec, predictor: Box<dyn OnlinePredictor + Send>) {
        self.jobs.insert(spec.job, JobState::new(spec, predictor));
    }

    pub(crate) fn enqueue(&mut self, event: TaskEvent) {
        self.queue.push_back(event);
    }

    pub(crate) fn queued(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Applies every queued event in arrival order. Events for unknown
    /// jobs count as orphans; structurally invalid events (see
    /// [`JobState::apply`]) count as rejected. Neither aborts the drain.
    pub(crate) fn drain(&mut self) {
        while let Some(event) = self.queue.pop_front() {
            self.events_processed += 1;
            match self.jobs.get_mut(&event.job()) {
                Some(job) => {
                    if !job.apply(event, self.warmup_fraction) {
                        self.rejected_events += 1;
                    }
                }
                None => self.orphan_events += 1,
            }
        }
    }

    /// Reports for every job admitted to this shard, job-id order.
    pub(crate) fn reports(&self) -> Vec<JobReport> {
        self.jobs.values().map(JobState::report).collect()
    }
}
